"""Unit tests for repro.clock."""

import pytest

from repro.clock import DAY, MONTH, Clock, WallClock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(100.0).now() == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_moves_time(self):
        clock = Clock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_advance_returns_new_instant(self):
        clock = Clock(10.0)
        assert clock.advance(2.5) == 12.5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1.0)

    def test_set_jumps_forward(self):
        clock = Clock()
        clock.set(1000.0)
        assert clock.now() == 1000.0

    def test_set_backwards_rejected(self):
        clock = Clock(50.0)
        with pytest.raises(ValueError):
            clock.set(49.0)

    def test_months_later_requests_are_cheap(self):
        clock = Clock()
        clock.advance(3 * MONTH)
        assert clock.now() == 3 * MONTH

    def test_isoformat_of_epoch(self):
        assert Clock().isoformat(0.0).startswith("2010-01-01T00:00:00")

    def test_isoformat_one_day_later(self):
        assert Clock().isoformat(DAY).startswith("2010-01-02")

    def test_isoformat_defaults_to_now(self):
        clock = Clock()
        clock.advance(DAY)
        assert clock.isoformat() == clock.isoformat(DAY)


class TestWallClock:
    def test_advances_on_its_own(self):
        clock = WallClock()
        first = clock.now()
        assert clock.now() >= first

    def test_manual_steering_rejected(self):
        clock = WallClock()
        with pytest.raises(NotImplementedError):
            clock.advance(1.0)
        with pytest.raises(NotImplementedError):
            clock.set(1.0)
