"""Indexed subscription matching (``repro.perf.topic_index`` + registry).

Satellite property of the perf layer: the trie-backed
``matching_topic`` and the reference linear scan agree — same
subscriptions, same deterministic registration order — on arbitrary
pattern/topic sets, across removals and re-registrations, and the
per-topic fan-out memo invalidates on every subscribe/withdraw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.subscriptions import Subscription, SubscriptionRegistry
from repro.bus.topics import topic_matches
from repro.perf import PerfLayer
from repro.perf.topic_index import TopicTrie

TOPICS = ("events", "events.health", "events.health.BloodTest",
          "events.health.Discharge", "events.social.HomeCare",
          "events.social.Alarm", "other.ns.Thing")
PATTERNS = ("events.#", "events.*", "events.health.*",
            "events.health.BloodTest", "events.*.Alarm", "#",
            "events.health.#", "other.ns.Thing")


def subscription(index: int, pattern: str) -> Subscription:
    return Subscription(
        subscription_id=f"sub-{index}", subscriber=f"consumer-{index}",
        pattern=pattern, handler=lambda envelope: None,
    )


class TestTopicTrieSemantics:
    def test_hash_matches_zero_trailing_segments(self):
        trie = TopicTrie()
        trie.add("a.#", 0, "wild")
        assert topic_matches("a.#", "a")
        assert trie.match("a") == ["wild"]
        assert trie.match("a.b.c") == ["wild"]
        assert trie.match("b") == []

    def test_star_requires_exactly_one_segment(self):
        trie = TopicTrie()
        trie.add("a.*", 0, "one")
        assert trie.match("a.b") == ["one"]
        assert trie.match("a") == []
        assert trie.match("a.b.c") == []

    def test_matches_come_back_in_registration_order(self):
        trie = TopicTrie()
        trie.add("a.#", 2, "late-hash")
        trie.add("a.b", 0, "exact")
        trie.add("a.*", 1, "star")
        assert trie.match("a.b") == ["exact", "star", "late-hash"]

    def test_remove_deletes_one_entry_by_identity(self):
        trie = TopicTrie()
        first, second = object(), object()
        trie.add("a.b", 0, first)
        trie.add("a.b", 1, second)
        assert trie.remove("a.b", first)
        assert trie.match("a.b") == [second]
        assert not trie.remove("a.b", first)
        assert len(trie) == 1


class TestIndexedRegistryAgreesWithLinear:
    @given(patterns=st.lists(st.sampled_from(PATTERNS), max_size=20),
           topic=st.sampled_from(TOPICS))
    @settings(max_examples=60, deadline=None)
    def test_both_paths_agree_on_random_pattern_sets(self, patterns, topic):
        registry = SubscriptionRegistry(indexed=True)
        for index, pattern in enumerate(patterns):
            registry.add(subscription(index, pattern))
        assert registry.indexed
        assert registry.matching_topic(topic) \
            == registry.matching_topic_linear(topic)

    @given(patterns=st.lists(st.sampled_from(PATTERNS), min_size=1,
                             max_size=14),
           removals=st.lists(st.integers(min_value=0, max_value=13),
                             max_size=6),
           topic=st.sampled_from(TOPICS))
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_removals_and_readds(self, patterns,
                                                    removals, topic):
        registry = SubscriptionRegistry(indexed=True)
        for index, pattern in enumerate(patterns):
            registry.add(subscription(index, pattern))
        for removal in removals:
            sub_id = f"sub-{removal % len(patterns)}"
            try:
                registry.remove(sub_id)
            except Exception:
                continue  # already removed in an earlier round
        # Re-register one pattern under a fresh id: it must sort last.
        registry.add(subscription(900, patterns[0]))
        matches = registry.matching_topic(topic)
        assert matches == registry.matching_topic_linear(topic)
        if topic_matches(patterns[0], topic):
            assert matches[-1].subscription_id == "sub-900"


class TestFanoutMemo:
    def test_second_lookup_is_memoized(self):
        perf = PerfLayer()
        registry = SubscriptionRegistry(indexed=True, perf=perf)
        registry.add(subscription(0, "events.#"))
        registry.matching_topic("events.health.BloodTest")
        registry.matching_topic("events.health.BloodTest")
        assert perf.stats.hits.get("fanout") == 1
        assert perf.stats.misses.get("fanout") == 1

    def test_subscribe_invalidates_the_memo(self):
        registry = SubscriptionRegistry(indexed=True)
        registry.add(subscription(0, "events.#"))
        before = registry.matching_topic("events.health.BloodTest")
        registry.add(subscription(1, "events.health.*"))
        after = registry.matching_topic("events.health.BloodTest")
        assert len(after) == len(before) + 1
        assert after == registry.matching_topic_linear(
            "events.health.BloodTest")

    def test_withdraw_invalidates_the_memo(self):
        registry = SubscriptionRegistry(indexed=True)
        registry.add(subscription(0, "events.#"))
        registry.add(subscription(1, "events.health.*"))
        registry.matching_topic("events.health.BloodTest")
        registry.remove("sub-0")
        after = registry.matching_topic("events.health.BloodTest")
        assert [sub.subscription_id for sub in after] == ["sub-1"]

    def test_memo_returns_a_copy_callers_cannot_corrupt(self):
        registry = SubscriptionRegistry(indexed=True)
        registry.add(subscription(0, "events.#"))
        first = registry.matching_topic("events.health.BloodTest")
        first.clear()
        assert registry.matching_topic("events.health.BloodTest")
