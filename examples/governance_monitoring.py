"""Governance monitoring: the province's aggregated view (§2).

"Each service provider has to provide data at different level of
granularity (detailed vs aggregated data) to the governing body ... The
governing body also uses the data to assess the efficiency of the services
being delivered."

This example runs a month of synthetic socio-health activity through the
platform and shows what the governing body gets: volume trends, per-class
and per-institution breakdowns, service intensity, and responsiveness —
all computed from notification metadata with small-cell suppression, never
from the sensitive detail payloads.

Run with::

    python examples/governance_monitoring.py
"""

from repro.analytics import PathwayMiner, ProcessMonitor
from repro.clock import DAY
from repro.sim.scenario import CssScenario, ScenarioConfig


def main() -> None:
    print("running one simulated month of socio-health activity...")
    config = ScenarioConfig(
        n_patients=40,
        n_events=400,
        detail_request_rate=0.5,
        seed=2010,
        mean_interarrival=(30 * DAY) / 400,
    )
    scenario = CssScenario(config)
    report = scenario.run()
    print(f"  {report.events_published} events published, "
          f"{report.detail_requests} detail requests, "
          f"{report.audit_records} audit records\n")

    monitor = ProcessMonitor(scenario.controller, suppression_threshold=5)

    print("== service volumes per week ==")
    print(monitor.volume_report(bucket_seconds=7 * DAY).to_text())

    print("\n== events per class (suppression k=5) ==")
    for name, cell in sorted(monitor.class_breakdown().items()):
        print(f"  {name:<24} {cell.display}")

    print("\n== events per institution ==")
    for name, cell in sorted(monitor.producer_breakdown().items()):
        print(f"  {name:<40} {cell.display}")

    print("\n== citizens served ==")
    total = monitor.distinct_citizens_served()
    print(f"  distinct citizens: {total.display}")
    print(f"  events per citizen: {monitor.events_per_citizen():.1f}")
    for event_type in scenario.templates:
        cell = monitor.distinct_citizens_served(event_type)
        print(f"    {event_type:<24} {cell.display}")

    print("\n== responsiveness: median publish→first-detail-request delay ==")
    for event_type, delay in sorted(monitor.access_latency_report().items()):
        print(f"  {event_type:<24} {delay:.0f}s")

    print("\n== care-pathway mining (process view) ==")
    miner = PathwayMiner(scenario.controller, suppression_threshold=5)
    print(miner.render())
    common = miner.common_pathways(length=2, top=3)
    if common:
        print("most frequent 2-step pathways:")
        for pathway, count in common:
            print(f"  {' -> '.join(pathway)}  ({count} citizens-steps)")

    print("\nnote: every number above came from notification metadata; the")
    print("monitor and the pathway miner issued zero detail requests and")
    print("opened zero payloads.")


if __name__ == "__main__":
    main()
