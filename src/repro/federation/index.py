"""The sharded events index (kernel kind ``index: federated``).

Wraps each node's local :class:`~repro.core.index.EventsIndex` and routes
by subject ownership: a notification is stored on the ring owner of its
subject's shard key, so all of one person's events live on one node and a
subject-scoped catch-up touches a single shard.

Wire discipline — the privacy boundary of the tentpole:

* entries cross links with identity slots **still sealed** under the
  shared ``index-identity`` key (every node derives the same key from the
  master secret, so the receiving shard can store them verbatim and any
  querying node can open them locally);
* inquiries fan out, peers return sealed raw entries, and decryption
  happens only on the querying node — plaintext identity never crosses.

Rebalancing (:meth:`rehome`) re-computes ownership after the ring grew,
ships mis-homed entries (sealed) to their new owner and *withdraws* them
locally — ebXML withdrawal keeps the object for provenance but hides it
from every default inquiry, so results stay duplicate-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.index import (
    OBJECT_TYPE,
    SCHEME_EVENT_CLASS,
    SCHEME_PRODUCER,
    EventsIndex,
    SealedIdentity,
)
from repro.core.messages import NotificationMessage
from repro.exceptions import FederationError, UnknownEventError
from repro.registry.objects import LifecycleStatus, RegistryObject
from repro.registry.query import FilterQuery

if TYPE_CHECKING:
    from repro.federation.membership import StaticMembership


@dataclass
class FederatedIndexStats:
    """Counters of shard routing and rebalancing."""

    local_stores: int = 0
    remote_stores: int = 0
    remote_inquiries: int = 0
    rehomed: int = 0


class FederatedIndexStore:
    """One node's view of the cluster-wide events index."""

    def __init__(self, local: EventsIndex, membership: "StaticMembership",
                 node_id: str, perf=None, batch=None) -> None:
        self.local = local
        self.membership = membership
        self.node_id = node_id
        self.stats = FederatedIndexStats()
        self._perf = perf if perf is not None and perf.enabled else None
        #: Batch policy (kernel kind ``batch``): when enabled, remote
        #: stores coalesce into per-owner frames instead of one link call
        #: per entry.  ``None``/disabled keeps the historical behavior.
        self._batch = batch if batch is not None and getattr(
            batch, "enabled", False) else None
        #: Per-owner buffers of entries awaiting a coalesced frame.
        self._pending: dict[str, list[dict]] = {}
        if self._batch is not None:
            register = getattr(membership, "register_flusher", None)
            if register is not None:
                register(self.flush_pending)

    @property
    def encrypt_identity(self) -> bool:
        """Mirrors the local index (the ablation knob applies per node)."""
        return self.local.encrypt_identity

    def _self_node(self):
        """This node's federation endpoint (for channel sealing)."""
        return self.membership.node(self.node_id)

    def __len__(self) -> int:
        return sum(1 for _ in self._live_local_objects())

    def __contains__(self, event_id: str) -> bool:
        return self._live_local(event_id) is not None

    # -- storage (shard routing) -------------------------------------------

    def seal_identity(self, notification: NotificationMessage) -> SealedIdentity:
        """Seal identity slots with the local keystore (publish crypto stage)."""
        return self.local.seal_identity(notification)

    def store(self, notification: NotificationMessage,
              sealed: SealedIdentity | None = None):
        """Store on the owning shard: locally, or sealed over the link."""
        if sealed is None:
            sealed = self.local.seal_identity(notification)
        owner = self.membership.owner_of_subject(notification.subject_ref)
        if owner == self.node_id:
            self.stats.local_stores += 1
            return self.local.store(notification, sealed=sealed)
        entry = {
            "event_id": notification.event_id,
            "event_type": notification.event_type,
            "producer_id": notification.producer_id,
            "occurred_at": notification.occurred_at,
            "summary": notification.summary,
            "subject_ref": sealed.subject_ref,
            "subject_display": sealed.subject_display,
        }
        # The identity slots are already index-key tokens, but the summary
        # text may name the subject — the whole entry crosses sealed under
        # this node's channel key.
        if self._batch is not None:
            return self._enqueue_remote(owner, entry)
        response = self.membership.link(self.node_id, owner).call(
            "index.store", self._self_node().seal_channel({"entry": entry})
        )
        if "error" in response:
            raise FederationError(
                f"shard {owner!r} rejected entry {notification.event_id!r}: "
                f"{response['message']}"
            )
        self.stats.remote_stores += 1
        return response

    # -- coalesced shipping (batch kind ``on``) ------------------------------

    def _enqueue_remote(self, owner: str, entry: dict) -> dict:
        """Buffer a remote entry for the owner's next coalesced frame.

        The link latency is charged to the clock *now* — exactly where
        the unbatched ``link.call`` would have advanced it — so every
        record stamped after this store carries the same timestamp in
        both modes; the flush then ships with ``advance=0.0``.
        """
        link = self.membership.link(self.node_id, owner)
        self.membership.clock.advance(link.latency)
        self.stats.remote_stores += 1
        buffer = self._pending.setdefault(owner, [])
        buffer.append(entry)
        if len(buffer) >= self._batch.batch_size:
            self._flush_owner(owner)
        return {"ok": True, "node": owner, "queued": True}

    def _flush_owner(self, owner: str) -> None:
        entries = self._pending.pop(owner, None)
        if not entries:
            return
        # One seal over the whole frame: one key-schedule invocation for
        # N entries instead of N.
        sealed = self._self_node().seal_channel({"entries": entries})
        response = self.membership.link(self.node_id, owner).call_batch(
            "index.store", sealed, count=len(entries), advance=0.0,
        )
        if "error" in response:
            raise FederationError(
                f"shard {owner!r} rejected a coalesced frame of "
                f"{len(entries)} entries: {response['message']}"
            )

    def flush_pending(self) -> None:
        """Ship every buffered frame (deterministic owner order)."""
        for owner in sorted(self._pending):
            self._flush_owner(owner)

    def flush(self) -> None:
        """Group-commit barrier: pending frames out, durable rows down."""
        self.flush_pending()
        flush = getattr(self.local, "flush", None)
        if flush is not None:
            flush()

    def _read_barrier(self) -> None:
        """Make cluster state current before a read crosses shards.

        Any node may hold frames destined for the shard a read is about
        to touch, so the barrier flushes every shipper in the membership,
        not just this node's.
        """
        if self._batch is not None:
            self.membership.flush_shippers()

    def accept_remote(self, entry: dict) -> None:
        """Store an entry shipped by a peer (identity slots still sealed)."""
        obj = RegistryObject(
            object_id=entry["event_id"],
            object_type=OBJECT_TYPE,
            name=entry["summary"],
            description=entry["summary"],
        )
        obj.classify(SCHEME_EVENT_CLASS, entry["event_type"])
        obj.classify(SCHEME_PRODUCER, entry["producer_id"])
        obj.set_slot("occurredAt", f"{entry['occurred_at']:020.6f}")
        obj.set_slot("producerId", entry["producer_id"])
        obj.set_slot("subjectRef", entry["subject_ref"])
        if entry.get("subject_display") is not None:
            obj.set_slot("subjectDisplay", entry["subject_display"])
        # A durable local shard persists adopted entries; the in-memory
        # reference index just re-inserts them.
        adopt = getattr(self.local, "adopt_raw", self.local.restore_raw)
        adopt(obj)

    # -- local raw access (the peer-facing surface) -------------------------

    def _live_local_objects(self) -> list[RegistryObject]:
        return [
            obj for obj in self.local.registry.by_type(OBJECT_TYPE)
            if obj.status is not LifecycleStatus.WITHDRAWN
        ]

    def _live_local(self, event_id: str) -> RegistryObject | None:
        if event_id not in self.local.registry:
            return None
        obj = self.local.registry.get(event_id)
        return None if obj.status is LifecycleStatus.WITHDRAWN else obj

    def _to_entry(self, obj: RegistryObject) -> dict:
        return {
            "event_id": obj.object_id,
            "event_type": obj.classification_node(SCHEME_EVENT_CLASS) or "",
            "producer_id": obj.slot_value("producerId") or "",
            "occurred_at": float(obj.slot_value("occurredAt") or 0.0),
            "summary": obj.name,
            "subject_ref": obj.slot_value("subjectRef") or "",
            "subject_display": obj.slot_value("subjectDisplay"),
        }

    def local_raw_inquire(
        self,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
        producer_id: str | None = None,
    ) -> list[dict]:
        """This shard's matching entries, identity slots kept sealed."""
        entries: list[dict] = []
        for event_type in dict.fromkeys(event_types):
            query = FilterQuery(object_type=OBJECT_TYPE).where(
                f"class:{SCHEME_EVENT_CLASS}", "eq", event_type
            )
            if since is not None:
                query.where("slot:occurredAt", "ge", f"{since:020.6f}")
            if until is not None:
                query.where("slot:occurredAt", "le", f"{until:020.6f}")
            if producer_id is not None:
                query.where(f"class:{SCHEME_PRODUCER}", "eq", producer_id)
            for obj in self.local.registry.query(query):
                entries.append(self._to_entry(obj))
        return entries

    def local_raw_get(self, event_id: str) -> dict | None:
        """One sealed raw entry of this shard (None if absent/withdrawn)."""
        obj = self._live_local(event_id)
        return None if obj is None else self._to_entry(obj)

    def local_count_for_type(self, event_type: str) -> int:
        """Live entries of one class on this shard."""
        return sum(
            1 for obj in self.local.registry.by_classification(
                SCHEME_EVENT_CLASS, event_type
            )
            if obj.status is not LifecycleStatus.WITHDRAWN
        )

    def _entry_to_notification(self, entry: dict) -> NotificationMessage:
        return NotificationMessage(
            event_id=entry["event_id"],
            event_type=entry["event_type"],
            producer_id=entry["producer_id"],
            occurred_at=entry["occurred_at"],
            summary=entry["summary"],
            subject_ref=self.local.open_identity(entry["subject_ref"]),
            subject_display=(
                self.local.open_identity(entry["subject_display"])
                if entry.get("subject_display") else ""
            ),
        )

    # -- cluster-wide retrieval ---------------------------------------------

    def _peer_ids(self) -> tuple[str, ...]:
        return tuple(n for n in self.membership.node_ids if n != self.node_id)

    def get(self, event_id: str) -> NotificationMessage:
        """Rebuild a notification from whichever shard holds it."""
        self._read_barrier()
        obj = self._live_local(event_id)
        if obj is not None:
            return self.local.get(event_id)
        for peer in self._peer_ids():
            response = self.membership.link(self.node_id, peer).call(
                "index.get", {"event_id": event_id}
            )
            entry = self._self_node().open_channel(response)["entry"]
            if entry is not None:
                return self._entry_to_notification(entry)
        raise UnknownEventError(f"no notification indexed under {event_id!r}")

    def inquire(
        self,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
        producer_id: str | None = None,
    ) -> list[NotificationMessage]:
        """Cluster-wide inquiry: local shard + sealed fan-out, opened here."""
        self._read_barrier()
        self.local.stats.inquiries += 1
        results = {
            entry["event_id"]: self._entry_to_notification(entry)
            for entry in self.local_raw_inquire(
                event_types, since=since, until=until, producer_id=producer_id
            )
        }
        peers = self._peer_ids()
        payload = {"event_types": list(event_types), "since": since,
                   "until": until, "producer_id": producer_id}
        wire = self._fanout_wire("index.inquire", payload, len(peers))
        for position, peer in enumerate(peers):
            self.stats.remote_inquiries += 1
            if self._perf is not None and position:
                self._perf.record_hit("wire")
            response = self.membership.link(self.node_id, peer).call(
                "index.inquire", payload, wire=wire
            )
            for entry in self._self_node().open_channel(response)["entries"]:
                results.setdefault(
                    entry["event_id"], self._entry_to_notification(entry)
                )
        ordered = sorted(results.values(), key=lambda n: (n.occurred_at, n.event_id))
        return ordered

    def count_for_type(self, event_type: str) -> int:
        """Cluster-wide live count of one class."""
        self._read_barrier()
        total = self.local_count_for_type(event_type)
        peers = self._peer_ids()
        payload = {"event_type": event_type}
        wire = self._fanout_wire("index.count", payload, len(peers))
        for position, peer in enumerate(peers):
            if self._perf is not None and position:
                self._perf.record_hit("wire")
            response = self.membership.link(self.node_id, peer).call(
                "index.count", payload, wire=wire
            )
            total += response.get("count", 0)
        return total

    def _fanout_wire(self, operation: str, payload: dict, peers: int) -> str | None:
        """Encode a fan-out request once (perf layer on, ≥1 peer).

        The first peer counts as the ``wire`` cache miss, every further
        peer as a hit; with tracing active the link re-encodes anyway and
        the hint is simply ignored.
        """
        if self._perf is None or peers == 0:
            return None
        from repro.federation.link import wire_message

        self._perf.record_miss("wire")
        return wire_message(operation, payload)

    # -- rebalance ----------------------------------------------------------

    def rehome(self) -> int:
        """Ship entries this node no longer owns to their new shard.

        Called after the ring changed (a node joined).  The subject token
        is opened *locally* to re-compute ownership — the plaintext stays
        on this node; the entry crosses with its slots still sealed.
        Moved entries are withdrawn locally (hidden, not erased).
        Returns how many entries moved.
        """
        self._read_barrier()
        moved = 0
        for obj in self._live_local_objects():
            subject_ref = self.local.open_identity(obj.slot_value("subjectRef") or "")
            owner = self.membership.owner_of_subject(subject_ref)
            if owner == self.node_id:
                continue
            response = self.membership.link(self.node_id, owner).call(
                "index.rehome",
                self._self_node().seal_channel({"entry": self._to_entry(obj)}),
            )
            if "error" in response:
                raise FederationError(
                    f"rehome of {obj.object_id!r} to {owner!r} failed: "
                    f"{response['message']}"
                )
            durable_withdraw = getattr(self.local, "withdraw", None)
            if durable_withdraw is not None:
                durable_withdraw(obj.object_id)  # persists a tombstone row
            else:
                self.local.registry.withdraw(obj.object_id)
            moved += 1
            self.stats.rehomed += 1
        return moved
