#!/usr/bin/env python
"""Batched-execution trajectory: group commit + coalesced frames vs off.

Runs the batch equivalence matrix (batch sizes 1/16/256 x node counts x
both durable store kinds) on the seeded capacity workload, checks that
every batched arm reproduces the unbatched arm's audit-chain digest and
PDP decision stream bit-for-bit, and writes the ``css-bench-batch/1``
summary with the speedup figures CI gates on.  Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py \
        [--full] [--nodes 1,2,4,8] [--out BENCH_batch.json]

The default is the quick CI sizing; ``--full`` runs the larger workload.
``benchmarks/check_batch_schema.py`` validates the output and fails the
build on a broken equivalence or a speedup below the 1.3x floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.workload.batch import run_batch_suite  # noqa: E402


def _print_summary(payload: dict) -> None:
    equivalence = payload["equivalence"]
    print(f"equivalence: identical={equivalence['identical']} "
          f"({len(equivalence['checks'])} matrix cells: "
          f"batch sizes x nodes x store kinds)")
    for figure in payload["speedup"]["batch_sweep"]:
        name = f"capacity.batch@{figure['batch_size']}"
        print(f"{name:<22} {figure['events_per_second']:>9.1f} events/s   "
              f"speedup {figure['speedup']:>5.2f}x")
    for figure in payload["speedup"]["nodes"]:
        name = f"capacity@{figure['nodes']}nodes"
        print(f"{name:<22} off {figure['baseline_events_per_second']:>9.1f} "
              f"events/s   on(256) {figure['batched_events_per_second']:>9.1f} "
              f"events/s   speedup {figure['speedup']:>5.2f}x")
    print(f"min speedup at batch_size=256: "
          f"{payload['speedup']['min_speedup_at_256']:.2f}x "
          f"(floor {payload['speedup']['floor']:.1f}x)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="full workload sizing (default: quick, CI-sized)")
    parser.add_argument("--nodes", default="1,2,4,8",
                        help="comma-separated federation sizes (default 1,2,4,8)")
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--out", metavar="FILE",
                        help="write the summary JSON to FILE")
    args = parser.parse_args(argv)

    try:
        node_counts = tuple(
            int(part) for part in args.nodes.split(",") if part.strip()
        )
    except ValueError:
        print("bench_batch: --nodes must be comma-separated integers",
              file=sys.stderr)
        return 2
    if not node_counts or any(count < 1 for count in node_counts):
        print("bench_batch: --nodes must be positive integers",
              file=sys.stderr)
        return 2

    payload = run_batch_suite(
        quick=not args.full, node_counts=node_counts, seed=args.seed,
        source=f"benchmarks/bench_batch.py --seed {args.seed}"
               + (" --full" if args.full else ""),
    )
    _print_summary(payload)

    if not payload["equivalence"]["identical"]:
        print("bench_batch: batched and unbatched runs disagree — batching "
              "changed an audit digest or a PDP decision",
              file=sys.stderr)
        return 1

    if args.out:
        target = Path(args.out)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
