#!/usr/bin/env python
"""Schema check for ``BENCH_storage.json`` (schema ``css-bench-storage/1``).

CI runs ``bench_storage_engine.py --quick --out BENCH_storage.json`` and
then this script.  Beyond shape validation it enforces the semantic
gates of the storage engine:

* ``equivalence.identical`` must be ``true`` — the segmented store may
  never change a decision or an audit record relative to the jsonl
  baseline;
* recovery peak memory must stay under ``MAX_RECOVERY_PEAK_KB`` for
  every point — replay is streaming, so memory must not grow with the
  log (a ``read_all()`` sneaking back onto the hot path trips this);
* compaction must actually reclaim: ``records_after < records_before``
  and ``post_compaction_bytes < size_bytes`` for the segmented kind.

Usage::

    python benchmarks/check_storage_schema.py BENCH_storage.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-storage/1"
KINDS = ("jsonl", "segmented")

#: Replay must be streaming: peak replay memory is bounded regardless of
#: log size (sparse index + one record), far below this ceiling.
MAX_RECOVERY_PEAK_KB = 16_384


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _positive_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


def _validate_kind(entry: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    rate = entry.get("ingest_events_per_second")
    if not _number(rate) or rate <= 0:
        problems.append(f"{where}.ingest_events_per_second must be positive")
    recovery = entry.get("recovery_seconds")
    if not _number(recovery) or recovery < 0:
        problems.append(f"{where}.recovery_seconds must be non-negative")
    peak = entry.get("recovery_peak_kb")
    if not _number(peak) or peak < 0:
        problems.append(f"{where}.recovery_peak_kb must be non-negative")
    elif peak > MAX_RECOVERY_PEAK_KB:
        problems.append(
            f"{where}.recovery_peak_kb {peak} exceeds the "
            f"{MAX_RECOVERY_PEAK_KB} KiB streaming-replay bound"
        )
    if not _positive_int(entry.get("size_bytes")):
        problems.append(f"{where}.size_bytes must be a positive integer")
    return problems


def _validate_point(point: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(point, dict):
        return [f"{where} must be an object"]
    if not _positive_int(point.get("events")):
        problems.append(f"{where}.events must be a positive integer")
    kinds = point.get("kinds")
    if not isinstance(kinds, dict):
        return problems + [f"{where}.kinds must be an object"]
    for kind in KINDS:
        problems.extend(_validate_kind(kinds.get(kind), f"{where}.kinds.{kind}"))

    segmented = kinds.get("segmented")
    if isinstance(segmented, dict):
        compacted = segmented.get("post_compaction_bytes")
        size = segmented.get("size_bytes")
        if not _positive_int(compacted):
            problems.append(
                f"{where}.kinds.segmented.post_compaction_bytes must be a "
                f"positive integer"
            )
        elif _positive_int(size) and compacted >= size:
            problems.append(
                f"{where}: compaction reclaimed nothing "
                f"({compacted} >= {size} bytes)"
            )
    compaction = point.get("compaction")
    if not isinstance(compaction, dict):
        problems.append(f"{where}.compaction must be an object")
    else:
        before = compaction.get("records_before")
        after = compaction.get("records_after")
        if not _positive_int(before) or not _positive_int(after):
            problems.append(
                f"{where}.compaction.records_before/records_after must be "
                f"positive integers"
            )
        elif after >= before:
            problems.append(
                f"{where}.compaction dropped no records ({after} >= {before})"
            )
        reclaimed = compaction.get("bytes_reclaimed")
        if not _number(reclaimed) or reclaimed <= 0:
            problems.append(
                f"{where}.compaction.bytes_reclaimed must be positive"
            )
    return problems


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    if not isinstance(payload.get("quick"), bool):
        problems.append("quick must be a boolean")

    points = payload.get("points")
    if not isinstance(points, list) or not points:
        problems.append("points must be a non-empty list")
        points = []
    for index, point in enumerate(points):
        problems.extend(_validate_point(point, f"points[{index}]"))

    equivalence = payload.get("equivalence")
    if not isinstance(equivalence, dict):
        problems.append("equivalence must be an object")
    else:
        if equivalence.get("identical") is not True:
            problems.append(
                "equivalence.identical must be true — jsonl and segmented "
                "store kinds produced different audit trails"
            )
        if not _positive_int(equivalence.get("audit_records")):
            problems.append("equivalence.audit_records must be a positive integer")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_storage_schema.py BENCH_storage.json",
              file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_storage_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_storage_schema: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_storage_schema: {problem}", file=sys.stderr)
        return 1
    point = payload["points"][0]
    seg = point["kinds"]["segmented"]
    reclaimed = point["compaction"]["bytes_reclaimed"]
    print(f"check_storage_schema: {path} ok "
          f"({point['events']} events, recovery peak "
          f"{seg['recovery_peak_kb']} KiB, compaction reclaimed "
          f"{reclaimed} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
