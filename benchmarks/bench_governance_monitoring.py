"""Experiment G1 (§2's monitoring mandate): aggregated governance reporting.

The governing body consumes *aggregated* data; the paper's architecture
implies those aggregates must come from the events index (notification
metadata), not from detail payloads.  We measure the monitor's report
costs on a populated platform and assert its privacy properties: zero
gateway calls, and small cells suppressed.
"""

from __future__ import annotations

import pytest

from repro.analytics import ProcessMonitor
from repro.clock import DAY
from repro.sim.scenario import CssScenario, ScenarioConfig


@pytest.fixture(scope="module")
def populated_scenario() -> CssScenario:
    scenario = CssScenario(ScenarioConfig(
        n_patients=30, n_events=300, detail_request_rate=0.4, seed=77,
        mean_interarrival=(30 * DAY) / 300,
    ))
    scenario.run()
    return scenario


def test_class_breakdown_cost(benchmark, populated_scenario):
    monitor = ProcessMonitor(populated_scenario.controller)
    breakdown = benchmark(monitor.class_breakdown)
    assert breakdown


def test_volume_report_cost(benchmark, populated_scenario):
    monitor = ProcessMonitor(populated_scenario.controller, suppression_threshold=1)
    report = benchmark(monitor.volume_report, 7 * DAY)
    assert report.total_lower_bound() == len(populated_scenario.controller.index)


def test_latency_report_cost(benchmark, populated_scenario):
    monitor = ProcessMonitor(populated_scenario.controller)
    latencies = benchmark(monitor.access_latency_report)
    assert latencies


def test_monitoring_makes_no_detail_requests(benchmark, populated_scenario):
    """The aggregated view costs zero sensitive disclosures (asserted)."""
    controller = populated_scenario.controller
    monitor = ProcessMonitor(controller)

    def full_monitoring_pass():
        before = controller.endpoints.total_calls()
        monitor.class_breakdown()
        monitor.producer_breakdown()
        monitor.volume_report(7 * DAY)
        monitor.distinct_citizens_served()
        monitor.events_per_citizen()
        monitor.access_latency_report()
        return controller.endpoints.total_calls() - before

    extra_calls = benchmark(full_monitoring_pass)
    assert extra_calls == 0


def test_pathway_mining_cost(benchmark, populated_scenario):
    """Transition-graph construction + suppression over the full deployment."""
    from repro.analytics import PathwayMiner

    miner = PathwayMiner(populated_scenario.controller, suppression_threshold=5)
    transitions = benchmark(miner.transitions)
    assert transitions
    # Rare transitions are suppressed; common ones carry exact counts.
    assert any(t.count.suppressed for t in transitions) or all(
        (t.count.value or 0) >= 5 for t in transitions
    )


def test_pathway_mining_touches_no_payloads(benchmark, populated_scenario):
    from repro.analytics import PathwayMiner

    controller = populated_scenario.controller
    miner = PathwayMiner(controller)

    def mine():
        before = controller.endpoints.total_calls()
        miner.transitions()
        miner.common_pathways(length=3)
        miner.entry_points()
        miner.hub_classes()
        return controller.endpoints.total_calls() - before

    assert benchmark(mine) == 0


@pytest.mark.parametrize("threshold", [1, 5, 20])
def test_suppression_threshold_effect(benchmark, populated_scenario, threshold):
    """Higher k suppresses more cells; totals never exceed the true count."""
    monitor = ProcessMonitor(populated_scenario.controller,
                             suppression_threshold=threshold)
    breakdown = benchmark(monitor.class_breakdown)
    true_total = len(populated_scenario.controller.index)
    lower_bound = sum(cell.lower_bound() for cell in breakdown.values())
    assert lower_bound <= true_total
    if threshold == 1:
        assert lower_bound == true_total
