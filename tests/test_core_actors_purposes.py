"""Unit tests for repro.core.actors and repro.core.purposes."""

import pytest

from repro.core.actors import Actor, ActorDirectory, ActorKind
from repro.core.purposes import (
    HEALTHCARE_TREATMENT,
    STANDARD_PURPOSES,
    Purpose,
    PurposeRegistry,
)
from repro.exceptions import ConfigurationError


def actor(actor_id: str, kind: ActorKind = ActorKind.CONSUMER, role: str = "") -> Actor:
    return Actor(actor_id=actor_id, name=actor_id, kind=kind, role=role)


class TestActorKind:
    def test_produces(self):
        assert ActorKind.PRODUCER.produces
        assert ActorKind.BOTH.produces
        assert not ActorKind.CONSUMER.produces

    def test_consumes(self):
        assert ActorKind.CONSUMER.consumes
        assert ActorKind.BOTH.consumes
        assert not ActorKind.PRODUCER.consumes


class TestActor:
    def test_hierarchy_properties(self):
        unit = actor("Hospital-S-Maria/Laboratory/Hematology")
        assert unit.organization == "Hospital-S-Maria"
        assert unit.parent_id == "Hospital-S-Maria/Laboratory"
        assert unit.path_segments == ("Hospital-S-Maria", "Laboratory", "Hematology")

    def test_top_level_has_no_parent(self):
        assert actor("Hospital").parent_id is None

    def test_is_within(self):
        unit = actor("Hospital/Lab")
        assert unit.is_within("Hospital")
        assert unit.is_within("Hospital/Lab")
        assert not unit.is_within("Hospital/Lab/Unit")
        assert not unit.is_within("Hosp")

    def test_illegal_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            actor("")
        with pytest.raises(ConfigurationError):
            actor("Hospital//Lab")
        with pytest.raises(ConfigurationError):
            actor("Hospital/La b")


class TestActorDirectory:
    def test_add_get_contains(self):
        directory = ActorDirectory()
        directory.add(actor("A"))
        assert "A" in directory
        assert directory.get("A").actor_id == "A"
        assert len(directory) == 1

    def test_duplicate_rejected(self):
        directory = ActorDirectory()
        directory.add(actor("A"))
        with pytest.raises(ConfigurationError):
            directory.add(actor("A"))

    def test_get_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ActorDirectory().get("nope")

    def test_producers_and_consumers(self):
        directory = ActorDirectory()
        directory.add(actor("P", ActorKind.PRODUCER))
        directory.add(actor("C", ActorKind.CONSUMER))
        directory.add(actor("B", ActorKind.BOTH))
        assert {a.actor_id for a in directory.producers()} == {"P", "B"}
        assert {a.actor_id for a in directory.consumers()} == {"C", "B"}

    def test_with_role(self):
        directory = ActorDirectory()
        directory.add(actor("D1", role="family-doctor"))
        directory.add(actor("D2", role="family-doctor"))
        directory.add(actor("S", role="statistician"))
        assert len(directory.with_role("family-doctor")) == 2

    def test_descendants_of(self):
        directory = ActorDirectory()
        directory.add(actor("Hospital"))
        directory.add(actor("Hospital/Lab"))
        directory.add(actor("Other"))
        assert {a.actor_id for a in directory.descendants_of("Hospital")} == {
            "Hospital", "Hospital/Lab",
        }


class TestPurposes:
    def test_standard_purposes_installed(self):
        registry = PurposeRegistry()
        assert len(registry) == len(STANDARD_PURPOSES)
        assert "healthcare-treatment" in registry

    def test_get_and_require(self):
        registry = PurposeRegistry()
        assert registry.get("administration").label == "Administration"
        registry.require("statistical-analysis")
        with pytest.raises(ConfigurationError):
            registry.require("marketing")

    def test_add_custom_purpose(self):
        registry = PurposeRegistry()
        registry.add(Purpose("research", "Scientific research"))
        assert "research" in registry

    def test_duplicate_purpose_rejected(self):
        registry = PurposeRegistry()
        with pytest.raises(ConfigurationError):
            registry.add(HEALTHCARE_TREATMENT)

    def test_illegal_purpose_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Purpose("has space", "label")
        with pytest.raises(ConfigurationError):
            Purpose("", "label")

    def test_ids_listing(self):
        assert "healthcare-treatment" in PurposeRegistry().ids()
