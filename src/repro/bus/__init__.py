"""In-process enterprise service bus (ESB) substrate.

The paper's deployment customized Apache ServiceMix; the claims it makes
about the bus are architectural — asynchronous pub/sub decoupling, many
subscribers per event class, reliable delivery, plus synchronous SOA
endpoints for the request/response paths (detail requests, index inquiry).
This subpackage rebuilds that pattern in-process:

* :mod:`~repro.bus.envelope` — message envelopes with headers;
* :mod:`~repro.bus.topics` — hierarchical topics with ``*``/``#`` wildcards;
* :mod:`~repro.bus.subscriptions` — durable, named subscriptions;
* :mod:`~repro.bus.queue` — per-subscription FIFO queues with offsets;
* :mod:`~repro.bus.delivery` — at-least-once dispatch, retries, dead-letter;
* :mod:`~repro.bus.broker` — the :class:`~repro.bus.broker.ServiceBus`;
* :mod:`~repro.bus.endpoints` — synchronous service endpoints (SOA layer).
"""

from repro.bus.broker import ServiceBus
from repro.bus.delivery import DeliveryPolicy, DeliveryReport
from repro.bus.endpoints import EndpointRegistry, ServiceEndpoint
from repro.bus.envelope import Envelope
from repro.bus.subscriptions import Subscription
from repro.bus.topics import Topic, topic_matches

__all__ = [
    "DeliveryPolicy",
    "DeliveryReport",
    "EndpointRegistry",
    "Envelope",
    "ServiceBus",
    "ServiceEndpoint",
    "Subscription",
    "Topic",
    "topic_matches",
]
