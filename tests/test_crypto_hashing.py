"""Unit and property tests for repro.crypto.hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import GENESIS, HashChain, canonical_json, hmac_digest
from repro.exceptions import TamperedLogError


class TestHmacDigest:
    def test_deterministic(self):
        assert hmac_digest(b"key", b"msg") == hmac_digest(b"key", b"msg")

    def test_key_sensitive(self):
        assert hmac_digest(b"key1", b"msg") != hmac_digest(b"key2", b"msg")

    def test_is_hex_string(self):
        digest = hmac_digest(b"key", b"msg")
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_non_json_values_are_stringified(self):
        assert "frozenset" in canonical_json({"x": frozenset()})


class TestHashChain:
    def test_empty_chain_head_is_genesis(self):
        assert HashChain().head == GENESIS

    def test_append_changes_head(self):
        chain = HashChain()
        digest = chain.append({"n": 1})
        assert chain.head == digest != GENESIS

    def test_len_counts_links(self):
        chain = HashChain()
        chain.append({"n": 1})
        chain.append({"n": 2})
        assert len(chain) == 2

    def test_digest_at(self):
        chain = HashChain()
        first = chain.append({"n": 1})
        chain.append({"n": 2})
        assert chain.digest_at(0) == first

    def test_verify_accepts_intact_log(self):
        chain = HashChain()
        payloads = [{"n": i} for i in range(10)]
        for payload in payloads:
            chain.append(payload)
        chain.verify(payloads)  # must not raise

    def test_verify_detects_modified_payload(self):
        chain = HashChain()
        payloads = [{"n": i} for i in range(5)]
        for payload in payloads:
            chain.append(payload)
        payloads[2] = {"n": 999}
        with pytest.raises(TamperedLogError, match="record 2"):
            chain.verify(payloads)

    def test_verify_detects_removed_record(self):
        chain = HashChain()
        payloads = [{"n": i} for i in range(5)]
        for payload in payloads:
            chain.append(payload)
        with pytest.raises(TamperedLogError):
            chain.verify(payloads[:-1])

    def test_verify_detects_inserted_record(self):
        chain = HashChain()
        payloads = [{"n": i} for i in range(3)]
        for payload in payloads:
            chain.append(payload)
        with pytest.raises(TamperedLogError):
            chain.verify(payloads + [{"n": 99}])

    def test_chain_depends_on_order(self):
        one, two = HashChain(), HashChain()
        one.append({"n": 1})
        one.append({"n": 2})
        two.append({"n": 2})
        two.append({"n": 1})
        assert one.head != two.head

    @given(st.lists(st.dictionaries(st.text(max_size=8), st.integers()), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_verify_roundtrip(self, payloads):
        chain = HashChain()
        for payload in payloads:
            chain.append(payload)
        chain.verify(list(payloads))
