"""Small-cell suppression for aggregate reports.

Aggregates computed over few individuals can re-identify them (a count of
1 for "telecare alarms in Levico this week" *is* somebody).  Statistical
disclosure control suppresses cells below a threshold ``k``: the consumer
sees ``<k`` instead of the exact count.  The platform's aggregate reports
apply this uniformly, which keeps the governing body's monitoring view
(§2) compatible with the minimal-usage principle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SuppressedCount:
    """A count that may be suppressed.

    ``value`` is None when suppressed; ``display`` renders either the exact
    count or the ``<k`` marker.
    """

    value: int | None
    threshold: int

    @property
    def suppressed(self) -> bool:
        """Whether the exact count was withheld."""
        return self.value is None

    @property
    def display(self) -> str:
        """The publishable form of the count."""
        return f"<{self.threshold}" if self.value is None else str(self.value)

    def lower_bound(self) -> int:
        """A safe lower bound usable in downstream arithmetic."""
        return 0 if self.value is None else self.value


def suppress(count: int, threshold: int) -> SuppressedCount:
    """Suppress one count if it is positive but below ``threshold``.

    Zero cells are not suppressed — an empty cell discloses nothing about
    any individual.
    """
    if threshold < 1:
        raise ConfigurationError("suppression threshold must be at least 1")
    if 0 < count < threshold:
        return SuppressedCount(None, threshold)
    return SuppressedCount(count, threshold)


def suppress_small_cells(
    cells: dict[str, int], threshold: int
) -> dict[str, SuppressedCount]:
    """Apply :func:`suppress` to every cell of a breakdown."""
    return {key: suppress(count, threshold) for key, count in cells.items()}
