"""Simple types for the XSD-style schema model.

Each type knows how to *validate* a Python value and how to *coerce* the
string form found in an XML text node back into a Python value.  The set of
types mirrors what socio-health event payloads in the paper's domain need:
strings (with length/pattern restrictions), integers and decimals (with
ranges), booleans, ISO dates, and enumerations (e.g. an autonomy-score
scale).
"""

from __future__ import annotations

import datetime as _dt
import re

from repro.exceptions import SchemaError, ValidationError


class SimpleType:
    """Base class for simple types.

    Subclasses implement :meth:`check` (validate a Python value, raising
    :class:`~repro.exceptions.ValidationError`) and :meth:`parse` (coerce an
    XML string).  ``name`` is the XSD-ish type name used in diagnostics and
    the catalog listing.
    """

    name = "anySimpleType"

    def check(self, value: object) -> None:
        """Validate a Python value; raise ``ValidationError`` if invalid."""
        raise NotImplementedError

    def parse(self, text: str) -> object:
        """Coerce the XML text form into a Python value (and validate it)."""
        raise NotImplementedError

    def render(self, value: object) -> str:
        """Render a Python value into its XML text form."""
        self.check(value)
        return str(value)

    def describe(self) -> str:
        """Human-readable description for catalog listings."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class StringType(SimpleType):
    """``xs:string`` with optional length bounds and regex pattern."""

    name = "string"

    def __init__(
        self,
        min_length: int = 0,
        max_length: int | None = None,
        pattern: str | None = None,
    ) -> None:
        if min_length < 0:
            raise SchemaError("min_length must be non-negative")
        if max_length is not None and max_length < min_length:
            raise SchemaError("max_length must be >= min_length")
        self.min_length = min_length
        self.max_length = max_length
        self.pattern = pattern
        self._regex = re.compile(pattern) if pattern else None

    def check(self, value: object) -> None:
        if not isinstance(value, str):
            raise ValidationError(f"expected string, got {type(value).__name__}")
        if len(value) < self.min_length:
            raise ValidationError(f"string shorter than {self.min_length} characters")
        if self.max_length is not None and len(value) > self.max_length:
            raise ValidationError(f"string longer than {self.max_length} characters")
        if self._regex is not None and not self._regex.fullmatch(value):
            raise ValidationError(f"string does not match pattern {self.pattern!r}")

    def parse(self, text: str) -> str:
        self.check(text)
        return text

    def describe(self) -> str:
        parts = [self.name]
        if self.min_length:
            parts.append(f"minLen={self.min_length}")
        if self.max_length is not None:
            parts.append(f"maxLen={self.max_length}")
        if self.pattern:
            parts.append(f"pattern={self.pattern}")
        return " ".join(parts)


class IntegerType(SimpleType):
    """``xs:integer`` with optional inclusive range."""

    name = "integer"

    def __init__(self, minimum: int | None = None, maximum: int | None = None) -> None:
        if minimum is not None and maximum is not None and maximum < minimum:
            raise SchemaError("maximum must be >= minimum")
        self.minimum = minimum
        self.maximum = maximum

    def check(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"expected integer, got {type(value).__name__}")
        if self.minimum is not None and value < self.minimum:
            raise ValidationError(f"integer below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ValidationError(f"integer above maximum {self.maximum}")

    def parse(self, text: str) -> int:
        try:
            value = int(text.strip())
        except ValueError as exc:
            raise ValidationError(f"not an integer: {text!r}") from exc
        self.check(value)
        return value

    def describe(self) -> str:
        bounds = []
        if self.minimum is not None:
            bounds.append(f"min={self.minimum}")
        if self.maximum is not None:
            bounds.append(f"max={self.maximum}")
        return " ".join([self.name] + bounds)


class DecimalType(SimpleType):
    """``xs:decimal`` (Python float) with optional inclusive range."""

    name = "decimal"

    def __init__(self, minimum: float | None = None, maximum: float | None = None) -> None:
        if minimum is not None and maximum is not None and maximum < minimum:
            raise SchemaError("maximum must be >= minimum")
        self.minimum = minimum
        self.maximum = maximum

    def check(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"expected decimal, got {type(value).__name__}")
        if self.minimum is not None and value < self.minimum:
            raise ValidationError(f"decimal below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ValidationError(f"decimal above maximum {self.maximum}")

    def parse(self, text: str) -> float:
        try:
            value = float(text.strip())
        except ValueError as exc:
            raise ValidationError(f"not a decimal: {text!r}") from exc
        self.check(value)
        return value


class BooleanType(SimpleType):
    """``xs:boolean`` accepting the XML forms ``true/false/1/0``."""

    name = "boolean"

    _TRUE = {"true", "1"}
    _FALSE = {"false", "0"}

    def check(self, value: object) -> None:
        if not isinstance(value, bool):
            raise ValidationError(f"expected boolean, got {type(value).__name__}")

    def parse(self, text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in self._TRUE:
            return True
        if lowered in self._FALSE:
            return False
        raise ValidationError(f"not a boolean: {text!r}")

    def render(self, value: object) -> str:
        self.check(value)
        return "true" if value else "false"


class DateType(SimpleType):
    """``xs:date`` — ISO-8601 calendar dates."""

    name = "date"

    def check(self, value: object) -> None:
        if not isinstance(value, _dt.date) or isinstance(value, _dt.datetime):
            raise ValidationError(f"expected date, got {type(value).__name__}")

    def parse(self, text: str) -> _dt.date:
        try:
            return _dt.date.fromisoformat(text.strip())
        except ValueError as exc:
            raise ValidationError(f"not an ISO date: {text!r}") from exc

    def render(self, value: object) -> str:
        self.check(value)
        return value.isoformat()  # type: ignore[union-attr]


class EnumerationType(SimpleType):
    """A string restricted to an explicit value set (``xs:enumeration``)."""

    name = "enumeration"

    def __init__(self, values: list[str] | tuple[str, ...]) -> None:
        if not values:
            raise SchemaError("enumeration needs at least one value")
        self.values = tuple(values)
        self._value_set = frozenset(values)
        if len(self._value_set) != len(self.values):
            raise SchemaError("enumeration values must be distinct")

    def check(self, value: object) -> None:
        if not isinstance(value, str):
            raise ValidationError(f"expected string, got {type(value).__name__}")
        if value not in self._value_set:
            raise ValidationError(f"{value!r} not in enumeration {sorted(self._value_set)}")

    def parse(self, text: str) -> str:
        self.check(text)
        return text

    def describe(self) -> str:
        return f"{self.name}{{{', '.join(self.values)}}}"
