"""The Local Cooperation Gateway — Algorithm 2 and detail persistence.

"These functionalities are encapsulated in the *local cooperation gateway*
provided as part of the CSS platform ... This module persists each detail
message notified so that they can be retrieved even when the source systems
are un-accessible" (§4).  Requests for details "may arrive ... even months
after the publication of the notification", so the gateway is the temporal
decoupling point between publication and retrieval.

Algorithm 2 (``getResponse(src_eID, F)``) runs here, *at the producer*:
fetch the stored detail, blank every field outside ``F``, and return the
privacy-aware event — "it is never the case that data not accessible by a
certain data consumer leaves the data producer" (§5).

This class is the reference implementation of the
:class:`~repro.runtime.interfaces.CooperationGateway` protocol; the
enforcement pipeline reaches it only through a
:class:`~repro.runtime.interfaces.DetailFetcher`, so remote or sharded
gateways can be substituted without touching Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import EventClass, EventOccurrence
from repro.core.messages import DetailMessage
from repro.exceptions import DetailNotFoundError, GatewayError, SourceUnavailableError
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.validation import validate_document


@dataclass
class GatewayStats:
    """Counters for the persistence/availability ablation (A4)."""

    stored: int = 0
    served_from_cache: int = 0
    served_from_source: int = 0
    unavailable_failures: int = 0


class LocalCooperationGateway:
    """Producer-side detail store and enforcement endpoint.

    ``persistence_enabled`` exists for ablation A4: with it off, every
    retrieval goes to the live source system and fails while the source is
    offline — the failure mode the paper's design removes.
    """

    def __init__(self, producer_id: str, persistence_enabled: bool = True) -> None:
        if not producer_id:
            raise GatewayError("gateway needs its producer id")
        self.producer_id = producer_id
        self.persistence_enabled = persistence_enabled
        self._store: dict[str, tuple[EventClass, XmlDocument]] = {}
        self._source_online = True
        self.stats = GatewayStats()

    # -- source availability ------------------------------------------------

    @property
    def source_online(self) -> bool:
        """Whether the backing source system is reachable."""
        return self._source_online

    def take_source_offline(self) -> None:
        """Simulate the source information system going down."""
        self._source_online = False

    def bring_source_online(self) -> None:
        """Restore the source information system."""
        self._source_online = True

    # -- persistence -------------------------------------------------------------

    def persist(self, occurrence: EventOccurrence) -> None:
        """Store the detail message of a notified event (publish path).

        The payload is validated against the class schema before storage —
        the gateway refuses to persist malformed details.
        """
        occurrence.validate()
        if occurrence.src_event_id in self._store:
            raise GatewayError(
                f"detail for {occurrence.src_event_id!r} already persisted"
            )
        self._store[occurrence.src_event_id] = (
            occurrence.event_class,
            occurrence.details,
        )
        self.stats.stored += 1

    def restore_detail(self, src_event_id: str, event_class: EventClass,
                       details: XmlDocument) -> None:
        """Re-insert an archived detail (archive-restore path).

        Validates like :meth:`persist` but takes the pieces directly, as
        the original :class:`~repro.core.events.EventOccurrence` metadata
        lives in the controller's id map, not the gateway.
        """
        from repro.xmlmsg.validation import validate_document as _validate

        _validate(details, event_class.schema)
        if src_event_id in self._store:
            raise GatewayError(f"detail for {src_event_id!r} already persisted")
        self._store[src_event_id] = (event_class, details)
        self.stats.stored += 1

    def stored_entries(self) -> list[tuple[str, EventClass, XmlDocument]]:
        """Snapshot of the store for archiving."""
        return [
            (src_event_id, event_class, details)
            for src_event_id, (event_class, details) in self._store.items()
        ]

    def __contains__(self, src_event_id: str) -> bool:
        return src_event_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    # -- Algorithm 2 ----------------------------------------------------------------

    def get_event_details(self, src_event_id: str) -> tuple[EventClass, XmlDocument]:
        """Step 1 of Algorithm 2: retrieve the stored detail.

        With persistence enabled the gateway's own store answers even when
        the source is offline.  Without it, an offline source raises
        :class:`~repro.exceptions.SourceUnavailableError`.
        """
        if not self.persistence_enabled and not self._source_online:
            self.stats.unavailable_failures += 1
            raise SourceUnavailableError(
                f"source of {self.producer_id!r} is offline and the gateway "
                "has persistence disabled"
            )
        try:
            event_class, details = self._store[src_event_id]
        except KeyError as exc:
            raise DetailNotFoundError(
                f"no detail stored for source event {src_event_id!r}"
            ) from exc
        if self.persistence_enabled and not self._source_online:
            self.stats.served_from_cache += 1
        else:
            self.stats.served_from_source += 1
        return event_class, details

    def get_response(
        self, src_event_id: str, allowed_fields: frozenset[str] | set[str], event_id: str
    ) -> DetailMessage:
        """Algorithm 2: ``getResponse(src_eID, F) -> e`` with ``e ⊨ p``.

        Retrieves the detail and blanks every field outside
        ``allowed_fields`` (``parse(d, F)``), producing the privacy-aware
        event.  The filtered document is re-validated with blanked required
        fields permitted — the wire schema is unchanged, only values are
        suppressed.
        """
        if not allowed_fields:
            raise GatewayError("refusing to build a response with an empty field set")
        event_class, details = self.get_event_details(src_event_id)
        filtered = details.project(frozenset(allowed_fields))
        validate_document(filtered, event_class.schema, allow_blanked_required=True)
        released = tuple(
            name for name in filtered.non_empty_fields()
        )
        return DetailMessage(
            event_id=event_id,
            event_type=event_class.name,
            producer_id=self.producer_id,
            payload=filtered,
            released_fields=released,
        )
