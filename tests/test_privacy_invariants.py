"""Property-based tests of the platform's privacy invariants.

Hypothesis drives randomized policy configurations and request mixes
through a real platform instance and checks the paper's core guarantees:

1. **Never-leak** (Def. 4 / Algorithm 2): a released detail message never
   exposes a field outside the union of the matching policies' field sets.
2. **Deny-by-default** (§5.1): requests with no matching policy always
   raise :class:`AccessDeniedError`.
3. **Total traceability** (§4): every detail request — permitted or not —
   appends exactly one audit record, and the chain stays verifiable.
4. **No telemetry side channel**: metric labels and span attributes never
   carry plaintext assisted-person identifiers or detail-payload values —
   the observability layer cannot re-leak what enforcement protects.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccessDeniedError,
    DataConsumer,
    DataController,
    DataProducer,
)
from repro.audit.log import AuditAction
from repro.audit.query import AuditQuery
from repro.clock import Clock
from repro.core.policy import DetailRequestSpec
from repro.obs.guard import TelemetryPrivacyError
from repro.obs.telemetry import InMemoryTelemetry
from repro.runtime.kernel import RuntimeConfig
from repro.sim.scenario import CssScenario, ScenarioConfig
from tests.conftest import blood_test_schema

FIELDS = ("PatientId", "Name", "Hemoglobin", "Glucose", "HivResult")
PURPOSES = ("healthcare-treatment", "statistical-analysis", "administration")
CONSUMER_IDS = ("Consumer-A", "Consumer-B", "Consumer-C")

policy_strategy = st.lists(
    st.tuples(
        st.sampled_from(CONSUMER_IDS),
        st.frozensets(st.sampled_from(FIELDS), min_size=1),
        st.frozensets(st.sampled_from(PURPOSES), min_size=1),
    ),
    max_size=6,
)

request_strategy = st.lists(
    st.tuples(
        st.sampled_from(CONSUMER_IDS),
        st.sampled_from(PURPOSES),
    ),
    min_size=1,
    max_size=10,
)


def build_platform(policies):
    controller = DataController(seed="prop")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    consumers = {
        consumer_id: DataConsumer(controller, consumer_id, consumer_id)
        for consumer_id in CONSUMER_IDS
    }
    for consumer_id, fields, purposes in policies:
        hospital.define_policy(
            event_type="BloodTest",
            fields=sorted(fields),
            consumers=[(consumer_id, "unit")],
            purposes=sorted(purposes),
        )
    notification = hospital.publish(
        blood, subject_id="pat-1", subject_name="Mario Bianchi",
        summary="blood test",
        details={"PatientId": "pat-1", "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"},
    )
    return controller, consumers, notification


@given(policies=policy_strategy, requests=request_strategy)
@settings(max_examples=40, deadline=None)
def test_never_leak_and_deny_by_default(policies, requests):
    controller, consumers, notification = build_platform(policies)
    for consumer_id, purpose in requests:
        consumer = consumers[consumer_id]
        matching = [
            (fields, purposes)
            for pid, fields, purposes in policies
            if pid == consumer_id and purpose in purposes
        ]
        allowed_union = frozenset().union(*(f for f, _ in matching)) if matching else frozenset()
        try:
            detail = consumer.request_details(notification, purpose)
        except AccessDeniedError:
            # Deny-by-default: a deny is only acceptable when no policy matches.
            assert not matching
            continue
        # Never-leak: every exposed field was granted by some matching policy.
        exposed = set(detail.exposed_values())
        assert exposed <= allowed_union
        # And a matching policy must have existed for the permit.
        assert matching


@given(policies=policy_strategy, requests=request_strategy)
@settings(max_examples=25, deadline=None)
def test_every_request_is_audited_exactly_once(policies, requests):
    controller, consumers, notification = build_platform(policies)
    before = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
              .count(controller.audit_log))
    for consumer_id, purpose in requests:
        try:
            consumers[consumer_id].request_details(notification, purpose)
        except AccessDeniedError:
            pass
    after = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
             .count(controller.audit_log))
    assert after - before == len(requests)
    controller.audit_log.verify_integrity()


@given(
    fields=st.frozensets(st.sampled_from(FIELDS), min_size=1),
    purposes=st.frozensets(st.sampled_from(PURPOSES), min_size=1),
    probe_purpose=st.sampled_from(PURPOSES),
    probe_actor=st.sampled_from(CONSUMER_IDS + ("Stranger",)),
)
@settings(max_examples=60, deadline=None)
def test_matching_agrees_between_def3_and_enforcement(fields, purposes,
                                                      probe_purpose, probe_actor):
    """Def. 3 matching and the full XACML enforcement path always agree."""
    policies = [("Consumer-A", fields, purposes)]
    controller, consumers, notification = build_platform(policies)
    spec = DetailRequestSpec(
        actor_id=probe_actor, event_type="BloodTest", purpose=probe_purpose,
    )
    should_permit = (probe_actor == "Consumer-A") and (probe_purpose in purposes)
    if probe_actor == "Stranger":
        return  # not a registered consumer; contract layer rejects earlier
    consumer = consumers[probe_actor]
    try:
        consumer.request_details(notification, probe_purpose)
        permitted = True
    except AccessDeniedError:
        permitted = False
    assert permitted == should_permit


# ---------------------------------------------------------------------------
# Invariant 4: telemetry is not a side channel
# ---------------------------------------------------------------------------


IDENTIFYING_LABELS = (
    {"subject_ref": "pat-17"},
    {"patient_id": "pat-17"},
    {"subject_display": "Mario Bianchi"},
    {"assisted_person": "pat-17"},
)


@pytest.mark.parametrize("labels", IDENTIFYING_LABELS,
                         ids=lambda labels: next(iter(labels)))
def test_identifying_metric_label_is_rejected_in_strict_mode(labels):
    telemetry = InMemoryTelemetry(clock=Clock(), guard_mode="reject")
    with pytest.raises(TelemetryPrivacyError):
        telemetry.count("detail_requests_total", **labels)
    with pytest.raises(TelemetryPrivacyError):
        with telemetry.span("request", **labels):
            pass
    assert telemetry.metrics.snapshot() == []


@pytest.mark.parametrize("labels", IDENTIFYING_LABELS,
                         ids=lambda labels: next(iter(labels)))
def test_identifying_metric_label_is_hashed_in_hash_mode(labels):
    telemetry = InMemoryTelemetry(clock=Clock(), guard_mode="hash")
    telemetry.count("detail_requests_total", **labels)
    key, value = next(iter(labels.items()))
    (row,) = telemetry.metrics.snapshot()
    assert row["labels"][key].startswith("h:")
    assert str(value) not in row["labels"][key]


def test_detail_payload_field_labels_are_guarded():
    """Field names registered at class declaration become restricted keys."""
    telemetry = InMemoryTelemetry(clock=Clock(), guard_mode="reject")
    telemetry.restrict_keys(["Hemoglobin", "HivResult"])
    with pytest.raises(TelemetryPrivacyError):
        telemetry.count("field_released_total", HivResult="positive")


def test_controller_registers_declared_fields_with_the_guard():
    runtime = RuntimeConfig(telemetry="inmemory", telemetry_guard="reject")
    controller = DataController(seed="prop", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    hospital.declare_event_class(blood_test_schema())
    with pytest.raises(TelemetryPrivacyError):
        controller.telemetry.count("x_total", Hemoglobin=14.0)


def test_scenario_telemetry_exports_contain_no_plaintext_identifiers():
    """Full scenario: trace + metric exports are free of patient identity."""
    config = ScenarioConfig(
        n_patients=6, n_events=40, detail_request_rate=0.5, seed=2010,
        runtime=RuntimeConfig(telemetry="inmemory", telemetry_guard="hash"),
    )
    scenario = CssScenario(config)
    scenario.run(scenario.generate_workload())
    telemetry = scenario.controller.telemetry
    exported = "\n".join(telemetry.trace_export() + telemetry.metrics_export())
    for patient in scenario.population:
        assert patient.patient_id not in exported
        for name_part in patient.name.split():
            assert name_part not in exported
