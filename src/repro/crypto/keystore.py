"""Named key management with rotation.

The data controller holds one key per purpose ("index-identity", per-producer
channel keys, audit MAC key).  Keys can be rotated; old versions remain
readable so sealed tokens created before a rotation still open.
"""

from __future__ import annotations

from repro.crypto.cipher import SealedBox, derive_key
from repro.exceptions import KeyNotFoundError, TokenError


class KeyStore:
    """Versioned named keys, each exposing a :class:`SealedBox`.

    Tokens are prefixed with the key version (``v1:...``) so :meth:`open_`
    can pick the right box even after rotations.

    Key derivation is deterministic in ``(master secret, name, version)``
    and a :class:`SealedBox` is stateless (nonces come from the caller's
    sequence number), so the derived boxes are shared process-wide
    through a class-level **key-schedule cache**: a federation of *k*
    nodes built from one master secret derives each channel key once
    instead of once per node.  ``schedule_cache=False`` opts a store out
    (the ablation baseline).
    """

    #: Process-wide schedule cache: (master, name, version) -> SealedBox.
    _schedule: dict[tuple[str, str, int], SealedBox] = {}
    _schedule_cap = 4096
    #: Class-level hit/miss counters (read by the perf benchmarks).
    schedule_hits = 0
    schedule_misses = 0

    def __init__(self, master_secret: str, schedule_cache: bool = True) -> None:
        if not master_secret:
            raise KeyNotFoundError("master secret must be non-empty")
        self._master = master_secret
        self._schedule_cache = schedule_cache
        self._versions: dict[str, int] = {}
        self._boxes: dict[tuple[str, int], SealedBox] = {}

    def create(self, name: str) -> None:
        """Create key ``name`` at version 1 (no-op if it already exists)."""
        if name in self._versions:
            return
        self._versions[name] = 1
        self._boxes[(name, 1)] = self._make_box(name, 1)

    def _make_box(self, name: str, version: int) -> SealedBox:
        if not self._schedule_cache:
            return SealedBox(derive_key(self._master, f"key:{name}:v{version}"))
        cache_key = (self._master, name, version)
        box = KeyStore._schedule.get(cache_key)
        if box is not None:
            KeyStore.schedule_hits += 1
            return box
        KeyStore.schedule_misses += 1
        if len(KeyStore._schedule) >= KeyStore._schedule_cap:
            KeyStore._schedule.clear()
        box = SealedBox(derive_key(self._master, f"key:{name}:v{version}"))
        KeyStore._schedule[cache_key] = box
        return box

    def rotate(self, name: str) -> int:
        """Advance ``name`` to the next version and return it."""
        version = self._current_version(name) + 1
        self._versions[name] = version
        self._boxes[(name, version)] = self._make_box(name, version)
        return version

    def _current_version(self, name: str) -> int:
        try:
            return self._versions[name]
        except KeyError as exc:
            raise KeyNotFoundError(f"no key named {name!r}") from exc

    def current_version(self, name: str) -> int:
        """Current version number of key ``name``."""
        return self._current_version(name)

    def seal(self, name: str, plaintext: str, sequence: int) -> str:
        """Seal ``plaintext`` under the current version of key ``name``."""
        version = self._current_version(name)
        token = self._boxes[(name, version)].seal(plaintext, sequence)
        return f"v{version}:{token}"

    def open_(self, name: str, token: str) -> str:
        """Open a token, resolving the key version from its prefix."""
        self._current_version(name)  # raises if the key does not exist
        prefix, _, body = token.partition(":")
        if not body or not prefix.startswith("v"):
            raise TokenError("token missing version prefix")
        try:
            version = int(prefix[1:])
        except ValueError as exc:
            raise TokenError(f"bad token version prefix {prefix!r}") from exc
        box = self._boxes.get((name, version))
        if box is None:
            raise TokenError(f"token sealed under unknown version {version} of key {name!r}")
        return box.open(body)
