"""The actor/role-bucketed policy index (``repro.perf.policy_index``).

The index may only ever drop policies whose target evaluates
``NotApplicable`` — candidates keep registration order, hierarchical
``actor_id`` grants resolve through the ancestor buckets, the buckets
rebuild when the repository's epoch moves, and the indexed PDP returns
the same decisions as the full linear compile-and-evaluate.
"""

import pytest

from repro.core.actors import Actor, ActorKind
from repro.core.enforcement import DetailRequest
from repro.core.policy import PolicyRepository, PrivacyPolicy
from repro.perf.bench import build_decide_rig
from repro.perf.policy_index import PolicyIndex, actor_ancestors


def grant(policy_id: str, *, actor_id: str = "", actor_role: str = "",
          fields=("PatientId",), purposes=("healthcare-treatment",),
          valid_from=None, valid_until=None) -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id=policy_id, producer_id="Hospital", event_type="BloodTest",
        fields=frozenset(fields), purposes=frozenset(purposes),
        actor_id=actor_id, actor_role=actor_role,
        valid_from=valid_from, valid_until=valid_until,
    )


class TestActorAncestors:
    def test_hierarchy_is_expanded_root_first(self):
        assert actor_ancestors("a/b/c") == ("a", "a/b", "a/b/c")

    def test_flat_actor_is_its_own_ancestry(self):
        assert actor_ancestors("Doctor") == ("Doctor",)


class TestCandidateSelection:
    def build(self):
        repository = PolicyRepository()
        for policy in (
            grant("p-role", actor_role="family-doctor"),
            grant("p-unit", actor_id="FamilyDoctors/Dr-Rossi"),
            grant("p-parent", actor_id="FamilyDoctors"),
            grant("p-other", actor_id="Statistics"),
        ):
            repository.add(policy)
        return repository, PolicyIndex(repository)

    def test_candidates_keep_registration_order(self):
        repository, index = self.build()
        positions = index.candidate_positions(
            "Hospital", "BloodTest", "FamilyDoctors/Dr-Rossi", "family-doctor"
        )
        # Role bucket (pos 0), exact unit (pos 1) and the hierarchical
        # parent grant (pos 2) all apply — in registration order; the
        # unrelated Statistics grant is the only one pruned.
        assert positions == [0, 1, 2]

    def test_pruned_policies_are_exactly_the_not_applicable_ones(self):
        repository, index = self.build()
        policy_set, scanned = index.candidate_set(
            "Hospital", "BloodTest", "Statistics/Team-A", ""
        )
        assert scanned == 1
        assert [p.policy_id for p in policy_set.policies] == ["p-other"]
        assert index.stats.candidates_skipped >= 3

    def test_candidate_set_id_mirrors_the_repository_compilation(self):
        repository, index = self.build()
        policy_set, _ = index.candidate_set(
            "Hospital", "BloodTest", "FamilyDoctors/Dr-Rossi", "family-doctor"
        )
        assert policy_set.policy_set_id == \
            repository.to_policy_set("Hospital", "BloodTest").policy_set_id

    def test_unknown_actor_gets_an_empty_set(self):
        _, index = self.build()
        policy_set, scanned = index.candidate_set(
            "Hospital", "BloodTest", "Nobody", "no-role"
        )
        assert scanned == 0
        assert policy_set.policies == ()


class TestEpochRebuild:
    def test_add_and_revoke_rebuild_the_bucket(self):
        repository = PolicyRepository()
        repository.add(grant("p-1", actor_role="family-doctor"))
        index = PolicyIndex(repository)
        assert index.candidate_positions(
            "Hospital", "BloodTest", "X", "family-doctor") == [0]
        rebuilds = index.stats.rebuilds

        # Same epoch: the cached bucket is reused, no rebuild.
        index.candidate_positions("Hospital", "BloodTest", "X", "family-doctor")
        assert index.stats.rebuilds == rebuilds

        repository.add(grant("p-2", actor_role="family-doctor"))
        assert index.candidate_positions(
            "Hospital", "BloodTest", "X", "family-doctor") == [0, 1]
        assert index.stats.rebuilds == rebuilds + 1

        repository.revoke("p-1")
        assert index.candidate_positions(
            "Hospital", "BloodTest", "X", "family-doctor") == [0]
        policy_set, _ = index.candidate_set(
            "Hospital", "BloodTest", "X", "family-doctor")
        assert [p.policy_id for p in policy_set.policies] == ["p-2"]

    def test_time_bounded_classes_are_flagged(self):
        repository = PolicyRepository()
        repository.add(grant("p-1", actor_role="family-doctor"))
        index = PolicyIndex(repository)
        assert not index.is_time_bounded("Hospital", "BloodTest")
        repository.add(grant("p-window", actor_role="insurer",
                             valid_from=0.0, valid_until=3600.0))
        assert index.is_time_bounded("Hospital", "BloodTest")


class TestIndexedDecisionsMatchLinear:
    @pytest.mark.parametrize("purpose", ["healthcare-treatment",
                                         "statistical-analysis"])
    def test_decide_agrees_across_modes_for_a_grid_of_actors(self, purpose):
        indexed_controller, indexed_requests = build_decide_rig(
            "indexed", policies=12)
        linear_controller, linear_requests = build_decide_rig(
            "none", policies=12)
        event_id = {"indexed": indexed_requests[0].event_id,
                    "none": linear_requests[0].event_id}
        actors = [
            Actor(actor_id="Doctor", name="Doctor",
                  kind=ActorKind.CONSUMER, role="family-doctor"),
            Actor(actor_id="Other-3", name="Other 3",
                  kind=ActorKind.CONSUMER, role="unit"),
            Actor(actor_id="Stranger", name="Stranger",
                  kind=ActorKind.CONSUMER, role="unit"),
        ]
        for actor in actors:
            outcomes = {}
            for mode, controller in (("indexed", indexed_controller),
                                     ("none", linear_controller)):
                request = DetailRequest(
                    actor=actor, event_type="BloodTest",
                    event_id=event_id[mode], purpose=purpose,
                )
                outcomes[mode] = controller.enforcer.decide(request)
            assert outcomes["indexed"] == outcomes["none"]

    def test_the_index_scans_fewer_candidates_than_the_repository_holds(self):
        controller, requests = build_decide_rig("indexed", policies=24)
        for request in requests:
            controller.enforcer.decide(request)
        index = controller.perf.policy_index
        assert index is not None
        assert index.stats.selections > 0
        scanned_per_selection = (
            index.stats.candidates_scanned / index.stats.selections
        )
        assert scanned_per_selection < 24
        assert index.stats.candidates_skipped > 0
