"""Unit tests for repro.xacml.model and repro.xacml.functions."""

import pytest

from repro.exceptions import PolicyError
from repro.xacml.context import RequestContext
from repro.xacml.functions import (
    hierarchy_descendant,
    resolve,
    string_equal,
    string_equal_ignore_case,
    string_regexp_match,
    time_greater_or_equal,
    time_less_or_equal,
)
from repro.xacml.model import (
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    PolicySet,
    Rule,
    Target,
)


class TestFunctions:
    def test_string_equal(self):
        assert string_equal("a", "a")
        assert not string_equal("a", "A")

    def test_string_equal_ignore_case(self):
        assert string_equal_ignore_case("a", "A")

    def test_regexp_full_match(self):
        assert string_regexp_match("Hospital/Lab", r"Hospital/.*")
        assert not string_regexp_match("XHospital/Lab", r"Hospital/.*")

    def test_regexp_bad_pattern_rejected(self):
        with pytest.raises(PolicyError):
            string_regexp_match("x", "(unclosed")

    def test_hierarchy_descendant(self):
        assert hierarchy_descendant("Hospital", "Hospital")
        assert hierarchy_descendant("Hospital/Lab", "Hospital")
        assert hierarchy_descendant("Hospital/Lab/Unit", "Hospital/Lab")
        assert not hierarchy_descendant("Hospital2", "Hospital")
        assert not hierarchy_descendant("Hospital", "Hospital/Lab")

    def test_time_comparisons(self):
        assert time_less_or_equal("2010-01-01", "2010-06-01")
        assert time_greater_or_equal("2010-06-01", "2010-01-01")
        assert time_less_or_equal("2010-06-01", "2010-06-01")

    def test_resolve_known_and_unknown(self):
        assert resolve("string-equal") is string_equal
        with pytest.raises(PolicyError):
            resolve("no-such-function")


def request(**attrs) -> RequestContext:
    return RequestContext.build(**attrs)


class TestMatch:
    def test_match_on_any_bag_value(self):
        match = Match("subject:role", "string-equal", "doctor")
        ctx = RequestContext({"subject:role": ("nurse", "doctor")})
        assert match.evaluate(ctx)

    def test_empty_bag_never_matches(self):
        match = Match("subject:role", "string-equal", "doctor")
        assert not match.evaluate(RequestContext({}))

    def test_unknown_function_rejected_eagerly(self):
        with pytest.raises(PolicyError):
            Match("subject:role", "bogus", "x")

    def test_empty_attribute_rejected(self):
        with pytest.raises(PolicyError):
            Match("", "string-equal", "x")


class TestTarget:
    def test_empty_target_matches_everything(self):
        assert Target().applies_to(RequestContext({}))

    def test_all_of_conjunction(self):
        target = Target(all_of=(
            Match("subject:role", "string-equal", "doctor"),
            Match("resource:event-type", "string-equal", "BloodTest"),
        ))
        assert target.applies_to(request(subject__role="doctor",
                                         resource__event_type="BloodTest"))
        assert not target.applies_to(request(subject__role="doctor",
                                             resource__event_type="Other"))

    def test_any_of_alternatives(self):
        target = Target(any_of=(
            (Match("action:purpose", "string-equal", "care"),),
            (Match("action:purpose", "string-equal", "stats"),),
        ))
        assert target.applies_to(request(action__purpose="care"))
        assert target.applies_to(request(action__purpose="stats"))
        assert not target.applies_to(request(action__purpose="marketing"))

    def test_all_of_and_any_of_combine(self):
        target = Target(
            all_of=(Match("subject:role", "string-equal", "doctor"),),
            any_of=((Match("action:purpose", "string-equal", "care"),),),
        )
        assert target.applies_to(request(subject__role="doctor", action__purpose="care"))
        assert not target.applies_to(request(subject__role="nurse", action__purpose="care"))
        assert not target.applies_to(request(subject__role="doctor", action__purpose="x"))


class TestModelValidation:
    def test_rule_requires_id(self):
        with pytest.raises(PolicyError):
            Rule(rule_id="", effect=Effect.PERMIT)

    def test_policy_requires_rules(self):
        with pytest.raises(PolicyError):
            Policy(policy_id="p", target=Target(), rules=())

    def test_policy_rejects_duplicate_rule_ids(self):
        rule = Rule(rule_id="r", effect=Effect.PERMIT)
        with pytest.raises(PolicyError):
            Policy(policy_id="p", target=Target(), rules=(rule, rule))

    def test_policy_set_rejects_duplicate_policy_ids(self):
        policy = Policy(policy_id="p", target=Target(),
                        rules=(Rule(rule_id="r", effect=Effect.PERMIT),))
        with pytest.raises(PolicyError):
            PolicySet(policy_set_id="ps", policies=(policy, policy))

    def test_obligation_requires_id(self):
        with pytest.raises(PolicyError):
            Obligation("", Effect.PERMIT)

    def test_obligations_for_effect(self):
        permit_ob = Obligation("on-permit", Effect.PERMIT)
        deny_ob = Obligation("on-deny", Effect.DENY)
        policy = Policy(
            policy_id="p", target=Target(),
            rules=(Rule(rule_id="r", effect=Effect.PERMIT),),
            obligations=(permit_ob, deny_ob),
        )
        assert policy.obligations_for(Effect.PERMIT) == (permit_ob,)
        assert policy.obligations_for(Effect.DENY) == (deny_ob,)

    def test_obligation_assignment_values(self):
        obligation = Obligation(
            "css:release-fields", Effect.PERMIT,
            assignments=(("field", "a"), ("field", "b"), ("other", "c")),
        )
        assert obligation.assignment_values("field") == ("a", "b")
        assert obligation.assignment_values("missing") == ()

    def test_combining_algorithm_values(self):
        assert CombiningAlgorithm("deny-overrides") is CombiningAlgorithm.DENY_OVERRIDES
