"""Setuptools shim for environments without wheel/bdist_wheel support.

All real metadata lives in pyproject.toml; this file only enables the
legacy ``pip install -e .`` path on older toolchains.
"""

from setuptools import setup

setup()
