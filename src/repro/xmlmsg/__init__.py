"""XSD-style typed XML messaging substrate.

The CSS platform exchanges notification and detail messages as XML documents
whose structure is declared by an XML Schema "installed" in the event catalog
(paper §5).  This subpackage provides the slice of that stack the platform
needs, implemented from scratch on :mod:`xml.etree`:

* :mod:`~repro.xmlmsg.types` — simple types (string, int, decimal, boolean,
  date, enumerations, restrictions) with validation and coercion;
* :mod:`~repro.xmlmsg.schema` — element declarations, complex types, occurs
  bounds, and :class:`~repro.xmlmsg.schema.MessageSchema` (an XSD stand-in);
* :mod:`~repro.xmlmsg.document` — building, serializing and parsing XML
  documents to/from plain dictionaries;
* :mod:`~repro.xmlmsg.validation` — validating documents against schemas.

DESIGN.md §6 records why this substitution (schema objects instead of parsing
arbitrary W3C XSD files) preserves the behaviour the paper relies on: schemas
exist to publish event structure in the catalog and to drive field-level
policy obligations, both of which only need field names, types and
optionality.
"""

from repro.xmlmsg.document import XmlDocument, from_xml, to_xml
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import (
    BooleanType,
    DateType,
    DecimalType,
    EnumerationType,
    IntegerType,
    SimpleType,
    StringType,
)
from repro.xmlmsg.validation import validate_document

__all__ = [
    "BooleanType",
    "DateType",
    "DecimalType",
    "ElementDecl",
    "EnumerationType",
    "IntegerType",
    "MessageSchema",
    "Occurs",
    "SimpleType",
    "StringType",
    "XmlDocument",
    "from_xml",
    "to_xml",
    "validate_document",
]
