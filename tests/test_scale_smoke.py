"""Scale smoke test: the platform invariants hold at thousands of events.

Not a micro-benchmark (those live in benchmarks/) — a single larger run
asserting that nothing degrades structurally at scale: zero overexposure,
full traceability, intact audit chain, index/id-map consistency.
"""

import pytest

from repro.sim.scenario import CssScenario, ScenarioConfig


@pytest.fixture(scope="module")
def large_run():
    config = ScenarioConfig(n_patients=100, n_events=1500,
                            detail_request_rate=0.25, seed=99)
    scenario = CssScenario(config)
    report = scenario.run()
    return scenario, report


class TestScale:
    def test_all_events_flow(self, large_run):
        scenario, report = large_run
        assert report.events_published == 1500

    def test_invariants_hold_at_scale(self, large_run):
        scenario, report = large_run
        assert report.exposure.overexposed == 0
        assert report.exposure.traced_fraction == 1.0
        assert report.detail_denies == 0
        assert report.audit_chain_verified

    def test_index_and_idmap_consistent(self, large_run):
        scenario, report = large_run
        controller = scenario.controller
        assert len(controller.index) == len(controller.id_map) == 1500
        # Every indexed notification resolves through the id map and back.
        for entry in list(controller.id_map._by_global.values())[:100]:  # noqa: SLF001
            notification = controller.index.get(entry.event_id)
            assert notification.event_type == entry.event_type
            assert notification.subject_ref == entry.subject_ref

    def test_gateways_hold_every_detail(self, large_run):
        scenario, report = large_run
        stored = sum(len(p.gateway) for p in scenario.producers.values())
        assert stored == 1500

    def test_audit_volume_is_proportional(self, large_run):
        scenario, report = large_run
        # publish + per-delivery notify + detail requests; never less than
        # one record per event.
        assert report.audit_records >= 1500
