"""The events catalog.

"The data producer declares the ability to generate a certain type of event
... The structure of the event is specified by an XSD that is 'installed'
in an event catalog module.  The event catalog, as the structure of its
events, is visible to any candidate data consumer" (paper §5).

The catalog is the union of all producers' event classes (Def. 1:
``E = ∪ E(D_i)``).  It owns the class → bus-topic mapping and renders the
browsable listing consumers use before subscribing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace

from repro.core.events import EventClass
from repro.core.evolution import check_backward_compatible
from repro.exceptions import DuplicateEventClassError, SchemaError, UnknownEventClassError


class EventCatalog:
    """The platform-wide registry of declared event classes."""

    def __init__(self) -> None:
        self._classes: dict[str, EventClass] = {}
        self._by_producer: dict[str, list[str]] = defaultdict(list)
        self._versions: dict[str, list[EventClass]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def install(self, event_class: EventClass) -> None:
        """Install a declared class (its XSD) in the catalog.

        Class names are platform-global: two producers cannot declare the
        same name (the paper's ids are producer-qualified; globally unique
        names keep topics and policies unambiguous).
        """
        if event_class.name in self._classes:
            raise DuplicateEventClassError(
                f"event class {event_class.name!r} already installed"
            )
        self._classes[event_class.name] = event_class
        self._by_producer[event_class.producer_id].append(event_class.name)
        self._versions[event_class.name].append(event_class)

    def upgrade(self, event_class: EventClass) -> EventClass:
        """Install a new, backward-compatible version of an existing class.

        The upgrade must come from the declaring producer, keep every
        existing field (same type, no tightened occurrence, no dropped
        sensitivity flag) and add only optional fields — so existing
        policies and stored events stay valid.  Returns the stored class
        (with the version number assigned by the catalog).
        """
        current = self.get(event_class.name)
        if current.producer_id != event_class.producer_id:
            raise SchemaError(
                f"{event_class.producer_id!r} cannot upgrade class "
                f"{event_class.name!r} owned by {current.producer_id!r}"
            )
        violations = check_backward_compatible(current.schema, event_class.schema)
        if violations:
            raise SchemaError(
                f"incompatible upgrade of {event_class.name!r}: "
                + "; ".join(violations)
            )
        upgraded = replace(event_class, version=current.version + 1,
                           category=current.category)
        self._classes[upgraded.name] = upgraded
        self._versions[upgraded.name].append(upgraded)
        return upgraded

    def get_version(self, name: str, version: int) -> EventClass:
        """A specific historical version of a class (for parsing old events)."""
        for event_class in self._versions.get(name, ()):
            if event_class.version == version:
                return event_class
        raise UnknownEventClassError(f"no version {version} of class {name!r}")

    def history(self, name: str) -> list[EventClass]:
        """Every installed version of a class, oldest first."""
        self.get(name)  # raises for unknown classes
        return list(self._versions[name])

    def get(self, name: str) -> EventClass:
        """Look up an event class by name."""
        try:
            return self._classes[name]
        except KeyError as exc:
            raise UnknownEventClassError(f"event class {name!r} not in catalog") from exc

    def classes_of(self, producer_id: str) -> list[EventClass]:
        """``E(D_i)`` — every class declared by one producer."""
        return [self._classes[name] for name in self._by_producer.get(producer_id, [])]

    def all_classes(self) -> list[EventClass]:
        """``E`` — the full catalog."""
        return list(self._classes.values())

    def producer_of(self, name: str) -> str:
        """The producer that declared class ``name``."""
        return self.get(name).producer_id

    def topic_of(self, name: str) -> str:
        """The bus topic for class ``name``."""
        return self.get(name).topic

    def browse(self) -> str:
        """Render the consumer-facing catalog listing (schemas included)."""
        lines = ["EVENT CATALOG", "============="]
        for event_class in self._classes.values():
            lines.append("")
            lines.append(f"{event_class.name}  (producer: {event_class.producer_id}, "
                         f"category: {event_class.category})")
            if event_class.description:
                lines.append(f"  {event_class.description}")
            for decl in event_class.schema.elements:
                flags = []
                if decl.sensitive:
                    flags.append("sensitive")
                if decl.identifying:
                    flags.append("identifying")
                suffix = f"  [{', '.join(flags)}]" if flags else ""
                lines.append(f"  - {decl.name}: {decl.type_.describe()} "
                             f"({decl.occurs.value}){suffix}")
        return "\n".join(lines)
