#!/usr/bin/env python
"""Schema check for ``BENCH_perf.json`` (schema ``css-bench-perf/1``).

CI runs ``bench_perf_hotpath.py --quick --out BENCH_perf.json`` and then
this script.  Beyond shape validation it enforces the two semantic
gates of the perf layer:

* ``equivalence.identical`` must be ``true`` — the indexed mode may
  never change a decision or an audit record;
* the indexed PDP-decide path must be at least as fast as the linear
  baseline (``pdp_decide.speedup >= 1.0``) — the index can never rot
  into a slowdown unnoticed.

Usage::

    python benchmarks/check_perf_schema.py BENCH_perf.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-perf/1"
LATENCY_KEYS = ("p50", "p95", "p99", "mean", "min", "max")
MODES = ("indexed", "none")

#: The indexed PDP path must never regress below the linear baseline.
MIN_PDP_SPEEDUP = 1.0


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_measurement(entry: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    ops = entry.get("ops_per_second")
    if not _number(ops) or ops <= 0:
        problems.append(f"{where}.ops_per_second must be a positive number")
    iterations = entry.get("iterations")
    if not isinstance(iterations, int) or isinstance(iterations, bool) \
            or iterations <= 0:
        problems.append(f"{where}.iterations must be a positive integer")
    latency = entry.get("latency_seconds")
    if not isinstance(latency, dict):
        problems.append(f"{where}.latency_seconds must be an object")
        return problems
    for key in LATENCY_KEYS:
        value = latency.get(key)
        if not _number(value) or value < 0:
            problems.append(
                f"{where}.latency_seconds.{key} must be a non-negative number"
            )
    if all(_number(latency.get(key)) for key in ("p50", "p95", "p99")):
        if not latency["p50"] <= latency["p95"] <= latency["p99"]:
            problems.append(f"{where}: percentiles must satisfy p50 <= p95 <= p99")
    return problems


def _validate_comparison(section: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(section, dict):
        return [f"{where} must be an object"]
    for mode in MODES:
        problems.extend(_validate_measurement(section.get(mode), f"{where}.{mode}"))
    speedup = section.get("speedup")
    if not _number(speedup) or speedup <= 0:
        problems.append(f"{where}.speedup must be a positive number")
    return problems


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    if not isinstance(payload.get("quick"), bool):
        problems.append("quick must be a boolean")

    problems.extend(_validate_comparison(payload.get("pdp_decide"), "pdp_decide"))
    problems.extend(
        _validate_comparison(payload.get("publish_fanout"), "publish_fanout")
    )

    federated = payload.get("federated_details")
    if not isinstance(federated, list) or not federated:
        problems.append("federated_details must be a non-empty list")
        federated = []
    for index, point in enumerate(federated):
        where = f"federated_details[{index}]"
        if not isinstance(point, dict):
            problems.append(f"{where} must be an object")
            continue
        nodes = point.get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            problems.append(f"{where}.nodes must be a positive integer")
        problems.extend(_validate_comparison(point, where))

    equivalence = payload.get("equivalence")
    if not isinstance(equivalence, dict):
        problems.append("equivalence must be an object")
    else:
        if equivalence.get("identical") is not True:
            problems.append(
                "equivalence.identical must be true — indexed and none "
                "modes produced different decisions or audit records"
            )
        records = equivalence.get("audit_records")
        if not isinstance(records, int) or isinstance(records, bool) or records <= 0:
            problems.append("equivalence.audit_records must be a positive integer")

    pdp = payload.get("pdp_decide")
    if isinstance(pdp, dict) and _number(pdp.get("speedup")):
        if pdp["speedup"] < MIN_PDP_SPEEDUP:
            problems.append(
                f"pdp_decide.speedup {pdp['speedup']:.2f} is below the "
                f"{MIN_PDP_SPEEDUP:.1f}x floor — the indexed PDP path "
                "regressed below the linear baseline"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_perf_schema.py BENCH_perf.json", file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_perf_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_perf_schema: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_perf_schema: {problem}", file=sys.stderr)
        return 1
    pdp = payload["pdp_decide"]["speedup"]
    fanout = payload["publish_fanout"]["speedup"]
    print(f"check_perf_schema: {path} ok (pdp decide {pdp:.1f}x, "
          f"publish fanout {fanout:.1f}x vs linear baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
