"""Windowed time series over the metrics registry.

The SLO engine's lifetime ratios answer *"how has the platform done since
boot"* — useless five minutes into an incident, when the operator needs
*"how is it doing right now"*.  :class:`TimeSeriesStore` closes that gap:
on a fixed simulated-clock interval it snapshots **every** counter, gauge
and histogram of a :class:`~repro.obs.metrics.MetricsRegistry` into
bounded ring buffers, and exposes trailing-window reads over them —
:meth:`delta` and :meth:`rate` for counters, :meth:`quantile` for
histograms (the same fixed-bucket upper-bound discipline the lifetime
summaries use), :meth:`gauge_worst` for levels.

Determinism: sample timestamps come from the simulated clock, rings are
plain deques, and every read iterates series in sorted-key order — two
same-seed runs produce byte-identical exports (:meth:`export_rows`), the
property the incident bundles' byte-identity tests rely on.

Privacy: the store only ever sees what the registry already holds, and
every registry label passed through the
:class:`~repro.obs.guard.PrivacyGuard` on ingest — there is nothing here
left to sanitise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.obs.metrics import Histogram, Labels, MetricsRegistry

_EPSILON = 1e-12

#: Series key: metric name + guard-sanitised label tuple.
SeriesKey = tuple[str, Labels]


@dataclass(frozen=True)
class _HistSample:
    """One histogram snapshot: bucket counts plus the sidecars."""

    at: float
    boundaries: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    sum: float
    max: float


def _matches(labels: Labels, wanted: tuple[tuple[str, str], ...]) -> bool:
    """Label-filter subset match, same semantics as the SLO engine's."""
    table = dict(labels)
    return all(table.get(key) == value for key, value in wanted)


def _at_or_before(ring, edge: float):
    """The newest sample at or before ``edge`` (None: ring starts later)."""
    found = None
    for sample in ring:
        at = sample[0] if isinstance(sample, tuple) else sample.at
        if at <= edge + _EPSILON:
            found = sample
        else:
            break
    return found


class TimeSeriesStore:
    """Interval snapshots of a metrics registry in bounded rings.

    ``interval`` is the simulated-clock sampling period; ``capacity``
    bounds every series ring, so memory is O(series × capacity) no
    matter how long the scenario runs.  Callers drive sampling —
    :meth:`maybe_tick` from their operation loop (cheap: one float
    compare when no tick is due), or :meth:`tick` to force a sample.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock,
        interval: float = 1.0,
        capacity: int = 256,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("time-series interval must be positive")
        if capacity < 2:
            raise ConfigurationError("time-series capacity must be at least 2")
        self.metrics = metrics
        self.clock = clock
        self.interval = interval
        self.capacity = capacity
        self.ticks = 0
        self._last_tick: float | None = None
        self._counters: dict[SeriesKey, deque] = {}
        self._gauges: dict[SeriesKey, deque] = {}
        self._histograms: dict[SeriesKey, deque] = {}

    # -- sampling ----------------------------------------------------------

    def maybe_tick(self) -> bool:
        """Take a sample if at least ``interval`` has elapsed since the last."""
        now = self.clock.now()
        if (
            self._last_tick is not None
            and now - self._last_tick < self.interval - _EPSILON
        ):
            return False
        self.tick()
        return True

    def tick(self) -> None:
        """Snapshot every registry series into its ring, stamped at now."""
        now = self.clock.now()
        for key, counter in self.metrics.counter_entries():
            self._ring(self._counters, key).append((now, counter.value))
        for key, gauge in self.metrics.gauge_entries():
            self._ring(self._gauges, key).append((now, gauge.value))
        for key, histogram in self.metrics.histogram_entries():
            self._ring(self._histograms, key).append(_HistSample(
                at=now,
                boundaries=tuple(histogram.boundaries),
                counts=tuple(histogram.counts),
                count=histogram.count,
                sum=histogram.sum,
                max=histogram.max,
            ))
        self.ticks += 1
        self._last_tick = now

    def _ring(self, table: dict[SeriesKey, deque], key: SeriesKey) -> deque:
        ring = table.get(key)
        if ring is None:
            ring = table[key] = deque(maxlen=self.capacity)
        return ring

    def tick_times(self) -> tuple[float, ...]:
        """Every retained sample time, across all rings, sorted."""
        times: set[float] = set()
        for table in (self._counters, self._gauges, self._histograms):
            for ring in table.values():
                for sample in ring:
                    times.add(sample[0] if isinstance(sample, tuple)
                              else sample.at)
        return tuple(sorted(times))

    # -- counter windows ---------------------------------------------------

    def delta(
        self,
        name: str,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
        now: float | None = None,
    ) -> float:
        """Counter increase over the trailing ``window``, summed over the
        matching series.

        The window's *end* is the live registry value (no staleness); the
        *start* is the newest retained sample at or before the window
        edge — a series younger than the window is counted from zero,
        exactly the monotone-from-boot truth of these counters.
        """
        now = self.clock.now() if now is None else now
        edge = now - window
        total = 0.0
        for (metric, labels), counter in self.metrics.counter_entries():
            if metric != name or not _matches(labels, wanted):
                continue
            ring = self._counters.get((metric, labels))
            base = _at_or_before(ring, edge) if ring else None
            total += counter.value - (base[1] if base is not None else 0.0)
        return total

    def rate(
        self,
        name: str,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
        now: float | None = None,
    ) -> float:
        """Counter increase per simulated second over the trailing window.

        Early in a run the effective span is clamped to the elapsed
        simulated time (never below one sampling interval), so a burst at
        t=0.5s is not divided by a 60 s window it never lived through.
        """
        now = self.clock.now() if now is None else now
        span = max(min(window, now), self.interval)
        return self.delta(name, window, wanted=wanted, now=now) / span

    # -- histogram windows -------------------------------------------------

    def windowed_histogram(
        self,
        name: str,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
        now: float | None = None,
    ) -> Histogram | None:
        """The matching series' observations from the trailing window only,
        folded into one synthetic :class:`~repro.obs.metrics.Histogram`.

        ``None`` when no matching series exists.  Bucket counts are the
        live counts minus the window-edge sample's; the sidecar max is
        the smallest boundary that covers the highest non-empty bucket
        (the usual upper-bound estimate — window membership of the true
        max is unknowable from buckets).
        """
        now = self.clock.now() if now is None else now
        edge = now - window
        boundaries: tuple[float, ...] | None = None
        merged: list[int] = []
        total = 0
        total_sum = 0.0
        live_max = 0.0
        found = False
        for (metric, labels), histogram in self.metrics.histogram_entries():
            if metric != name or not _matches(labels, wanted):
                continue
            found = True
            if boundaries is None:
                boundaries = tuple(histogram.boundaries)
                merged = [0] * (len(boundaries) + 1)
            if tuple(histogram.boundaries) != boundaries:
                continue  # mixed bucket layouts never merge
            ring = self._histograms.get((metric, labels))
            base = _at_or_before(ring, edge) if ring else None
            base_counts = base.counts if base is not None else ()
            for index, live in enumerate(histogram.counts):
                before = base_counts[index] if index < len(base_counts) else 0
                merged[index] += live - before
            total += histogram.count - (base.count if base is not None else 0)
            total_sum += histogram.sum - (base.sum if base is not None else 0.0)
            live_max = max(live_max, histogram.max)
        if not found or boundaries is None:
            return None
        estimated_max = 0.0
        for index in range(len(merged) - 1, -1, -1):
            if merged[index]:
                estimated_max = (
                    live_max if index == len(boundaries)
                    else min(boundaries[index], live_max)
                )
                break
        result = Histogram(boundaries=boundaries, counts=merged)
        result.count = total
        result.sum = total_sum
        result.max = estimated_max
        result.min = 0.0
        return result

    def quantile(
        self,
        name: str,
        q: float,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
        now: float | None = None,
    ) -> float:
        """Windowed ``q``-quantile of histogram ``name`` (0.0 if empty)."""
        histogram = self.windowed_histogram(name, window, wanted=wanted, now=now)
        if histogram is None or histogram.count <= 0:
            return 0.0
        return histogram.quantile(q)

    # -- gauge windows -----------------------------------------------------

    def gauge_worst(
        self,
        name: str,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
        now: float | None = None,
    ) -> float | None:
        """Worst (highest) matching gauge level seen over the window.

        Includes the live value, so a spike between two ticks still
        counts.  ``None`` when no matching series exists.
        """
        now = self.clock.now() if now is None else now
        edge = now - window
        worst: float | None = None
        for (metric, labels), gauge in self.metrics.gauge_entries():
            if metric != name or not _matches(labels, wanted):
                continue
            worst = gauge.value if worst is None else max(worst, gauge.value)
            ring = self._gauges.get((metric, labels))
            for at, value in ring or ():
                if at >= edge - _EPSILON:
                    worst = max(worst, value)
        return worst

    # -- sample-anchored windows (historical points, incident bundles) -----

    def sample_delta(
        self,
        name: str,
        at: float,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
    ) -> float:
        """Counter increase over ``[at - window, at]`` from samples only.

        The historical sibling of :meth:`delta` — both window ends come
        from retained samples, so the answer is the same whenever it is
        asked.  Incident bundles use it to reconstruct the burn-rate
        trajectory leading up to a trigger.
        """
        edge = at - window
        total = 0.0
        for (metric, labels), ring in sorted(self._counters.items(),
                                             key=lambda item: item[0]):
            if metric != name or not _matches(labels, wanted):
                continue
            end = _at_or_before(ring, at)
            if end is None:
                continue
            base = _at_or_before(ring, edge)
            total += end[1] - (base[1] if base is not None else 0.0)
        return total

    def sample_histogram(
        self,
        name: str,
        at: float,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
    ) -> Histogram | None:
        """Historical sibling of :meth:`windowed_histogram`, samples only."""
        edge = at - window
        boundaries: tuple[float, ...] | None = None
        merged: list[int] = []
        total = 0
        total_sum = 0.0
        end_max = 0.0
        found = False
        for (metric, labels), ring in sorted(self._histograms.items(),
                                             key=lambda item: item[0]):
            if metric != name or not _matches(labels, wanted):
                continue
            end = _at_or_before(ring, at)
            if end is None:
                continue
            found = True
            if boundaries is None:
                boundaries = end.boundaries
                merged = [0] * (len(boundaries) + 1)
            if end.boundaries != boundaries:
                continue
            base = _at_or_before(ring, edge)
            base_counts = base.counts if base is not None else ()
            for index, value in enumerate(end.counts):
                before = base_counts[index] if index < len(base_counts) else 0
                merged[index] += value - before
            total += end.count - (base.count if base is not None else 0)
            total_sum += end.sum - (base.sum if base is not None else 0.0)
            end_max = max(end_max, end.max)
        if not found or boundaries is None:
            return None
        estimated_max = 0.0
        for index in range(len(merged) - 1, -1, -1):
            if merged[index]:
                estimated_max = (
                    end_max if index == len(boundaries)
                    else min(boundaries[index], end_max)
                )
                break
        result = Histogram(boundaries=boundaries, counts=merged)
        result.count = total
        result.sum = total_sum
        result.max = estimated_max
        result.min = 0.0
        return result

    def sample_gauge_worst(
        self,
        name: str,
        at: float,
        window: float,
        wanted: tuple[tuple[str, str], ...] = (),
    ) -> float | None:
        """Historical sibling of :meth:`gauge_worst`, samples only."""
        edge = at - window
        worst: float | None = None
        for (metric, labels), ring in sorted(self._gauges.items(),
                                             key=lambda item: item[0]):
            if metric != name or not _matches(labels, wanted):
                continue
            for sample_at, value in ring:
                if edge - _EPSILON <= sample_at <= at + _EPSILON:
                    worst = value if worst is None else max(worst, value)
        return worst

    # -- export ------------------------------------------------------------

    def export_rows(self, names: tuple[str, ...] | None = None) -> list[dict]:
        """Every retained series as a deterministic plain-dict row.

        ``names`` filters to the given metric names (None: everything).
        Counter/gauge points are ``[at, value]`` pairs; histogram points
        are ``[at, count, sum]`` — enough to recompute any windowed rate
        offline without shipping every bucket of every sample.
        """
        rows: list[dict] = []
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges)):
            for (name, labels), ring in table.items():
                if names is not None and name not in names:
                    continue
                rows.append({
                    "type": kind, "name": name,
                    "labels": dict(sorted(labels)),
                    "points": [[at, value] for at, value in ring],
                })
        for (name, labels), ring in self._histograms.items():
            if names is not None and name not in names:
                continue
            rows.append({
                "type": "histogram", "name": name,
                "labels": dict(sorted(labels)),
                "points": [[s.at, s.count, round(s.sum, 9)] for s in ring],
            })
        rows.sort(key=lambda row: (row["name"], sorted(row["labels"].items()),
                                   row["type"]))
        return rows
