"""Property-based tests of the elicitation → enforcement pipeline.

For ANY valid wizard session, the saved policies must grant exactly what
the author selected — no more, no less — once enforced on a real platform:

* a consumer named in the session can access exactly the selected fields
  for exactly the selected purposes;
* consumers/purposes outside the session stay denied (deny-by-default);
* the generated XACML round-trips losslessly and evaluates to the same
  decisions as the Def. 3 policy objects.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AccessDeniedError, DataConsumer, DataController, DataProducer
from repro.core.policy import DetailRequestSpec
from repro.xacml.serialize import parse_policy
from tests.conftest import blood_test_schema

FIELDS = ("PatientId", "Name", "Hemoglobin", "Glucose", "HivResult")
PURPOSES = ("healthcare-treatment", "statistical-analysis", "administration",
            "reimbursement")
CONSUMERS = ("Unit-A", "Unit-B")

session_strategy = st.fixed_dictionaries({
    "fields": st.frozensets(st.sampled_from(FIELDS), min_size=1),
    "purposes": st.frozensets(st.sampled_from(PURPOSES), min_size=1),
    "consumers": st.frozensets(st.sampled_from(CONSUMERS), min_size=1),
})


def build_platform():
    controller = DataController(seed="elicit-prop")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    consumers = {
        consumer_id: DataConsumer(controller, consumer_id, consumer_id)
        for consumer_id in CONSUMERS
    }
    notification = hospital.publish(
        blood, subject_id="p1", subject_name="Mario Bianchi", summary="done",
        details={"PatientId": "p1", "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})
    return controller, hospital, consumers, notification


@given(session=session_strategy)
@settings(max_examples=40, deadline=None)
def test_wizard_grants_exactly_the_selection(session):
    controller, hospital, consumers, notification = build_platform()
    result = hospital.define_policy(
        event_type="BloodTest",
        fields=sorted(session["fields"]),
        consumers=[(c, "unit") for c in sorted(session["consumers"])],
        purposes=sorted(session["purposes"]),
    )
    assert len(result.policies) == len(session["consumers"])

    for consumer_id, consumer in consumers.items():
        for purpose in PURPOSES:
            should_permit = (consumer_id in session["consumers"]
                             and purpose in session["purposes"])
            try:
                detail = consumer.request_details(notification, purpose)
                permitted = True
            except AccessDeniedError:
                permitted = False
            assert permitted == should_permit, (consumer_id, purpose)
            if permitted:
                # Exactly the selected fields (all are non-empty in the event).
                assert set(detail.exposed_values()) == set(session["fields"])


@given(session=session_strategy)
@settings(max_examples=40, deadline=None)
def test_generated_xacml_agrees_with_def3(session):
    controller, hospital, consumers, notification = build_platform()
    result = hospital.define_policy(
        event_type="BloodTest",
        fields=sorted(session["fields"]),
        consumers=[(c, "unit") for c in sorted(session["consumers"])],
        purposes=sorted(session["purposes"]),
    )
    from repro.xacml.context import Decision, RequestContext
    from repro.xacml.pdp import PolicyDecisionPoint

    pdp = PolicyDecisionPoint()
    for policy, xacml_text in zip(result.policies, result.xacml_documents):
        parsed = parse_policy(xacml_text)
        assert parsed == policy.to_xacml()  # lossless round-trip
        for actor in CONSUMERS + ("Stranger",):
            for purpose in PURPOSES:
                spec = DetailRequestSpec(actor, "BloodTest", purpose)
                ctx = RequestContext.build(
                    subject__actor_id=actor,
                    resource__event_type="BloodTest",
                    action__purpose=purpose,
                )
                decision = pdp.evaluate_policy(parsed, ctx).decision
                assert (decision is Decision.PERMIT) == policy.matches(spec)
