"""Durable kernel backends: a platform that survives a restart.

The service-kernel refactor makes every controller collaborator a named,
swappable implementation.  This example runs a small deployment on the
JSONL-backed events index and audit sink (``RuntimeConfig(index_store=
"jsonl", audit_sink="jsonl")``), then rebuilds both stores from the files
alone — the notifications (identity slots sealed on disk, decrypted only
through the keystore) and the hash-chained audit trail all replay, and
tampering with the audit file is detected at load time.

Run with::

    python examples/durable_backends.py
"""

import json
import tempfile
from pathlib import Path

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig
from repro.crypto.keystore import KeyStore
from repro.exceptions import TamperedLogError
from repro.runtime.backends import JsonlAuditSink, JsonlIndexStore
from repro.xmlmsg.schema import ElementDecl, MessageSchema
from repro.xmlmsg.types import DecimalType, StringType


def blood_test_schema() -> MessageSchema:
    return MessageSchema("BloodTest", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("Hemoglobin", DecimalType(0, 30), sensitive=True),
    ])


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="css-durable-"))
    print(f"data directory: {data_dir}\n")

    # -- phase 1: run a platform on the JSONL backends ---------------------
    controller = DataController(
        seed="durable",
        runtime=RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                              data_dir=data_dir),
    )
    print("kernel wiring:", {
        "index": type(controller.index).__name__,
        "audit": type(controller.audit_log).__name__,
    })
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")

    for index, (patient, name) in enumerate(
        [("pat-1", "Mario Bianchi"), ("pat-2", "Anna Verdi")], start=1
    ):
        notification = hospital.publish(
            blood, subject_id=patient, subject_name=name,
            summary=f"blood test #{index} completed",
            details={"PatientId": patient, "Name": name, "Hemoglobin": 13.5},
        )
        doctor.request_details(notification, "healthcare-treatment")
    print(f"published {len(controller.index)} events, "
          f"{len(controller.audit_log)} audit records\n")

    # -- phase 2: what actually sits on disk -------------------------------
    first_row = json.loads((data_dir / "index.jsonl").read_text().splitlines()[0])
    print("first index row on disk (identity slots sealed):")
    print(f"  subjectRef slot: {first_row['slots']['subjectRef'][0][:44]}...\n")

    # -- phase 3: rebuild both stores from the files alone -----------------
    reloaded_index = JsonlIndexStore(data_dir / "index.jsonl",
                                     KeyStore("css-platform-secret"))
    reloaded_audit = JsonlAuditSink(data_dir / "audit.jsonl")
    reloaded_audit.verify_integrity()
    print(f"replayed {len(reloaded_index)} notifications "
          f"(nonce sequence restored to {reloaded_index.sequence}) and "
          f"{len(reloaded_audit)} audit records (chain verified)")
    replayed = reloaded_index.get(first_row["object_id"])
    print(f"decrypted through the keystore: subject={replayed.subject_ref!r}, "
          f"display={replayed.subject_display!r}\n")

    # -- phase 4: tampering with the audit file is detected ----------------
    audit_path = data_dir / "audit.jsonl"
    lines = audit_path.read_text().splitlines()
    doctored = json.loads(lines[0])
    doctored["actor"] = "someone-else"
    lines[0] = json.dumps(doctored)
    audit_path.write_text("\n".join(lines) + "\n")
    try:
        JsonlAuditSink(audit_path)
    except TamperedLogError as exc:
        print(f"tampered audit file rejected on replay: {exc}")


if __name__ == "__main__":
    main()
