"""Purpose-of-use taxonomy.

The paper's access control is *purpose-based*: every request for details
carries "a purpose statement" and policies enumerate "admissible purposes"
(§1, §5.1 — e.g. healthcare treatment, statistical analysis,
administration).  Purposes live in a registry so the elicitation tool can
offer a controlled list and the enforcer can reject made-up purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Purpose:
    """A declared purpose of use."""

    purpose_id: str
    label: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.purpose_id or " " in self.purpose_id:
            raise ConfigurationError(f"illegal purpose id {self.purpose_id!r}")


# The purposes named in the paper (§5.1 and Fig. 8).
HEALTHCARE_TREATMENT = Purpose(
    "healthcare-treatment",
    "Healthcare treatment provisioning",
    "Care delivery to the data subject by an authorized caregiver.",
)
STATISTICAL_ANALYSIS = Purpose(
    "statistical-analysis",
    "Statistical analysis",
    "Aggregate analysis of service needs and outcomes (e.g. elderly autonomy).",
)
ADMINISTRATION = Purpose(
    "administration",
    "Administration",
    "Administrative handling of the assistance process.",
)
REIMBURSEMENT = Purpose(
    "reimbursement",
    "Accountability and reimbursement",
    "Reporting to the governing body for accountability and reimbursement (§2).",
)
SERVICE_MONITORING = Purpose(
    "service-monitoring",
    "Service efficiency monitoring",
    "Assessment of the efficiency of delivered services by the governing body.",
)

#: The default taxonomy installed on a fresh platform.
STANDARD_PURPOSES = (
    HEALTHCARE_TREATMENT,
    STATISTICAL_ANALYSIS,
    ADMINISTRATION,
    REIMBURSEMENT,
    SERVICE_MONITORING,
)


class PurposeRegistry:
    """The controlled list of purposes the platform accepts."""

    def __init__(self, purposes: tuple[Purpose, ...] = STANDARD_PURPOSES) -> None:
        self._purposes: dict[str, Purpose] = {}
        for purpose in purposes:
            self.add(purpose)

    def __len__(self) -> int:
        return len(self._purposes)

    def __contains__(self, purpose_id: str) -> bool:
        return purpose_id in self._purposes

    def add(self, purpose: Purpose) -> None:
        """Register a purpose; duplicates are rejected."""
        if purpose.purpose_id in self._purposes:
            raise ConfigurationError(f"purpose {purpose.purpose_id!r} already registered")
        self._purposes[purpose.purpose_id] = purpose

    def get(self, purpose_id: str) -> Purpose:
        """Look up a purpose by id."""
        try:
            return self._purposes[purpose_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown purpose {purpose_id!r}") from exc

    def require(self, purpose_id: str) -> None:
        """Raise unless ``purpose_id`` is registered (request validation)."""
        self.get(purpose_id)

    def all_purposes(self) -> list[Purpose]:
        """Every registered purpose."""
        return list(self._purposes.values())

    def ids(self) -> list[str]:
        """Every registered purpose id."""
        return list(self._purposes)
