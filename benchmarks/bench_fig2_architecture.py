"""Experiment F2 (paper Fig. 2): the event-based architecture.

Fig. 2 shows producers publishing through the data controller's bus to
many subscribers.  The quantitative claims behind the picture:

* **Decoupling / connector scaling** — point-to-point SOA needs O(N·M)
  standing connectors; the bus needs O(N+M) links (one publication topic
  per class + one subscription per interest).
* **Fan-out cost** — a producer publishes once regardless of subscriber
  count; the bus absorbs the fan-out.
* **End-to-end pipeline** — publish → index → notify → request-details is
  a bounded chain of steps.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_micro_platform
from repro.bus.broker import ServiceBus
from repro.bus.endpoints import EndpointRegistry


def _p2p_connector_count(n_producers: int, n_consumers: int) -> int:
    registry = EndpointRegistry()
    for p in range(n_producers):
        for c in range(n_consumers):
            registry.expose(f"p2p.{p}.to.{c}", lambda req: req)
    return len(registry)


def _bus_link_count(n_producers: int, n_consumers: int) -> int:
    bus = ServiceBus(strict_topics=False)
    for p in range(n_producers):
        bus.declare_topic(f"events.cat.Class{p}")
    for c in range(n_consumers):
        bus.subscribe(f"consumer-{c}", "events.#", lambda e: None)
    return len(bus.topics.all_paths()) + bus.subscription_count


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_connector_scaling(benchmark, n):
    """O(N·M) connectors vs O(N+M) bus links as institutions join."""
    def build_both():
        return _p2p_connector_count(n, n), _bus_link_count(n, n)

    p2p, bus = benchmark(build_both)
    print(f"\n[F2] N=M={n}: point-to-point connectors={p2p}, bus links={bus}")
    assert p2p == n * n
    assert bus == 2 * n
    if n >= 10:
        assert p2p > 4 * bus


@pytest.mark.parametrize("n_subscribers", [1, 10, 50])
def test_publish_fanout_cost(benchmark, n_subscribers):
    """One publish call serves any number of subscribers (bus absorbs fan-out)."""
    bus = ServiceBus(strict_topics=False, auto_dispatch=True)
    bus.declare_topic("events.health.BloodTest")
    sink: list = []
    for index in range(n_subscribers):
        bus.subscribe(f"c{index}", "events.health.BloodTest", sink.append)

    benchmark(bus.publish, "events.health.BloodTest", "hospital", "<Notification/>")
    assert len(sink) >= n_subscribers  # every subscriber got every round's message
    # Clean measurement window: reset the warmed-up counters, then take one
    # exactly-measured round instead of dividing cumulative totals by rounds.
    bus.stats.reset()
    bus.publish("events.health.BloodTest", "hospital", "<Notification/>")
    stats = bus.stats
    assert stats.published == 1
    assert stats.fanned_out == n_subscribers
    assert stats.bytes_fanned_out == stats.bytes_published * n_subscribers
    assert bus.queue_depth == 0  # auto_dispatch drained every queue
    print(
        f"\n[F2] subscribers={n_subscribers}: published={stats.bytes_published}B, "
        f"fanned out={stats.bytes_fanned_out}B "
        f"(amplification x{stats.bytes_fanned_out / max(1, stats.bytes_published):.0f})"
    )


def test_end_to_end_pipeline(benchmark):
    """publish → index → notify → request-details, the full Fig. 2 path."""
    platform = build_micro_platform()
    counter = {"n": 0}

    def round_trip():
        counter["n"] += 1
        notification = platform.producer.publish(
            platform.event_class,
            subject_id=f"pat-{counter['n']}",
            subject_name="Mario Bianchi",
            summary="blood test completed",
            details={"PatientId": f"pat-{counter['n']}", "Name": "Mario",
                     "Surname": "Bianchi", "Hemoglobin": 14.0, "Glucose": 92.0,
                     "Cholesterol": 180.0, "HivResult": "negative"},
        )
        return platform.consumer.request_details(notification, "healthcare-treatment")

    detail = benchmark(round_trip)
    assert detail.exposed_values()
    assert "HivResult" not in detail.exposed_values()


def test_sustained_publish_throughput(benchmark):
    """Batch of 100 publishes through the full controller pipeline.

    Covers validation, gateway persistence, id mapping, index sealing,
    bus fan-out to one subscriber and audit — the sustained ingest path of
    Fig. 2.  Events/second = 100 / measured time.
    """
    platform = build_micro_platform()
    counter = {"n": 0}

    def publish_batch():
        for _ in range(100):
            counter["n"] += 1
            platform.producer.publish(
                platform.event_class,
                subject_id=f"batch-{counter['n']}",
                subject_name="Mario Bianchi",
                summary="blood test completed",
                details={"PatientId": f"batch-{counter['n']}", "Name": "Mario",
                         "Surname": "Bianchi", "Hemoglobin": 14.0,
                         "Glucose": 92.0, "Cholesterol": 180.0,
                         "HivResult": "negative"},
            )

    benchmark.pedantic(publish_batch, rounds=5, iterations=1)
    assert len(platform.consumer.inbox) >= 500


def test_index_inquiry_path(benchmark):
    """The pull alternative: consumers query the events index directly."""
    platform = build_micro_platform()
    for index in range(50):
        platform.producer.publish(
            platform.event_class, subject_id=f"pat-{index}", subject_name="X Y",
            summary="blood test completed",
            details={"PatientId": f"pat-{index}", "Name": "X", "Surname": "Y",
                     "Hemoglobin": 14.0, "Glucose": 92.0, "Cholesterol": 180.0,
                     "HivResult": "negative"},
        )

    results = benchmark(platform.consumer.inquire_index, ["BloodTest"])
    assert len(results) == 51  # 50 here + 1 from the fixture
