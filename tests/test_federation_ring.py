"""Tests for the consistent-hash ring and the keyed subject shard key."""

import pytest

from repro.exceptions import ConfigurationError, FederationError
from repro.federation.ring import HashRing, subject_shard_key


def ring_with(*node_ids: str) -> HashRing:
    ring = HashRing()
    for node_id in node_ids:
        ring.add_node(node_id)
    return ring


class TestSubjectShardKey:
    def test_deterministic(self):
        assert subject_shard_key("s", "pat-1") == subject_shard_key("s", "pat-1")

    def test_keyed_by_secret(self):
        assert (subject_shard_key("secret-a", "pat-1")
                != subject_shard_key("secret-b", "pat-1"))

    def test_distinct_subjects_get_distinct_keys(self):
        keys = {subject_shard_key("s", f"pat-{i}") for i in range(100)}
        assert len(keys) == 100

    def test_never_contains_the_plaintext_subject(self):
        key = subject_shard_key("s", "pat-mario-bianchi")
        assert "mario" not in key.lower()
        assert key.startswith("sk:")

    def test_empty_subject_is_rejected(self):
        with pytest.raises(FederationError):
            subject_shard_key("s", "")


class TestHashRing:
    def test_membership_accessors(self):
        ring = ring_with("node-1", "node-0")
        assert len(ring) == 2
        assert "node-0" in ring
        assert "node-9" not in ring
        assert ring.nodes == ("node-0", "node-1")

    def test_owner_is_deterministic(self):
        first = ring_with("node-0", "node-1", "node-2")
        second = ring_with("node-0", "node-1", "node-2")
        for i in range(50):
            key = subject_shard_key("s", f"pat-{i}")
            assert first.owner_of(key) == second.owner_of(key)

    def test_ownership_reasonably_balanced(self):
        ring = ring_with("node-0", "node-1", "node-2", "node-3")
        counts = {node: 0 for node in ring.nodes}
        for i in range(400):
            counts[ring.owner_of(subject_shard_key("s", f"pat-{i}"))] += 1
        # Virtual nodes keep every shard in the game: no shard owns nothing,
        # none owns a majority.
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < 400 // 2

    def test_adding_a_node_moves_only_captured_keys(self):
        ring = ring_with("node-0", "node-1", "node-2")
        keys = [subject_shard_key("s", f"pat-{i}") for i in range(300)]
        before = {key: ring.owner_of(key) for key in keys}
        ring.add_node("node-3")
        moved = 0
        for key in keys:
            after = ring.owner_of(key)
            if after != before[key]:
                # Consistent hashing: reassignments only flow TO the new node.
                assert after == "node-3"
                moved += 1
        assert 0 < moved < len(keys) // 2

    def test_remove_node_restores_previous_ownership(self):
        ring = ring_with("node-0", "node-1")
        keys = [subject_shard_key("s", f"pat-{i}") for i in range(100)]
        before = {key: ring.owner_of(key) for key in keys}
        ring.add_node("node-2")
        ring.remove_node("node-2")
        assert {key: ring.owner_of(key) for key in keys} == before

    def test_duplicate_and_unknown_nodes_are_rejected(self):
        ring = ring_with("node-0")
        with pytest.raises(FederationError):
            ring.add_node("node-0")
        with pytest.raises(FederationError):
            ring.add_node("")
        with pytest.raises(FederationError):
            ring.remove_node("node-7")

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(FederationError):
            HashRing().owner_of("sk:abc")

    def test_replicas_validated(self):
        with pytest.raises(ConfigurationError):
            HashRing(replicas=0)
