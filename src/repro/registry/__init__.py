"""ebXML-style registry substrate.

The CSS events index is "implemented according to the ebXML standard" (paper
§4): notification metadata is stored as registry objects that consumers can
inquire.  This subpackage implements the slice of OASIS ebRIM/ebRS the
platform needs:

* :mod:`~repro.registry.objects` — registry objects with classifications,
  slots (named attribute lists) and associations;
* :mod:`~repro.registry.registry` — the registry itself: submit, approve,
  deprecate, remove lifecycle plus indexed retrieval;
* :mod:`~repro.registry.query` — an ad-hoc filter-query engine mirroring the
  ebRS ``AdhocQueryRequest`` (conjunctions of slot/classification/attribute
  predicates).
"""

from repro.registry.objects import Association, Classification, LifecycleStatus, RegistryObject, Slot
from repro.registry.query import FilterQuery, Predicate
from repro.registry.registry import Registry

__all__ = [
    "Association",
    "Classification",
    "FilterQuery",
    "LifecycleStatus",
    "Predicate",
    "Registry",
    "RegistryObject",
    "Slot",
]
