"""Identity provider consulted by the data controller.

The provider authenticates an actor's presented credential and validates
the *role assertion*: the role the actor operates under must be the role
its credential certifies.  This is what turns the base platform's
self-declared roles (the trusted-parties assumption of §5) into verified
attributes — the future-work extension of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AccessDeniedError, TokenError
from repro.identity.credentials import CredentialAuthority, RoleCredential


@dataclass(frozen=True)
class AuthContext:
    """The outcome of a successful authentication."""

    actor_id: str
    verified_role: str
    credential_id: str


class LocalIdentityProvider:
    """Validates credentials against a local credential authority.

    A production deployment would swap this for a federation client (PdD);
    the data controller only depends on :meth:`authenticate`.
    """

    def __init__(self, authority: CredentialAuthority) -> None:
        self._authority = authority

    @property
    def authority(self) -> CredentialAuthority:
        """The backing credential authority."""
        return self._authority

    def authenticate(self, actor_id: str, credential: RoleCredential | None,
                     asserted_role: str = "") -> AuthContext:
        """Authenticate ``actor_id`` and validate its role assertion.

        Raises :class:`~repro.exceptions.AccessDeniedError` when the
        credential is missing, invalid, bound to a different actor, or
        certifies a different role than asserted.
        """
        if credential is None:
            raise AccessDeniedError(
                f"identity management active: {actor_id!r} must present a credential"
            )
        try:
            self._authority.verify(credential)
        except TokenError as exc:
            raise AccessDeniedError(f"credential rejected: {exc}") from exc
        if credential.actor_id != actor_id:
            raise AccessDeniedError(
                f"credential {credential.credential_id!r} is bound to "
                f"{credential.actor_id!r}, not {actor_id!r}"
            )
        if asserted_role and credential.role != asserted_role:
            raise AccessDeniedError(
                f"{actor_id!r} asserts role {asserted_role!r} but its "
                f"credential certifies {credential.role!r}"
            )
        return AuthContext(
            actor_id=actor_id,
            verified_role=credential.role,
            credential_id=credential.credential_id,
        )
