"""Privacy-safe profiling: deterministic time attribution per code section.

A real sampling profiler interrupts on a wall-clock timer; this platform
runs on a *simulated* clock, so :class:`SamplingProfiler` keeps the
facade (samples, attributed seconds, a top-N view) but takes one sample
per closed section and attributes the section's simulated duration to a
``(section, labels)`` bucket.  Same workload, same profile — byte for
byte, which is what the determinism tests require.

Sections that do not advance the simulated clock (sealing and opening a
federation channel is pure computation) still record a sample with zero
attributed seconds: the profile shows *how often* the crypto boundary is
crossed even when the cost model charges no time for it.

Every label bucket passes the :class:`~repro.obs.guard.PrivacyGuard`, so
a profile can say *which pipeline stage* or *which (hashed) link* was
hot, never *whose* request made it hot.
"""

from __future__ import annotations

from repro.clock import Clock
from repro.crypto.hashing import canonical_json
from repro.obs.guard import PrivacyGuard

#: Canonical section names the platform's hooks record.
SECTION_STAGE = "pipeline.stage"
SECTION_LINK_HOP = "link.hop"
SECTION_SEAL = "crypto.seal"
SECTION_OPEN = "crypto.open"

Labels = tuple[tuple[str, str], ...]


class NoopProfiler:
    """Profiling disabled (kernel kind ``profiling: noop``, the default)."""

    enabled = False

    def record(self, section: str, seconds: float, **labels: object) -> None:
        """No-op."""

    def snapshot(self) -> list[dict]:
        """No samples."""
        return []

    def profile_lines(self) -> list[str]:
        """No export."""
        return []


class SamplingProfiler:
    """Deterministic section profiler over the simulated clock."""

    enabled = True

    def __init__(self, clock: Clock | None = None,
                 guard: PrivacyGuard | None = None) -> None:
        self.clock = clock or Clock()
        self.guard = guard or PrivacyGuard()
        self._buckets: dict[tuple[str, Labels], list[float]] = {}

    def record(self, section: str, seconds: float, **labels: object) -> None:
        """Attribute ``seconds`` of simulated time (one sample) to a bucket."""
        key = (section, self.guard.sanitize(labels))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = [0.0, 0.0]  # [seconds, samples]
        bucket[0] += max(0.0, seconds)
        bucket[1] += 1.0

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every bucket as a plain dict row, deterministically ordered."""
        rows = [
            {
                "section": section,
                "labels": dict(sorted(labels)),
                "seconds": seconds,
                "samples": int(samples),
                "mean": seconds / samples if samples else 0.0,
            }
            for (section, labels), (seconds, samples) in self._buckets.items()
        ]
        rows.sort(key=lambda row: (row["section"], sorted(row["labels"].items())))
        return rows

    def top(self, n: int = 10) -> list[dict]:
        """The ``n`` buckets with the most attributed simulated time."""
        rows = self.snapshot()
        rows.sort(key=lambda row: (-row["seconds"], row["section"],
                                   sorted(row["labels"].items())))
        return rows[:n]

    def total_seconds(self) -> float:
        """All simulated time attributed so far."""
        return sum(seconds for seconds, _ in self._buckets.values())

    def reset(self) -> None:
        """Drop every bucket."""
        self._buckets.clear()

    # -- export -------------------------------------------------------------

    def profile_lines(self) -> list[str]:
        """One canonical-JSON line per bucket (deterministic)."""
        return [canonical_json(row) for row in self.snapshot()]

    def to_table(self, n: int = 15) -> str:
        """Console rendering of the hottest buckets."""
        rows = self.top(n)
        if not rows:
            return "(no profile samples recorded)"
        rendered = [
            "profile (simulated seconds attributed per section):",
            f"  {'section':<16} {'labels':<42} {'seconds':>10} {'samples':>8}",
        ]
        for row in rows:
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            rendered.append(
                f"  {row['section']:<16} {labels:<42} "
                f"{row['seconds']:>10.4f} {row['samples']:>8}"
            )
        return "\n".join(rendered)
