"""Delivery engine: at-least-once dispatch with retry and dead-lettering.

Dispatch is pull-based and synchronous (the bus is in-process): ``publish``
enqueues into every matching subscription's queue, then the broker runs a
dispatch round that drains queues through subscriber callbacks.  A callback
that raises counts as a failed attempt; after ``max_attempts`` the message
moves to the dead-letter queue so one poison message cannot wedge a
subscription — the behaviour the paper gets from ServiceMix's redelivery
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.queue import DeadLetterQueue
from repro.bus.subscriptions import Subscription
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DeliveryPolicy:
    """Retry budget; the engine default unless a subscription overrides it."""

    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")


@dataclass
class DeliveryReport:
    """Outcome of one dispatch round."""

    delivered: int = 0
    failed: int = 0
    dead_lettered: int = 0
    errors: list[str] = field(default_factory=list)

    def merge(self, other: "DeliveryReport") -> None:
        """Fold another report into this one."""
        self.delivered += other.delivered
        self.failed += other.failed
        self.dead_lettered += other.dead_lettered
        self.errors.extend(other.errors)


class DeliveryEngine:
    """Drains subscription queues through their handlers."""

    def __init__(self, policy: DeliveryPolicy | None = None) -> None:
        self.policy = policy or DeliveryPolicy()
        self.dead_letter = DeadLetterQueue("dead-letter")

    def policy_for(self, subscription: Subscription) -> DeliveryPolicy:
        """The retry budget governing one subscription (override or default)."""
        return subscription.policy or self.policy

    def dispatch_subscription(self, subscription: Subscription) -> DeliveryReport:
        """Deliver every queued message of one subscription.

        Stops early if the head message keeps failing but still has retry
        budget (it will be retried on the next round), so a transiently
        failing subscriber does not spin.
        """
        report = DeliveryReport()
        if not subscription.active:
            return report
        queue = subscription.queue
        max_attempts = self.policy_for(subscription).max_attempts
        while queue.depth:
            head = queue.peek()
            assert head is not None  # depth > 0
            try:
                subscription.handler(head.envelope)
            except Exception as exc:  # noqa: BLE001 - subscriber code is untrusted
                attempts = queue.nack()
                report.failed += 1
                report.errors.append(
                    f"{subscription.subscription_id}: {type(exc).__name__}: {exc}"
                )
                if attempts >= max_attempts:
                    envelope = queue.evict_head()
                    self.dead_letter.enqueue_from(
                        subscription.subscription_id, envelope
                    )
                    report.dead_lettered += 1
                    continue
                break  # leave the head for the next round
            queue.ack()
            report.delivered += 1
        return report

    def replay_dead_letters(self, subscription: Subscription,
                            now: float = 0.0) -> int:
        """Re-drive one subscription's dead letters through its queue.

        The operator's recovery path: after the subscriber is fixed (or a
        backpressure-shed backlog is being drained back), its parked
        messages are re-enqueued (counted as redeliveries, with a fresh
        retry budget) and the next dispatch round delivers them in their
        original order, ahead of nothing — they rejoin at the tail like
        any other publication.  ``now`` stamps the re-enqueue time so
        queue-age accounting stays honest.  Returns how many messages
        were re-driven.
        """
        envelopes = self.dead_letter.take_for(subscription.subscription_id)
        for envelope in envelopes:
            subscription.queue.enqueue(envelope, now=now)
            subscription.queue.stats.redelivered += 1
        return len(envelopes)

    def dispatch_all(self, subscriptions: list[Subscription]) -> DeliveryReport:
        """Run one dispatch round over ``subscriptions``."""
        total = DeliveryReport()
        for subscription in subscriptions:
            total.merge(self.dispatch_subscription(subscription))
        return total
