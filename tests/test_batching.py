"""Group-commit batching: the writer, the logs, the barriers, the knob.

The ``batch`` kernel kind buffers durable appends into group commits
(``RecordLog.append_many``).  These tests pin the mechanics: the
:class:`~repro.runtime.batching.BatchWriter` buffering/flush contract,
``append_many``'s sequence-range and segment-roll behaviour (including
torn-tail repair after a group commit), byte-level durable equivalence
between batched and unbatched runs over both store kinds, and the flush
barriers that keep snapshots and guarantor inquiries complete.
"""

import json

import pytest

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig
from repro.exceptions import ConfigurationError
from repro.runtime.batching import BatchPolicy, BatchWriter
from repro.storage import JsonlRecordLog, SegmentedLog
from tests.conftest import blood_test_schema, build_federation


class TestBatchWriter:
    def test_buffers_until_the_batch_boundary(self, tmp_path):
        log = JsonlRecordLog(tmp_path / "log.jsonl")
        writer = BatchWriter(log, batch_size=3)
        writer.append({"n": 1})
        writer.append({"n": 2})
        assert writer.pending == 2
        assert len(log) == 0  # nothing durable yet
        writer.append({"n": 3})  # boundary: auto group commit
        assert writer.pending == 0
        assert len(log) == 3
        assert writer.stats.flushes == 1
        assert writer.stats.flushed_records == 3

    def test_len_counts_durable_plus_pending(self, tmp_path):
        writer = BatchWriter(JsonlRecordLog(tmp_path / "log.jsonl"),
                             batch_size=10)
        assert writer.append({"n": 1}) == 1
        assert writer.append({"n": 2}) == 2
        assert len(writer) == 2

    def test_iter_records_is_a_flush_barrier(self, tmp_path):
        log = JsonlRecordLog(tmp_path / "log.jsonl")
        writer = BatchWriter(log, batch_size=10)
        writer.append({"n": 1})
        writer.append({"n": 2})
        assert [r["n"] for r in writer.iter_records()] == [1, 2]
        assert writer.pending == 0
        assert len(log) == 2

    def test_append_many_returns_the_projected_range(self, tmp_path):
        log = JsonlRecordLog(tmp_path / "log.jsonl")
        writer = BatchWriter(log, batch_size=2)
        writer.append({"n": 1})
        assert writer.append_many([{"n": 2}, {"n": 3}, {"n": 4}]) == (2, 4)
        assert writer.append_many([]) is None
        writer.flush()
        assert [r["n"] for r in log.iter_records()] == [1, 2, 3, 4]

    def test_flush_on_empty_buffer_is_a_noop(self, tmp_path):
        writer = BatchWriter(JsonlRecordLog(tmp_path / "log.jsonl"),
                             batch_size=2)
        writer.flush()
        assert writer.stats.flushes == 0

    def test_batch_size_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BatchWriter(JsonlRecordLog(tmp_path / "log.jsonl"), batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(batch_size=0)


class TestAppendMany:
    """Satellite: the group-commit primitive on both record logs."""

    def test_jsonl_append_many_returns_the_sequence_range(self, tmp_path):
        log = JsonlRecordLog(tmp_path / "log.jsonl")
        log.append({"n": 1})
        assert log.append_many([{"n": 2}, {"n": 3}]) == (2, 3)
        assert log.append_many([]) is None
        assert [r["n"] for r in log.iter_records()] == [1, 2, 3]

    def test_segmented_append_many_matches_single_appends(self, tmp_path):
        records = [{"n": i, "pad": "x" * 40} for i in range(12)]
        one = SegmentedLog(tmp_path / "one", segment_bytes=256)
        for record in records:
            one.append(record)
        many = SegmentedLog(tmp_path / "many", segment_bytes=256)
        assert many.append_many(records) == (1, 12)
        # Identical layout: same segment file names, same bytes in each.
        one_segments = sorted(p.name for p in (tmp_path / "one").glob("*.seg"))
        many_segments = sorted(p.name for p in (tmp_path / "many").glob("*.seg"))
        assert many_segments == one_segments
        for name in one_segments:
            assert ((tmp_path / "many" / name).read_bytes()
                    == (tmp_path / "one" / name).read_bytes())

    def test_segment_roll_happens_mid_batch(self, tmp_path):
        log = SegmentedLog(tmp_path / "rolled", segment_bytes=256)
        log.append_many([{"n": i, "pad": "x" * 40} for i in range(12)])
        segments = list((tmp_path / "rolled").glob("*.seg"))
        assert len(segments) > 1  # one group commit still rolled over
        reloaded = SegmentedLog(tmp_path / "rolled", segment_bytes=256)
        assert [r["n"] for r in reloaded.iter_records()] == list(range(12))

    def test_torn_tail_after_a_group_commit_is_repaired(self, tmp_path):
        log = SegmentedLog(tmp_path / "torn", segment_bytes=4096)
        log.append_many([{"n": i} for i in range(6)])
        tail = max((tmp_path / "torn").glob("*.seg"))
        raw = tail.read_bytes()
        tail.write_bytes(raw[:-5])  # crash mid-write of the final frame

        reloaded = SegmentedLog(tmp_path / "torn", segment_bytes=4096)
        assert reloaded.last_replay.truncated_bytes > 0
        assert [r["n"] for r in reloaded.iter_records()] == list(range(5))
        # The repaired log keeps accepting group commits.
        assert reloaded.append_many([{"n": 5}, {"n": 6}]) is not None
        assert len(reloaded) == 7


def build_world(tmp_path, store, batch, batch_size=256):
    runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                            store=store, data_dir=tmp_path,
                            batch=batch, batch_size=batch_size)
    controller = DataController(seed="batchequiv", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")
    for i in range(5):
        hospital.publish(
            blood, subject_id=f"p{i}", subject_name="Mario Bianchi",
            summary=f"blood test {i}",
            details={"PatientId": f"p{i}", "Name": "Mario",
                     "Hemoglobin": 14.0, "Glucose": 90.0,
                     "HivResult": "negative"})
    return controller


def read_rows(base, store, name):
    if store == "segmented":
        return SegmentedLog(base / name).read_all()
    flat = base / f"{name}.jsonl"
    if not flat.exists():
        return []
    return [json.loads(line) for line in flat.read_text().splitlines()]


class TestGroupCommitDurability:
    @pytest.mark.parametrize("store", ["jsonl", "segmented"])
    def test_batched_files_match_unbatched_after_flush(self, tmp_path, store):
        plain = build_world(tmp_path / "off", store, batch="off")
        batched = build_world(tmp_path / "on", store, batch="on")
        assert (batched.audit_log.head_digest == plain.audit_log.head_digest)

        batched.flush_storage()
        # Audit trails are byte-identical row for row; the index holds the
        # same row *set* (deferred adoptions may reorder rows, see
        # PERFORMANCE.md §4 — a single controller has none, so even the
        # order survives here).
        for name in ("audit", "index"):
            assert (read_rows(tmp_path / "on", store, name)
                    == read_rows(tmp_path / "off", store, name))

    @pytest.mark.parametrize("store", ["jsonl", "segmented"])
    def test_snapshot_without_flush_would_miss_rows(self, tmp_path, store):
        controller = build_world(tmp_path, store, batch="on", batch_size=256)
        in_memory = len(controller.audit_log)
        durable_before = len(read_rows(tmp_path, store, "audit"))
        assert durable_before < in_memory  # buffered: the barrier matters
        controller.flush_storage()
        assert len(read_rows(tmp_path, store, "audit")) == in_memory

    def test_restart_after_flush_replays_the_same_chain(self, tmp_path):
        controller = build_world(tmp_path, "segmented", batch="on",
                                 batch_size=64)
        head = controller.audit_log.head_digest
        controller.flush_storage()

        from repro.crypto.keystore import KeyStore
        from repro.runtime.backends import JsonlAuditSink, JsonlIndexStore

        audit = JsonlAuditSink(SegmentedLog(tmp_path / "audit"))
        audit.verify_integrity()
        assert audit.head_digest == head
        index = JsonlIndexStore(SegmentedLog(tmp_path / "index"),
                                KeyStore("css-platform-secret"))
        assert len(index) == len(controller.index)


def remote_subject(platform, owner: str) -> str:
    for i in range(200):
        subject = f"pat-{i}"
        if platform.membership.owner_of_subject(subject) == owner:
            return subject
    raise AssertionError(f"no probe subject hashed onto {owner}")


class TestFlushBarriers:
    def batched_federation(self, batch_size=256, **runtime_kwargs):
        runtime = RuntimeConfig(batch="on", batch_size=batch_size,
                                **runtime_kwargs)
        return build_federation(runtime=runtime)

    def test_guarantor_inquiry_sees_every_buffered_record(self):
        plain = build_federation()
        batched = self.batched_federation()
        for deployment in (plain, batched):
            for i in range(4):
                deployment.publish_blood_test(subject_id=f"pat-{i}")
        plain_trail = plain.platform.guarantor_inquiry()
        batched_trail = batched.platform.guarantor_inquiry()
        assert len(batched_trail) == len(plain_trail)
        assert batched_trail.heads == plain_trail.heads

    def test_federated_read_barrier_flushes_pending_frames(self):
        deployment = self.batched_federation()
        platform = deployment.platform
        subject = remote_subject(platform, "node-1")
        notification = deployment.publish_blood_test(subject_id=subject)
        # The coalesced frame is still pending, yet the read path must
        # observe the entry — get() runs the cluster-wide barrier first.
        found = platform.controller_of("node-1").index.get(
            notification.event_id)
        assert found.event_id == notification.event_id

    def test_flush_batches_drains_durable_buffers(self, tmp_path):
        deployment = self.batched_federation(
            index_store="jsonl", audit_sink="jsonl",
            store="jsonl", data_dir=tmp_path)
        platform = deployment.platform
        for i in range(4):
            deployment.publish_blood_test(subject_id=f"pat-{i}")
        platform.flush_batches()
        for node in platform.nodes():
            durable = (tmp_path / node.node_id / "audit.jsonl")
            rows = durable.read_text().splitlines()
            assert len(rows) == len(node.controller.audit_log)


class TestBatchKernelKnob:
    def test_on_produces_a_policy_off_produces_none(self):
        on = DataController(
            seed="k", runtime=RuntimeConfig(batch="on", batch_size=8))
        assert isinstance(on.batch, BatchPolicy)
        assert on.batch.batch_size == 8
        off = DataController(seed="k", runtime=RuntimeConfig())
        assert off.batch is None

    def test_unknown_batch_name_suggests_the_nearest(self):
        with pytest.raises(ConfigurationError) as excinfo:
            DataController(seed="k", runtime=RuntimeConfig(batch="onn"))
        assert "did you mean 'on'?" in str(excinfo.value)

    def test_batch_size_validated_at_construction(self):
        with pytest.raises(ConfigurationError):
            DataController(
                seed="k", runtime=RuntimeConfig(batch="on", batch_size=0))
