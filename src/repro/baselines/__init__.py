"""Baseline integration architectures the paper argues against.

Four comparators, each exercising the same seeded workloads as the CSS
scenario so the benchmarks can compare like with like:

* :mod:`~repro.baselines.manual` — the Fig. 1 status quo: paper/fax/email
  document exchange, full disclosure, zero traceability;
* :mod:`~repro.baselines.point_to_point` — synchronous point-to-point SOA
  (the N×M connector problem of §3);
* :mod:`~repro.baselines.warehouse` — centralized data-warehouse
  replication (the approach §1 rejects as infeasible and §4 as
  non-compliant: sensitive data duplicated outside the owner);
* :mod:`~repro.baselines.full_push` — pub/sub that pushes full details in
  every notification (what CSS's two-phase protocol avoids).
"""

from repro.baselines.full_push import FullPushBaseline
from repro.baselines.manual import ManualExchangeBaseline
from repro.baselines.point_to_point import PointToPointSoaBaseline
from repro.baselines.warehouse import WarehouseBaseline

__all__ = [
    "FullPushBaseline",
    "ManualExchangeBaseline",
    "PointToPointSoaBaseline",
    "WarehouseBaseline",
]
