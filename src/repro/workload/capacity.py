"""The capacity-trajectory harness: drive the federation, measure the knee.

``run_capacity`` executes one workload scenario against a fresh
:class:`~repro.federation.platform.FederatedPlatform` at each requested
node count (1/2/4/8 by default) and assembles a ``BENCH_capacity.json``
payload (schema ``css-bench-capacity/1``):

* **sustained events/sec and details/sec** — operations over the cost
  model's cluster makespan (the busiest node's simulated busy time), the
  same throughput definition the federation benchmark uses;
* **p95/p99 latency** — read from the existing telemetry pipeline
  histograms (``pipeline.duration_seconds`` for the ``publish`` and
  ``request-details`` pipelines), not re-measured;
* **saturation high-water marks** — the broker's per-topic queue-depth
  and dead-letter high-water gauges, maxed across nodes;
* **audit digest** — a SHA-256 over every node's verified audit-chain
  head, the value two same-seed runs must reproduce bit-for-bit.

Privacy: the payload carries counts, rates, latencies and chain digests
only — never a subject id, subject name, or payload field value.  The
privacy-invariant tests grep the serialized payload (and the run's
telemetry exports) for the assisted-person id shape to keep it that way.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path

from repro.clock import Clock
from repro.exceptions import AccessDeniedError
from repro.federation.platform import FederatedPlatform
from repro.obs.benchreport import LATENCY_KEYS
from repro.obs.telemetry import PIPELINE_DURATION, InMemoryTelemetry
from repro.runtime.kernel import RuntimeConfig
from repro.workload.config import CapacityConfig, WorkloadConfig
from repro.workload.engine import OP_DETAILS, OP_PUBLISH, WorkloadEngine

#: Schema identifier the capacity payload stamps and CI gates on.
SCHEMA_ID = "css-bench-capacity/1"

#: Pipeline histogram labels the latency sections are read from.
_PIPELINES = {"publish": "publish", "details": "request-details"}


def _latency_sections(telemetry: InMemoryTelemetry) -> dict[str, dict]:
    """p50/p95/p99/mean/min/max per pipeline from the run's histograms."""
    summaries = {
        labels.get("pipeline"): summary
        for labels, summary in telemetry.metrics.histogram_summaries(
            PIPELINE_DURATION
        )
    }
    sections: dict[str, dict] = {}
    for name, pipeline in _PIPELINES.items():
        summary = summaries.get(pipeline, {})
        sections[name] = {
            key: float(summary.get(key, 0.0)) for key in LATENCY_KEYS
        }
    return sections


def build_platform(
    workload: WorkloadConfig,
    nodes: int,
    clock: Clock,
    telemetry: InMemoryTelemetry | None,
    link_latency: float = 0.005,
    sched: str = "none",
    sched_config=None,
    recorder: str = "noop",
    batch: str = "off",
    batch_size: int = 256,
    store: str = "jsonl",
    data_dir=None,
) -> FederatedPlatform:
    """A fresh federation for one workload run, seeded from the config.

    ``sched``/``sched_config`` select every node's tenant scheduler —
    the only runtime difference between the fairness harness's two arms.
    ``recorder`` switches every node's flight recorder on ("ring") for
    incident-capture runs.  ``batch``/``batch_size`` switch batched
    execution on (group commit + coalesced frames + amortized work);
    ``data_dir`` (with ``store`` picking the log engine) makes every
    node's index and audit trail durable — the batch equivalence gate
    runs the same workload over both store kinds.
    """
    runtime = RuntimeConfig(sched=sched, recorder=recorder,
                            batch=batch, batch_size=batch_size)
    if data_dir is not None:
        runtime = RuntimeConfig(
            sched=sched, recorder=recorder, batch=batch,
            batch_size=batch_size, store=store, data_dir=data_dir,
            index_store="jsonl", audit_sink="jsonl",
        )
    return FederatedPlatform(
        shards=nodes,
        clock=clock,
        seed=f"wl-{workload.scenario}-{workload.seed}",
        runtime=runtime,
        telemetry=telemetry,
        link_latency=link_latency,
        sched_config=sched_config,
    )


def deploy_workload(
    platform: FederatedPlatform,
    engine: WorkloadEngine,
    workload: WorkloadConfig,
) -> dict[str, object]:
    """Install producers, event classes, tenants, policies, subscriptions.

    Deployment: producers/classes on their home nodes, every tenant
    granted exactly its role's needed fields, baseline subscriptions.
    Returns the declared event classes by template name.
    """
    roles = engine.tenant_roles()
    event_classes: dict[str, object] = {}
    for template_name, template in engine.templates.items():
        producer_id = engine.producer_of(template_name)
        if producer_id not in platform._producers:  # noqa: SLF001
            platform.add_producer(producer_id, producer_id.replace("-", " "))
        event_classes[template_name] = platform.declare_event_class(
            producer_id,
            template.build_schema(),
            category=template.category,
            description=template.schema_factory().documentation,
        )
    for tenant in workload.tenants:
        platform.add_consumer(
            tenant.tenant_id, tenant.tenant_id.replace("-", " "),
            role=tenant.role,
        )
    for template_name, template in engine.templates.items():
        producer = platform.producer(engine.producer_of(template_name))
        for tenant in workload.tenants:
            needed = template.needed_fields.get(tenant.role)
            if not needed:
                continue
            producer.define_policy(
                event_type=template_name,
                fields=list(needed),
                consumers=[(tenant.tenant_id, "unit")],
                purposes=[_purpose_of(roles[tenant.tenant_id])],
                label=f"{tenant.role} access to {template_name}",
            )
            platform.subscribe(tenant.tenant_id, template_name)
    return event_classes


def execute_workload(
    platform: FederatedPlatform,
    engine: WorkloadEngine,
    event_classes: dict[str, object],
    clock: Clock,
    on_advance=None,
    decision_log: list[str] | None = None,
) -> dict[str, int]:
    """Open-loop execution of the planned stream over the simulated clock.

    Returns the outcome counters (published / blocked / permits / denies /
    subscribes) shared by the capacity and fairness harnesses.
    ``on_advance`` (a no-arg callable) runs after every clock advance —
    the incident harness hooks its time-series ticking and watchdog
    polling there without the capacity path paying anything.
    ``decision_log`` (a caller-owned list) collects one outcome string
    per operation in stream order — the PDP decision stream the batch
    equivalence gate digests.
    """
    recent: dict[str, deque] = {
        name: deque(maxlen=64) for name in engine.templates
    }
    published = blocked = permits = denies = subscribes = 0
    for op in engine.plan():
        if op.at > clock.now():
            clock.set(op.at)
            if on_advance is not None:
                on_advance()
        if op.kind == OP_PUBLISH:
            notification = platform.publish(
                engine.producer_of(op.template),
                event_classes[op.template],
                subject_id=op.subject_id,
                subject_name=op.subject_name,
                summary=op.summary,
                details=dict(op.details or {}),
            )
            if notification is None:
                blocked += 1
                outcome = "publish:blocked"
            else:
                published += 1
                recent[op.template].append(notification.event_id)
                outcome = "publish:ok"
        elif op.kind == OP_DETAILS:
            window = recent[op.template]
            if not window:
                continue  # publish was consent-blocked; nothing to target
            target = window[-1 - min(op.target_recency, len(window) - 1)]
            try:
                platform.request_details(
                    op.tenant_id, op.template, target, op.purpose
                )
            except AccessDeniedError:
                denies += 1
                outcome = "details:deny"
            else:
                permits += 1
                outcome = "details:permit"
        else:  # subscribe churn
            platform.subscribe(op.tenant_id, op.template)
            subscribes += 1
            outcome = "subscribe"
        if decision_log is not None:
            decision_log.append(outcome)
    return {
        "published": published,
        "publish_blocked": blocked,
        "detail_permits": permits,
        "detail_denies": denies,
        "subscribe_ops": subscribes,
    }


def audit_digest(platform: FederatedPlatform) -> tuple[str, int]:
    """Verify every node's audit chain; digest the heads, count records.

    The digest is the scheduler-invariance witness: two same-seed runs —
    whatever their scheduler — must reproduce it bit-for-bit.
    """
    heads: list[str] = []
    audit_records = 0
    for node in platform.nodes():
        node.controller.audit_log.verify_integrity()
        heads.append(node.controller.audit_log.head_digest)
        audit_records += len(node.controller.audit_log)
    digest = "sha256:" + hashlib.sha256("|".join(heads).encode()).hexdigest()
    return digest, audit_records


def run_point(
    workload: WorkloadConfig,
    nodes: int,
    link_latency: float = 0.005,
    telemetry: InMemoryTelemetry | None = None,
    sched: str = "none",
    batch: str = "off",
    batch_size: int = 256,
    store: str = "jsonl",
    data_dir=None,
    collect_decisions: bool = False,
) -> dict:
    """One capacity measurement: the whole workload at one node count.

    ``telemetry`` lets callers supply (and afterwards inspect) the shared
    backend — the privacy-invariant tests grep its exports; by default a
    fresh hash-guarded backend is created per point.  ``sched`` selects
    every node's tenant scheduler ("none" keeps the historical figures);
    ``batch``/``batch_size`` batched execution.  With
    ``collect_decisions`` the point additionally carries a
    ``decision_digest`` — a SHA-256 over the ordered PDP outcome stream,
    the second witness of the batch equivalence gate.
    """
    clock = Clock()
    if telemetry is None:
        telemetry = InMemoryTelemetry(
            clock=clock,
            guard_mode="hash",
            secret=f"css-workload-{workload.seed}",
        )
    platform = build_platform(
        workload, nodes, clock, telemetry,
        link_latency=link_latency, sched=sched,
        batch=batch, batch_size=batch_size, store=store, data_dir=data_dir,
    )
    engine = WorkloadEngine(workload)
    event_classes = deploy_workload(platform, engine, workload)
    decision_log: list[str] | None = [] if collect_decisions else None
    counters = execute_workload(platform, engine, event_classes, clock,
                                decision_log=decision_log)
    published = counters["published"]
    permits = counters["detail_permits"]

    platform.dispatch_all()
    # Group-commit barrier before anything reads cross-shard or on-disk
    # state: pending coalesced frames out, buffered durable rows down.
    platform.flush_batches()
    platform.record_queue_depths()
    digest, audit_records = audit_digest(platform)

    makespan = max(node.work.busy_seconds for node in platform.nodes())
    busy = makespan if makespan > 0 else max(clock.now(), 1e-9)
    queue_high_water = max(
        node.controller.bus.queue_high_water()
        for node in platform.nodes()
    )
    dead_letter_high_water = max(
        node.controller.bus.dead_letter_high_water
        for node in platform.nodes()
    )
    point = {
        "nodes": nodes,
        "ops": workload.ops,
        **counters,
        "events_per_second": published / busy,
        "details_per_second": permits / busy,
        "makespan_seconds": makespan,
        "simulated_seconds": clock.now(),
        "cross_node_hops": platform.total_hops(),
        "latency_seconds": _latency_sections(telemetry),
        "queue_depth_high_water": queue_high_water,
        "dead_letter_high_water": dead_letter_high_water,
        "audit_records": audit_records,
        "audit_digest": digest,
    }
    if decision_log is not None:
        point["decision_digest"] = "sha256:" + hashlib.sha256(
            "|".join(decision_log).encode()
        ).hexdigest()
    return point


def _purpose_of(role: str) -> str:
    from repro.sim.scenario import ROLE_PURPOSES

    return ROLE_PURPOSES[role]


def run_capacity(config: CapacityConfig, source: str) -> dict:
    """The full capacity trajectory: one point per node count."""
    workload = config.workload
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "scenario": workload.scenario,
        "seed": workload.seed,
        "population": workload.population,
        "ops": workload.ops,
        "arrival": workload.arrival,
        "batch": config.batch,
        "batch_size": config.batch_size,
        "nodes": [
            run_point(workload, nodes, link_latency=config.link_latency,
                      sched=config.sched, batch=config.batch,
                      batch_size=config.batch_size)
            for nodes in config.node_counts
        ],
    }


def write_payload(path: str | Path, payload: dict) -> Path:
    """Write the capacity payload as stable, human-diffable JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
