"""Experiment F4 (paper Fig. 4): detail-request resolution inside the
policy enforcer.

Fig. 4 traces a request through PEP → PIP (id mapping) → PDP (matching +
evaluation) → producer obligation.  We measure:

* permit-path latency as the candidate-policy population grows (the PDP
  walks the class's policy set: ~linear in candidates);
* deny-path latency (deny-by-default exits before the gateway hop, so it
  is cheaper than a permit);
* the effect of the released-field count on the gateway's filtering step.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_micro_platform
from repro import AccessDeniedError


@pytest.mark.parametrize("n_policies", [1, 10, 100, 500])
def test_permit_path_scaling_in_policies(benchmark, n_policies):
    """Permit latency with ``n_policies`` candidates for the event class."""
    platform = build_micro_platform(n_policies=n_policies)

    detail = benchmark(
        platform.consumer.request_details,
        platform.notification, "healthcare-treatment",
    )
    assert detail.exposed_values()


def test_deny_path_is_short_circuit(benchmark):
    """A deny-by-default request never reaches the gateway."""
    platform = build_micro_platform(n_policies=10)
    gateway_calls_before = platform.controller.endpoints.get(
        "gateway.Hospital.getResponse"
    ).stats.calls

    def denied_request():
        try:
            platform.consumer.request_details(platform.notification, "administration")
        except AccessDeniedError:
            return True
        return False

    was_denied = benchmark(denied_request)
    assert was_denied
    gateway_calls_after = platform.controller.endpoints.get(
        "gateway.Hospital.getResponse"
    ).stats.calls
    assert gateway_calls_after == gateway_calls_before  # gateway untouched


@pytest.mark.parametrize("n_fields", [1, 4, 7])
def test_field_filtering_cost(benchmark, n_fields):
    """Gateway projection cost versus the number of released fields."""
    all_fields = ["PatientId", "Name", "Surname", "Hemoglobin", "Glucose",
                  "Cholesterol", "HivResult"]
    platform = build_micro_platform(granted_fields=all_fields[:n_fields])

    detail = benchmark(
        platform.consumer.request_details,
        platform.notification, "healthcare-treatment",
    )
    assert len(detail.exposed_values()) == n_fields


def test_pip_id_mapping_resolution(benchmark):
    """Step 1 of Algorithm 1: global eID → (producer, src_eID)."""
    platform = build_micro_platform()
    id_map = platform.controller.id_map
    event_id = platform.notification.event_id

    entry = benchmark(id_map.resolve, event_id)
    assert entry.producer_id == "Hospital"


def test_pdp_statistics_accumulate(benchmark):
    """Sanity: the PDP counters that feed EXPERIMENTS.md keep moving."""
    platform = build_micro_platform(n_policies=20)

    def request():
        return platform.consumer.request_details(
            platform.notification, "healthcare-treatment"
        )

    benchmark(request)
    stats = platform.controller.enforcer.pdp_stats
    assert stats.requests > 0
    assert stats.policies_evaluated >= stats.requests  # 20 candidates each
