"""Privacy policies — Definitions 2, 3 and 4 of the paper.

A privacy policy is ``p = {A, e_j, S, F}``: actor ``A`` may access fields
``F ⊆ e_j`` of event class ``e_j`` for any purpose in ``S`` (Def. 2).  The
semantics are *deny by default*: unless some policy permits it, an event
details cannot be accessed by any subject (§5.1); subjects can only read.

This module provides:

* :class:`PrivacyPolicy` — the intuitive, elicitation-level policy object,
  with optional validity window (Fig. 7) and role-based actor selection
  (Fig. 8 targets the role *family doctor*);
* :func:`PrivacyPolicy.matches` — Def. 3 policy matching;
* :func:`is_privacy_safe` — Def. 4: an event is privacy safe for a policy
  w.r.t. a request iff it exposes no non-empty field outside ``F``;
* :meth:`PrivacyPolicy.to_xacml` — compilation into the internal XACML
  representation the Policy Enforcer evaluates (§5.1: "We are using XACML
  to model internally to the Policy Enforcer module the privacy
  policies");
* :class:`PolicyRepository` — the data controller's certified repository.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import PolicyError
from repro.xacml.context import (
    ATTR_ACTION_PURPOSE,
    ATTR_ENV_TIME,
    ATTR_RESOURCE_EVENT_TYPE,
    ATTR_SUBJECT_ID,
    ATTR_SUBJECT_ROLE,
)
from repro.xacml.model import (
    OBLIGATION_AUDIT,
    OBLIGATION_RELEASE_FIELDS,
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    PolicySet,
    Rule,
    Target,
)
from repro.xmlmsg.document import XmlDocument


@dataclass(frozen=True)
class DetailRequestSpec:
    """The request shape of Def. 3: ``r = {A_r, τ_e, S_r}``.

    (The full runtime request, which also carries the event id, lives in
    :mod:`repro.core.enforcement`; matching only needs these three.)
    """

    actor_id: str
    event_type: str
    purpose: str
    actor_role: str = ""
    requested_at: float = 0.0


@dataclass(frozen=True)
class PrivacyPolicy:
    """``p = {A, e_j, S, F}`` with elicitation metadata.

    Exactly one of ``actor_id`` / ``actor_role`` selects the subject:
    ``actor_id`` grants an organizational unit (and, hierarchically, its
    sub-units); ``actor_role`` grants a functional role, as in Fig. 8.
    ``valid_from`` / ``valid_until`` bound the rule in time — "particularly
    useful when private companies ... should access the events of their
    customers only for the duration of their contract" (§6).

    ``deny=True`` makes this a *restriction* policy: it releases nothing
    and, under the repository's deny-overrides combining, carves an
    exception out of a broader grant (e.g. grant ``Hospital`` but deny
    ``Hospital/Psychiatry``).  Restrictions carry no fields.
    """

    policy_id: str
    producer_id: str
    event_type: str
    fields: frozenset[str]
    purposes: frozenset[str]
    actor_id: str = ""
    actor_role: str = ""
    label: str = ""
    description: str = ""
    valid_from: float | None = None
    valid_until: float | None = None
    deny: bool = False

    def __post_init__(self) -> None:
        if not self.policy_id:
            raise PolicyError("policy needs an id")
        if not self.producer_id:
            raise PolicyError("policy needs the owning producer id")
        if not self.event_type:
            raise PolicyError("policy needs an event type")
        if bool(self.actor_id) == bool(self.actor_role):
            raise PolicyError(
                "policy must select exactly one of actor_id or actor_role"
            )
        if not self.purposes:
            raise PolicyError("policy needs at least one admissible purpose")
        if not self.fields and not self.deny:
            raise PolicyError(
                "policy needs at least one accessible field (deny-by-default "
                "already covers the empty case)"
            )
        if self.deny and self.fields:
            raise PolicyError("a restriction (deny) policy releases no fields")
        if (
            self.valid_from is not None
            and self.valid_until is not None
            and self.valid_until < self.valid_from
        ):
            raise PolicyError("policy validity window ends before it starts")

    # -- Def. 3: matching -----------------------------------------------------

    def matches(self, request: DetailRequestSpec) -> bool:
        """Whether this policy is a *matching policy* for ``request``.

        Def. 3 requires ``e_j = τ_e  ∧  A_r = A  ∧  S_r ∈ S``; actor
        equality is hierarchical for ``actor_id`` selections (a grant to an
        organization covers its units, §5.1) and exact for roles.  The
        validity window, when present, must contain the request time.
        """
        if self.event_type != request.event_type:
            return False
        if request.purpose not in self.purposes:
            return False
        if not self._actor_matches(request):
            return False
        return self.is_active_at(request.requested_at)

    def _actor_matches(self, request: DetailRequestSpec) -> bool:
        if self.actor_id:
            return (
                request.actor_id == self.actor_id
                or request.actor_id.startswith(self.actor_id + "/")
            )
        return bool(request.actor_role) and request.actor_role == self.actor_role

    def is_active_at(self, instant: float) -> bool:
        """Whether the validity window contains ``instant``."""
        if self.valid_from is not None and instant < self.valid_from:
            return False
        if self.valid_until is not None and instant > self.valid_until:
            return False
        return True

    # -- XACML compilation ---------------------------------------------------------

    def to_xacml(self, clock_isoformat=None) -> Policy:
        """Compile into the internal XACML representation.

        The target pins the subject (actor hierarchy or role), the resource
        (event type) and — via AnyOf alternatives — the admissible
        purposes.  Validity windows become environment-time matches.  The
        permit rule carries two obligations: ``css:release-fields`` with the
        allowed field list, and ``css:audit-access``.

        ``clock_isoformat`` converts the float validity bounds to the ISO
        strings XACML compares; it defaults to rendering the raw float with
        fixed width (which still compares correctly lexicographically).
        """
        render = clock_isoformat or (lambda instant: f"{instant:020.6f}")
        all_of: list[Match] = []
        if self.actor_id:
            all_of.append(Match(ATTR_SUBJECT_ID, "hierarchy-descendant", self.actor_id))
        else:
            all_of.append(Match(ATTR_SUBJECT_ROLE, "string-equal", self.actor_role))
        all_of.append(Match(ATTR_RESOURCE_EVENT_TYPE, "string-equal", self.event_type))
        if self.valid_from is not None:
            all_of.append(Match(ATTR_ENV_TIME, "time-greater-or-equal", render(self.valid_from)))
        if self.valid_until is not None:
            all_of.append(Match(ATTR_ENV_TIME, "time-less-or-equal", render(self.valid_until)))
        any_of = tuple(
            (Match(ATTR_ACTION_PURPOSE, "string-equal", purpose),)
            for purpose in sorted(self.purposes)
        )
        target = Target(all_of=tuple(all_of), any_of=any_of)
        if self.deny:
            rule = Rule(
                rule_id=f"{self.policy_id}:deny",
                effect=Effect.DENY,
                description=self.label or self.description,
            )
            return Policy(
                policy_id=self.policy_id,
                target=target,
                rules=(rule,),
                combining=CombiningAlgorithm.DENY_OVERRIDES,
                description=self.description or self.label,
            )
        release = Obligation(
            OBLIGATION_RELEASE_FIELDS,
            Effect.PERMIT,
            assignments=tuple(("field", name) for name in sorted(self.fields)),
        )
        audit = Obligation(OBLIGATION_AUDIT, Effect.PERMIT)
        rule = Rule(
            rule_id=f"{self.policy_id}:permit",
            effect=Effect.PERMIT,
            description=self.label or self.description,
        )
        return Policy(
            policy_id=self.policy_id,
            target=target,
            rules=(rule,),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
            obligations=(release, audit),
            description=self.description or self.label,
        )

    # -- misc ------------------------------------------------------------------------

    def with_fields(self, fields: frozenset[str]) -> "PrivacyPolicy":
        """Copy of the policy with a different field set (policy editing)."""
        return replace(self, fields=fields)

    @property
    def actor_selector(self) -> str:
        """Human-readable subject selector."""
        return f"unit:{self.actor_id}" if self.actor_id else f"role:{self.actor_role}"


def is_privacy_safe(event: XmlDocument, policy: PrivacyPolicy) -> bool:
    """Def. 4: ``e ⊨_r p`` — no non-empty field of ``event`` falls outside ``F``.

    The request component of Def. 4 (the policy must match the request) is
    checked by the caller via :meth:`PrivacyPolicy.matches`; this predicate
    checks the field-exposure condition, which is what Algorithm 2's output
    must guarantee.
    """
    return all(name in policy.fields for name in event.non_empty_fields())


def is_privacy_safe_for_all(event: XmlDocument, policies: list[PrivacyPolicy]) -> bool:
    """``e ⊨_r P`` — privacy safe for every policy in ``P``."""
    return all(is_privacy_safe(event, policy) for policy in policies)


class PolicyRepository:
    """The data controller's certified policy repository (§5).

    Policies are indexed by ``(producer, event type)`` for the matching
    phase.  The repository also stores the compiled XACML text produced by
    the elicitation tool so auditors can inspect exactly what is enforced.
    """

    def __init__(self) -> None:
        self._policies: dict[str, PrivacyPolicy] = {}
        self._by_class: dict[tuple[str, str], list[str]] = {}
        self._xacml_texts: dict[str, str] = {}
        self._revoked: set[str] = set()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; bumps on every add and revoke.

        The perf layer's policy index and decision cache validate against
        it, so a policy edit immediately drops every derived fast-path
        artifact (deny-by-default can never be served stale).
        """
        return self._epoch

    def __len__(self) -> int:
        return len(self._policies) - len(self._revoked)

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies and policy_id not in self._revoked

    def add(self, policy: PrivacyPolicy, xacml_text: str = "") -> None:
        """Store a policy (and optionally its generated XACML document)."""
        if policy.policy_id in self._policies:
            raise PolicyError(f"policy {policy.policy_id!r} already in repository")
        self._policies[policy.policy_id] = policy
        key = (policy.producer_id, policy.event_type)
        self._by_class.setdefault(key, []).append(policy.policy_id)
        self._epoch += 1
        if xacml_text:
            self._xacml_texts[policy.policy_id] = xacml_text

    def revoke(self, policy_id: str) -> None:
        """Revoke a policy; it stops matching immediately but stays auditable."""
        if policy_id not in self._policies:
            raise PolicyError(f"no policy {policy_id!r} to revoke")
        self._revoked.add(policy_id)
        self._epoch += 1

    def get(self, policy_id: str) -> PrivacyPolicy:
        """Fetch a policy by id (revoked policies are still fetchable)."""
        try:
            return self._policies[policy_id]
        except KeyError as exc:
            raise PolicyError(f"no policy {policy_id!r}") from exc

    def xacml_text(self, policy_id: str) -> str:
        """The stored generated XACML document ('' if none was stored)."""
        return self._xacml_texts.get(policy_id, "")

    def is_revoked(self, policy_id: str) -> bool:
        """Whether the policy has been revoked."""
        return policy_id in self._revoked

    # -- matching (Def. 3) -------------------------------------------------------

    def candidates(self, producer_id: str, event_type: str) -> list[PrivacyPolicy]:
        """Active policies defined by ``producer_id`` for ``event_type``."""
        ids = self._by_class.get((producer_id, event_type), [])
        return [
            self._policies[policy_id]
            for policy_id in ids
            if policy_id not in self._revoked
        ]

    def matching_policy(
        self, producer_id: str, request: DetailRequestSpec
    ) -> PrivacyPolicy | None:
        """The ``matchingPolicy(R)`` step of Algorithm 1.

        Returns the first matching *grant* — unless a matching restriction
        (deny) policy exists, which vetoes the request entirely
        (deny-overrides).
        """
        first_grant: PrivacyPolicy | None = None
        for policy in self.candidates(producer_id, request.event_type):
            if not policy.matches(request):
                continue
            if policy.deny:
                return None
            if first_grant is None:
                first_grant = policy
        return first_grant

    def has_policy_for(
        self, producer_id: str, event_type: str, actor_id: str, actor_role: str = ""
    ) -> bool:
        """Whether *any* purpose is granted to the actor for the class.

        This is the subscription-time check of §5.2: "In order to subscribe
        to a class of notification events ... there should be a privacy
        policy regulating the access to the corresponding event details for
        that particular data consumer."  A matching restriction policy
        vetoes the grant it would otherwise ride on.
        """
        granted = False
        for policy in self.candidates(producer_id, event_type):
            probe = DetailRequestSpec(
                actor_id=actor_id,
                event_type=event_type,
                purpose=next(iter(policy.purposes)),
                actor_role=actor_role,
            )
            if not policy.matches(probe):
                continue
            if policy.deny:
                return False
            granted = True
        return granted

    def policies_of_producer(self, producer_id: str) -> list[PrivacyPolicy]:
        """Every active policy owned by one producer (dashboard feed)."""
        return [
            policy
            for policy in self._policies.values()
            if policy.producer_id == producer_id and policy.policy_id not in self._revoked
        ]

    def to_policy_set(self, producer_id: str, event_type: str) -> PolicySet:
        """Compile the candidate policies into a deny-overrides policy set.

        Elicitation-generated policies are permit-only, so under
        deny-overrides every applicable grant is evaluated and their
        ``release-fields`` obligations merge — two grants to the same
        actor release the union of their fields.  An empty candidate list
        yields an empty set which evaluates to NotApplicable — mapped to
        Deny by the PEP (deny-by-default).
        """
        policies = tuple(
            policy.to_xacml() for policy in self.candidates(producer_id, event_type)
        )
        return PolicySet(
            policy_set_id=f"pset:{producer_id}:{event_type}",
            policies=policies,
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
