"""Ablation A4: gateway-side detail persistence vs live-source retrieval.

§4: the local cooperation gateway "persists each detail message notified
so that they can be retrieved even when the source systems are
un-accessible", and requests "may arrive ... even months after the
publication".  We measure detail-request success under simulated source
downtime with the gateway's persistence on versus off.

Expected shape: with persistence, success stays at 100 % regardless of
downtime; without it, failures equal the requests issued while the source
is down.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_micro_platform
from repro.clock import MONTH
from repro.exceptions import SourceUnavailableError


@pytest.mark.parametrize("downtime_fraction", [0.0, 0.5, 1.0])
def test_success_rate_with_persistence(benchmark, downtime_fraction):
    """Persistence keeps the success rate at 100 % under any downtime."""
    platform = build_micro_platform()
    gateway = platform.producer.gateway
    requests_per_round = 10
    down_requests = int(requests_per_round * downtime_fraction)

    def run_round():
        successes = 0
        for index in range(requests_per_round):
            if index < down_requests:
                gateway.take_source_offline()
            else:
                gateway.bring_source_online()
            detail = platform.consumer.request_details(
                platform.notification, "healthcare-treatment")
            if detail.exposed_values():
                successes += 1
        gateway.bring_source_online()
        return successes

    successes = benchmark.pedantic(run_round, rounds=5, iterations=1)
    assert successes == requests_per_round


@pytest.mark.parametrize("downtime_fraction", [0.0, 0.5, 1.0])
def test_failure_rate_without_persistence(benchmark, downtime_fraction):
    """Without the gateway store, failures track downtime exactly."""
    platform = build_micro_platform()
    gateway = platform.producer.gateway
    gateway.persistence_enabled = False
    requests_per_round = 10
    down_requests = int(requests_per_round * downtime_fraction)

    def run_round():
        failures = 0
        for index in range(requests_per_round):
            if index < down_requests:
                gateway.take_source_offline()
            else:
                gateway.bring_source_online()
            try:
                platform.consumer.request_details(
                    platform.notification, "healthcare-treatment")
            except SourceUnavailableError:
                failures += 1
        gateway.bring_source_online()
        return failures

    failures = benchmark.pedantic(run_round, rounds=5, iterations=1)
    assert failures == down_requests


def test_months_later_retrieval(benchmark):
    """The temporal-decoupling claim: requests months after publication."""
    platform = build_micro_platform()
    platform.controller.clock.advance(6 * MONTH)
    platform.producer.gateway.take_source_offline()  # source long gone

    detail = benchmark(
        platform.consumer.request_details,
        platform.notification, "healthcare-treatment",
    )
    assert detail.exposed_values()
    assert platform.producer.gateway.stats.served_from_cache > 0


def test_gateway_store_growth_cost(benchmark):
    """Persisting one more detail into a store that already holds 1000."""
    platform = build_micro_platform()
    for index in range(1000):
        platform.producer.publish(
            platform.event_class, subject_id=f"pat-{index}", subject_name="X Y",
            summary="s",
            details={"PatientId": f"pat-{index}", "Name": "X", "Surname": "Y",
                     "Hemoglobin": 14.0, "Glucose": 90.0, "Cholesterol": 180.0,
                     "HivResult": "negative"},
        )
    counter = {"n": 0}

    def publish_one():
        counter["n"] += 1
        return platform.producer.publish(
            platform.event_class, subject_id=f"late-{counter['n']}",
            subject_name="X Y", summary="s",
            details={"PatientId": f"late-{counter['n']}", "Name": "X",
                     "Surname": "Y", "Hemoglobin": 14.0, "Glucose": 90.0,
                     "Cholesterol": 180.0, "HivResult": "negative"},
        )

    notification = benchmark(publish_one)
    assert notification is not None
