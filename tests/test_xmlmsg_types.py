"""Unit tests for repro.xmlmsg.types."""

import datetime as dt

import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.xmlmsg.types import (
    BooleanType,
    DateType,
    DecimalType,
    EnumerationType,
    IntegerType,
    StringType,
)


class TestStringType:
    def test_accepts_plain_string(self):
        StringType().check("hello")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            StringType().check(42)

    def test_min_length_enforced(self):
        with pytest.raises(ValidationError):
            StringType(min_length=3).check("ab")

    def test_max_length_enforced(self):
        with pytest.raises(ValidationError):
            StringType(max_length=2).check("abc")

    def test_pattern_enforced(self):
        diagnosis = StringType(pattern=r"[A-Z][0-9]{2}\.[0-9]")
        diagnosis.check("A12.3")
        with pytest.raises(ValidationError):
            diagnosis.check("12A.3")

    def test_pattern_is_anchored(self):
        with pytest.raises(ValidationError):
            StringType(pattern=r"[0-9]+").check("12x")

    def test_bad_bounds_rejected_at_definition(self):
        with pytest.raises(SchemaError):
            StringType(min_length=-1)
        with pytest.raises(SchemaError):
            StringType(min_length=5, max_length=2)

    def test_parse_validates(self):
        with pytest.raises(ValidationError):
            StringType(min_length=5).parse("ab")

    def test_describe_mentions_restrictions(self):
        described = StringType(min_length=1, max_length=9, pattern="x+").describe()
        assert "minLen=1" in described and "maxLen=9" in described and "x+" in described


class TestIntegerType:
    def test_accepts_int(self):
        IntegerType().check(5)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            IntegerType().check(True)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            IntegerType().check(5.0)

    def test_range_enforced(self):
        bounded = IntegerType(0, 100)
        bounded.check(0)
        bounded.check(100)
        with pytest.raises(ValidationError):
            bounded.check(-1)
        with pytest.raises(ValidationError):
            bounded.check(101)

    def test_parse_coerces_and_strips(self):
        assert IntegerType().parse(" 42 ") == 42

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            IntegerType().parse("4.2")

    def test_bad_bounds_rejected(self):
        with pytest.raises(SchemaError):
            IntegerType(10, 5)


class TestDecimalType:
    def test_accepts_float_and_int(self):
        DecimalType().check(1.5)
        DecimalType().check(3)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            DecimalType().check(False)

    def test_range_enforced(self):
        with pytest.raises(ValidationError):
            DecimalType(0.0, 1.0).check(1.01)

    def test_parse(self):
        assert DecimalType().parse("14.5") == 14.5

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            DecimalType().parse("abc")


class TestBooleanType:
    def test_accepts_bool(self):
        BooleanType().check(True)

    def test_rejects_int(self):
        with pytest.raises(ValidationError):
            BooleanType().check(1)

    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("1", True), ("FALSE", False), ("0", False),
    ])
    def test_parse_xml_forms(self, text, expected):
        assert BooleanType().parse(text) is expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            BooleanType().parse("yes")

    def test_render_xml_form(self):
        assert BooleanType().render(True) == "true"
        assert BooleanType().render(False) == "false"


class TestDateType:
    def test_accepts_date(self):
        DateType().check(dt.date(2010, 3, 26))

    def test_rejects_datetime(self):
        with pytest.raises(ValidationError):
            DateType().check(dt.datetime(2010, 3, 26))

    def test_parse_iso(self):
        assert DateType().parse("2010-03-26") == dt.date(2010, 3, 26)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            DateType().parse("26/03/2010")

    def test_render_iso(self):
        assert DateType().render(dt.date(2010, 3, 26)) == "2010-03-26"


class TestEnumerationType:
    def test_accepts_member(self):
        EnumerationType(["a", "b"]).check("a")

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError):
            EnumerationType(["a", "b"]).check("c")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            EnumerationType(["1"]).check(1)

    def test_empty_enumeration_rejected(self):
        with pytest.raises(SchemaError):
            EnumerationType([])

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            EnumerationType(["a", "a"])

    def test_describe_lists_values(self):
        assert "a, b" in EnumerationType(["a", "b"]).describe()
