"""Metric instruments: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` keys every series by ``(name, labels)`` where
``labels`` is the guard-sanitised tuple produced by
:class:`~repro.obs.guard.PrivacyGuard` — identifying label values never
reach a series key.  Histograms use fixed bucket boundaries, so p50/p95/p99
summaries are computed from bucket counts (upper-bound estimate) exactly
like a scrape-based system would, and two runs over the same workload
produce byte-identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.obs.guard import PrivacyGuard

#: Default latency buckets in (simulated) seconds, sub-ms to 10 s.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The percentiles every histogram summary reports.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

Labels = tuple[tuple[str, str], ...]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (queue depth, active spans, ...)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Fixed-bucket distribution with count/sum/min/max sidecars."""

    boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)  # + overflow

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        self.counts[index] += 1
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from bucket counts.

        Degenerate series are exact, not estimated: an empty histogram
        reports 0.0 for every quantile and a single-observation one
        reports the lone value — no bucket arithmetic, no index errors.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        if self.count == 1:
            return self.max
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index == len(self.boundaries):
                    return self.max  # overflow bucket: cap at observed max
                return min(self.boundaries[index], self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """The p50/p95/p99 + count/sum/min/max summary row."""
        row = {
            "count": float(self.count), "sum": self.sum,
            "min": self.min, "max": self.max,
            "mean": self.sum / self.count if self.count else 0.0,
        }
        for q in SUMMARY_QUANTILES:
            row[f"p{int(q * 100)}"] = self.quantile(q)
        return row


class MetricsRegistry:
    """All metric series of one platform instance, guard-protected."""

    def __init__(self, guard: PrivacyGuard | None = None) -> None:
        self.guard = guard or PrivacyGuard()
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}

    # -- series access -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, self.guard.sanitize(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter()
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, self.guard.sanitize(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge()
        return series

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: object
    ) -> Histogram:
        key = (name, self.guard.sanitize(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(buckets or DEFAULT_BUCKETS)
        return series

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every series as a plain dict row, deterministically ordered.

        Labels are emitted in sorted key order (the guard already sorts
        on sanitise; ``sorted`` here makes the wire contract explicit),
        so merging snapshots from several federation nodes is byte-stable.
        """
        rows: list[dict] = []
        for (name, labels), counter in self._counters.items():
            rows.append({"type": "counter", "name": name,
                         "labels": dict(sorted(labels)), "value": counter.value})
        for (name, labels), gauge in self._gauges.items():
            rows.append({"type": "gauge", "name": name,
                         "labels": dict(sorted(labels)), "value": gauge.value})
        for (name, labels), histogram in self._histograms.items():
            rows.append({"type": "histogram", "name": name,
                         "labels": dict(sorted(labels)), **histogram.summary()})
        rows.sort(key=lambda row: (row["name"], sorted(row["labels"].items()),
                                   row["type"]))
        return rows

    def histogram_summaries(self, name: str) -> list[tuple[dict[str, str], dict]]:
        """``(labels, summary)`` per series of histogram ``name``, sorted."""
        found = [
            (dict(sorted(labels)), histogram.summary())
            for (series, labels), histogram in self._histograms.items()
            if series == name
        ]
        found.sort(key=lambda pair: sorted(pair[0].items()))
        return found

    # -- series iteration (the SLO engine's read surface) --------------------

    def counter_series(self, name: str) -> list[tuple[dict[str, str], Counter]]:
        """``(labels, counter)`` per series of counter ``name``, sorted."""
        found = [
            (dict(sorted(labels)), counter)
            for (series, labels), counter in self._counters.items()
            if series == name
        ]
        found.sort(key=lambda pair: sorted(pair[0].items()))
        return found

    def gauge_series(self, name: str) -> list[tuple[dict[str, str], Gauge]]:
        """``(labels, gauge)`` per series of gauge ``name``, sorted."""
        found = [
            (dict(sorted(labels)), gauge)
            for (series, labels), gauge in self._gauges.items()
            if series == name
        ]
        found.sort(key=lambda pair: sorted(pair[0].items()))
        return found

    def histogram_series(self, name: str) -> list[tuple[dict[str, str], Histogram]]:
        """``(labels, histogram)`` per series of histogram ``name``, sorted."""
        found = [
            (dict(sorted(labels)), histogram)
            for (series, labels), histogram in self._histograms.items()
            if series == name
        ]
        found.sort(key=lambda pair: sorted(pair[0].items()))
        return found

    # -- full-registry iteration (the time-series store's read surface) ------

    def counter_entries(self) -> list[tuple[tuple[str, Labels], Counter]]:
        """Every counter series as ``((name, labels), counter)``, sorted."""
        return sorted(self._counters.items(), key=lambda item: item[0])

    def gauge_entries(self) -> list[tuple[tuple[str, Labels], Gauge]]:
        """Every gauge series as ``((name, labels), gauge)``, sorted."""
        return sorted(self._gauges.items(), key=lambda item: item[0])

    def histogram_entries(self) -> list[tuple[tuple[str, Labels], Histogram]]:
        """Every histogram series as ``((name, labels), histogram)``, sorted."""
        return sorted(self._histograms.items(), key=lambda item: item[0])

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0.0 if never touched)."""
        key = (name, self.guard.sanitize(labels))
        series = self._counters.get(key)
        return series.value if series else 0.0

    def reset(self) -> None:
        """Drop every series (scenario reruns, benchmark warm-up)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
