"""Event-class schema evolution.

Institutions join the CSS ecosystem progressively (§1) and their systems
change over time, so declared event classes must be able to *evolve*
without breaking what already exists:

* **policies** reference fields by name — a new schema version must keep
  every previously declared field (same type name, no tightened
  occurrence), so existing grants stay meaningful;
* **stored details** of old events must still validate — new fields must
  be optional, never required;
* **subscribers** keep receiving the same notification shape — the
  notification format is version-independent by design (§4), so evolution
  only concerns the detail schema.

:func:`check_backward_compatible` returns the list of violations (empty =
compatible); the catalog's upgrade path refuses incompatible versions.
"""

from __future__ import annotations

from repro.xmlmsg.schema import MessageSchema, Occurs

#: Ordering of occurrence constraints from loosest to strictest.
_STRICTNESS = {Occurs.REPEATED: 0, Occurs.OPTIONAL: 1, Occurs.REQUIRED: 2}


def check_backward_compatible(old: MessageSchema, new: MessageSchema) -> list[str]:
    """Violations that would break policies or stored events (empty = ok)."""
    violations: list[str] = []
    if old.name != new.name:
        violations.append(
            f"schema name changed from {old.name!r} to {new.name!r}"
        )
        return violations
    new_names = set(new.field_names)
    for decl in old.elements:
        if decl.name not in new_names:
            violations.append(f"field {decl.name!r} was removed")
            continue
        successor = new.element(decl.name)
        if type(successor.type_) is not type(decl.type_):
            violations.append(
                f"field {decl.name!r} changed type from "
                f"{decl.type_.name} to {successor.type_.name}"
            )
        if _STRICTNESS[successor.occurs] > _STRICTNESS[decl.occurs]:
            violations.append(
                f"field {decl.name!r} tightened occurrence from "
                f"{decl.occurs.value} to {successor.occurs.value}"
            )
        if decl.sensitive and not successor.sensitive:
            violations.append(
                f"field {decl.name!r} lost its sensitive flag"
            )
    old_names = set(old.field_names)
    for decl in new.elements:
        if decl.name in old_names:
            continue
        if decl.occurs is Occurs.REQUIRED:
            violations.append(
                f"new field {decl.name!r} is required (old events cannot carry it)"
            )
    return violations


def is_backward_compatible(old: MessageSchema, new: MessageSchema) -> bool:
    """Boolean form of :func:`check_backward_compatible`."""
    return not check_backward_compatible(old, new)
