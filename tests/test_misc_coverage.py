"""Smaller behaviours not exercised elsewhere: the exception hierarchy,
delivery reports, envelope edge cases, disclosure-row rendering, client
helper methods and domain objects."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.bus.delivery import DeliveryReport
from repro.bus.envelope import Envelope
from repro.exceptions import (
    AccessDeniedError,
    BusError,
    CatalogError,
    ContractError,
    CryptoError,
    CssError,
    DuplicateEventClassError,
    GatewayError,
    PolicyError,
    PrivacyError,
    RegistryError,
    SourceUnavailableError,
    TokenError,
    UnknownEventClassError,
)
from repro.sim.domain import Patient
from tests.conftest import blood_test_schema


class TestExceptionHierarchy:
    def test_everything_derives_from_css_error(self):
        for exc_type in (CatalogError, ContractError, BusError, CryptoError,
                         PrivacyError, RegistryError, GatewayError):
            assert issubclass(exc_type, CssError)

    def test_specific_errors_nest_correctly(self):
        assert issubclass(UnknownEventClassError, CatalogError)
        assert issubclass(DuplicateEventClassError, CatalogError)
        assert issubclass(AccessDeniedError, PrivacyError)
        assert issubclass(PolicyError, PrivacyError)
        assert issubclass(TokenError, CryptoError)
        assert issubclass(SourceUnavailableError, GatewayError)

    def test_access_denied_carries_reason_and_request(self):
        error = AccessDeniedError("nope", request="the-request")
        assert error.reason == "nope"
        assert error.request == "the-request"

    def test_catching_css_error_catches_everything(self):
        with pytest.raises(CssError):
            raise AccessDeniedError("x")


class TestDeliveryReport:
    def test_merge_accumulates(self):
        total = DeliveryReport(delivered=1, failed=2, dead_lettered=0,
                               errors=["a"])
        total.merge(DeliveryReport(delivered=3, failed=1, dead_lettered=2,
                                   errors=["b", "c"]))
        assert total.delivered == 4
        assert total.failed == 3
        assert total.dead_lettered == 2
        assert total.errors == ["a", "b", "c"]


class TestEnvelopeEdgeCases:
    def test_correlation_id_default_none(self):
        env = Envelope(message_id="m", topic="t", sender="s", body="x")
        assert env.correlation_id is None
        assert env.content_type == "application/xml"

    def test_size_estimate_for_object_body(self):
        env = Envelope(message_id="m", topic="t", sender="s",
                       body={"a": 1, "b": [1, 2, 3]})
        assert env.size_estimate() > 20


class TestPatient:
    def test_age_at(self):
        patient = Patient("pat-1", "Anna Conti", 1940, "Trento")
        assert patient.age_at(2010) == 70
        assert patient.age_at(2020) == 80


class TestClientHelpers:
    @pytest.fixture()
    def world(self):
        controller = DataController(seed="helpers")
        hospital = DataProducer(controller, "Hospital", "Hospital")
        blood = hospital.declare_event_class(blood_test_schema())
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        return controller, hospital, blood, doctor

    def test_src_event_ids_are_sequential_and_scoped(self, world):
        controller, hospital, blood, doctor = world
        first = hospital.next_src_event_id()
        second = hospital.next_src_event_id()
        assert first != second
        assert first.startswith("Hospital:src-")

    def test_notifications_of_type_and_clear_inbox(self, world):
        controller, hospital, blood, doctor = world
        hospital.publish(blood, subject_id="p1", subject_name="M B", summary="s",
                         details={"PatientId": "p1", "Name": "M",
                                  "Hemoglobin": 14.0, "Glucose": 90.0,
                                  "HivResult": "negative"})
        assert len(doctor.notifications_of_type("BloodTest")) == 1
        assert doctor.notifications_of_type("Other") == []
        doctor.clear_inbox()
        assert doctor.inbox == []

    def test_is_subscribed_to(self, world):
        controller, hospital, blood, doctor = world
        assert doctor.is_subscribed_to("BloodTest")
        assert not doctor.is_subscribed_to("Other")

    def test_browse_catalog_from_consumer(self, world):
        controller, hospital, blood, doctor = world
        assert "BloodTest" in doctor.browse_catalog()

    def test_explicit_src_event_id(self, world):
        controller, hospital, blood, doctor = world
        hospital.publish(blood, subject_id="p1", subject_name="M B", summary="s",
                         src_event_id="custom-id-9",
                         details={"PatientId": "p1", "Name": "M",
                                  "Hemoglobin": 14.0, "Glucose": 90.0,
                                  "HivResult": "negative"})
        assert "custom-id-9" in hospital.gateway

    def test_consent_registry_of(self, world):
        controller, hospital, blood, doctor = world
        assert controller.consent_registry_of("Hospital") is hospital.consent
        assert controller.consent_registry_of("Nobody") is None

    def test_gateway_of_unknown_producer(self, world):
        controller, *_ = world
        from repro.exceptions import UnknownProducerError

        with pytest.raises(UnknownProducerError):
            controller.gateway_of("Nobody")
