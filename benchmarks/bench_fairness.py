#!/usr/bin/env python
"""Fair-scheduling benchmark: ``sched=none`` vs ``sched=fair``.

Runs the abusive-tenant ``anomaly`` workload twice through the same
seeded federation — once with the fifo baseline scheduler, once with the
deficit-round-robin fair scheduler — and emits the
``css-bench-fairness/1`` comparison payload (per-tenant shares, Jain's
fairness index over the weighted max-min reference, victim p99 wait and
starvation, throttle/shed counters, audit digests).

The script enforces the PR's acceptance gate and exits non-zero when it
fails: the fair arm must score strictly higher on Jain's index *and* on
the victim tenant's demand-satisfaction share, while both arms reproduce
bit-for-bit identical audit digests (the scheduler shapes shares, never
decisions).  Usage::

    PYTHONPATH=src python benchmarks/bench_fairness.py \
        --scenario anomaly --population 4000 --ops 600 --nodes 2 \
        --out BENCH_fairness.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.sched.fairness import (  # noqa: E402
    DEFAULT_DRAIN_SECONDS,
    DEFAULT_NODES,
    DEFAULT_SERVICE_RATE,
    fairness_gate,
    run_fairness,
)
from repro.workload.config import workload_config  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="anomaly",
                        help="workload scenario preset (default: anomaly)")
    parser.add_argument("--population", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=600)
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--service-rate", type=float,
                        default=DEFAULT_SERVICE_RATE,
                        help="virtual-server work-seconds per simulated "
                             "second per node")
    parser.add_argument("--drain-seconds", type=float,
                        default=DEFAULT_DRAIN_SECONDS)
    parser.add_argument("--out", default=None,
                        help="write the css-bench-fairness/1 payload here")
    args = parser.parse_args(argv)

    overrides: dict[str, object] = {
        "population": args.population, "ops": args.ops,
    }
    if args.seed is not None:
        overrides["seed"] = args.seed
    workload = workload_config(args.scenario, **overrides)

    payload = run_fairness(
        workload,
        nodes=args.nodes,
        source="benchmarks/bench_fairness.py",
        drain_seconds=args.drain_seconds,
        service_rate=args.service_rate,
    )

    print(f"fairness comparison ({args.scenario}, {args.ops} ops, "
          f"{args.nodes} nodes, seed {workload.seed})")
    print(f"{'sched':>6}  {'jain':>7}  {'victim':>7}  {'p99 wait':>9}  "
          f"{'throttled':>9}  {'shed':>5}")
    for arm in ("none", "fair"):
        point = payload["arms"][arm]
        print(f"{arm:>6}  {point['jain_index']:>7.4f}  "
              f"{point['victim_share']:>7.4f}  "
              f"{point['victim_p99_wait_seconds']:>8.3f}s  "
              f"{point['throttled_total']:>9}  {point['shed_total']:>5}")
    print(f"audit digests {'match' if payload['audit_digest_match'] else 'DIFFER'}")

    if args.out:
        target = Path(args.out)
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")

    problems = fairness_gate(payload)
    if problems:
        for problem in problems:
            print(f"bench_fairness: {problem}", file=sys.stderr)
        return 1
    print("fair beats none on Jain's index and victim share; "
          "decisions unchanged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
