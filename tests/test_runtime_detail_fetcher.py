"""A4 availability regression through the kernel-resolved DetailFetcher.

The paper's gateway persists every published detail so requests keep
working "even months after the publication", source downtime included
(§4).  After the service-kernel refactor the enforcer reaches gateways
only through a :class:`~repro.runtime.interfaces.DetailFetcher`; these
tests pin that the availability guarantee — and its ``GatewayStats``
accounting — survived the seam change, for both the production endpoint
fetcher and the direct in-process one.
"""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.core.gateway import LocalCooperationGateway
from repro.exceptions import SourceUnavailableError, UnknownProducerError
from repro.runtime.services import DirectDetailFetcher, EndpointDetailFetcher
from tests.conftest import blood_test_schema


def build_world(persistence_enabled: bool = True):
    controller = DataController(seed="a4")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    hospital.gateway.persistence_enabled = persistence_enabled
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")
    return controller, hospital, blood, doctor


def publish(hospital, blood, subject="p1"):
    return hospital.publish(
        blood, subject_id=subject, subject_name="Mario Bianchi", summary="done",
        details={"PatientId": subject, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})


class TestAvailabilityThroughFetcher:
    def test_detail_served_from_gateway_store_while_source_offline(self):
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        hospital.gateway.take_source_offline()
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values()["PatientId"] == "p1"
        stats = hospital.gateway.stats
        assert stats.stored == 1
        assert stats.served_from_cache == 1
        assert stats.unavailable_failures == 0

    def test_without_persistence_offline_source_fails_loud(self):
        controller, hospital, blood, doctor = build_world(persistence_enabled=False)
        notification = publish(hospital, blood)
        hospital.gateway.take_source_offline()
        with pytest.raises(SourceUnavailableError):
            doctor.request_details(notification, "healthcare-treatment")
        assert hospital.gateway.stats.unavailable_failures == 1
        assert controller.enforcer.stats.gateway_failures == 1

    def test_endpoint_outage_maps_to_source_unavailable(self):
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        controller.endpoints.get("gateway.Hospital.getResponse").take_offline()
        with pytest.raises(SourceUnavailableError):
            doctor.request_details(notification, "healthcare-treatment")

    def test_endpoint_fetcher_counts_calls_in_the_soa_layer(self):
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        endpoint = controller.endpoints.get("gateway.Hospital.getResponse")
        before = endpoint.stats.calls
        doctor.request_details(notification, "healthcare-treatment")
        assert endpoint.stats.calls == before + 1


class TestFetcherImplementations:
    def test_endpoint_fetcher_rejects_unknown_producer(self):
        controller, hospital, blood, doctor = build_world()
        fetcher = EndpointDetailFetcher(controller.endpoints, controller.gateway_of)
        with pytest.raises(UnknownProducerError):
            fetcher.fetch("Nowhere-Clinic", "src-1", ["PatientId"], "evt-1")

    def test_direct_fetcher_runs_algorithm_2_without_the_endpoint_hop(self):
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        entry = controller.id_map.resolve(notification.event_id)
        fetcher = DirectDetailFetcher(controller.gateway_of)
        endpoint = controller.endpoints.get("gateway.Hospital.getResponse")
        before = endpoint.stats.calls
        detail = fetcher.fetch("Hospital", entry.src_event_id,
                               ["PatientId", "Hemoglobin"], notification.event_id)
        assert endpoint.stats.calls == before  # no SOA call was made
        exposed = detail.exposed_values()
        assert set(exposed) == {"PatientId", "Hemoglobin"}

    def test_direct_fetcher_still_filters_fields_at_the_producer(self):
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        entry = controller.id_map.resolve(notification.event_id)
        fetcher = DirectDetailFetcher(controller.gateway_of)
        detail = fetcher.fetch("Hospital", entry.src_event_id,
                               ["Hemoglobin"], notification.event_id)
        assert "PatientId" not in detail.exposed_values()
        assert "HivResult" not in detail.exposed_values()


class TestTemporalDecoupling:
    def test_months_later_request_after_gateway_reattach(self):
        """A restarted gateway with restored details keeps serving (A4)."""
        controller, hospital, blood, doctor = build_world()
        notification = publish(hospital, blood)
        original = hospital.gateway

        replacement = LocalCooperationGateway("Hospital")
        for src_event_id, event_class, details in original.stored_entries():
            replacement.restore_detail(src_event_id, event_class, details)
        replacement.take_source_offline()
        controller.attach_gateway("Hospital", replacement)

        from repro.clock import MONTH
        controller.clock.advance(3 * MONTH)
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values()["Hemoglobin"] == 14.0
        assert replacement.stats.served_from_cache == 1
