"""Cross-node privacy invariants — the acceptance tests of the federation.

Three properties must survive distribution:

1. a request for details about a remote event is decided by the
   *producer's home node* PDP (Algorithm 1) and gateway (Algorithm 2);
2. deny-by-default holds federation-wide: a policy sitting on the
   consumer's node is invisible to the home node and grants nothing;
3. no plaintext subject identity ever crosses a link.
"""

import pytest

from repro.audit.log import AuditAction, AuditOutcome
from repro.exceptions import AccessDeniedError
from repro.federation.link import HOP_COUNTER
from repro.federation.node import NODE_QUEUE_DEPTH
from repro.obs.telemetry import InMemoryTelemetry
from repro.xacml.serialize import serialize_policy
from repro import PrivacyPolicy
from tests.conftest import build_federation


class TestHomeNodeDecides:
    def test_remote_detail_request_is_decided_by_the_home_pdp(
        self, federation_two
    ):
        platform = federation_two.platform
        notification = federation_two.publish_blood_test()
        home_enforcer = platform.controller_of("node-0").enforcer
        consumer_enforcer = platform.controller_of("node-1").enforcer
        permits_before = home_enforcer.stats.permits

        detail = platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
            "healthcare-treatment",
        )

        # The decision ran on the producer's home node, and only there.
        assert home_enforcer.stats.permits == permits_before + 1
        assert consumer_enforcer.stats.permits == 0
        assert consumer_enforcer.stats.requests == 0
        # Field filtering also happened at home: policy fields released,
        # everything else already stripped when the message crossed back.
        assert set(detail.released_fields) == {
            "PatientId", "Name", "Hemoglobin", "Glucose"
        }
        assert detail.payload.fields["HivResult"] is None
        assert detail.payload.fields["Hemoglobin"] == 14.0

    def test_both_nodes_audit_their_side_of_a_permit(self, federation_two):
        platform = federation_two.platform
        notification = federation_two.publish_blood_test()
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
            "healthcare-treatment",
        )
        home_records = [
            r for r in platform.controller_of("node-0").audit_log.records()
            if r.action is AuditAction.DETAIL_REQUEST
        ]
        consumer_records = [
            r for r in platform.controller_of("node-1").audit_log.records()
            if r.action is AuditAction.DETAIL_REQUEST
        ]
        assert [r.outcome for r in home_records] == [AuditOutcome.PERMIT]
        assert [r.outcome for r in consumer_records] == [AuditOutcome.PERMIT]
        # The forwarding node's record names the deciding node.
        assert "resolved by home node node-0" in consumer_records[0].detail

    def test_purpose_mismatch_is_denied_at_home(self, federation_two):
        platform = federation_two.platform
        notification = federation_two.publish_blood_test()
        home_enforcer = platform.controller_of("node-0").enforcer
        with pytest.raises(AccessDeniedError):
            platform.request_details(
                "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
                "statistical-analysis",
            )
        assert home_enforcer.stats.denies == 1


class TestDenyByDefaultFederationWide:
    def test_policy_on_the_consumer_node_grants_nothing(self):
        """The acceptance property: the home node has no matching policy,
        the consumer's node holds one — details must still be denied,
        because only the home node's repository feeds the deciding PDP."""
        deployment = build_federation(with_policy=False)
        platform = deployment.platform
        notification = deployment.publish_blood_test()

        # Plant a fully-matching policy directly in the CONSUMER node's
        # repository — a rogue node trying to self-authorize.
        rogue = PrivacyPolicy(
            policy_id="rogue-1",
            producer_id="Hospital-S-Maria",
            event_type="BloodTest",
            fields=frozenset({"PatientId", "Name", "Hemoglobin", "Glucose"}),
            purposes=frozenset({"healthcare-treatment"}),
            actor_id="FamilyDoctors/Dr-Rossi",
        )
        platform.controller_of("node-1").policies.add(
            rogue, serialize_policy(rogue.to_xacml())
        )

        home_enforcer = platform.controller_of("node-0").enforcer
        with pytest.raises(AccessDeniedError):
            platform.request_details(
                "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
                "healthcare-treatment",
            )
        # The denial came from the home node's PDP, deny-by-default.
        assert home_enforcer.stats.denies == 1
        consumer_denials = [
            r for r in platform.controller_of("node-1").audit_log.records()
            if r.action is AuditAction.DETAIL_REQUEST
            and r.outcome is AuditOutcome.DENY
        ]
        assert len(consumer_denials) == 1
        assert "denied by home node node-0" in consumer_denials[0].detail

    def test_remote_subscribe_without_policy_queues_a_pending_request(self):
        deployment = build_federation(with_policy=False)
        platform = deployment.platform
        with pytest.raises(AccessDeniedError):
            platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        # The pending access request lands with the producer, on ITS node.
        home = platform.controller_of("node-0")
        pending = home.pending_requests.for_producer("Hospital-S-Maria")
        assert [p.consumer_id for p in pending] == ["FamilyDoctors/Dr-Rossi"]
        assert len(platform.controller_of("node-1").pending_requests) == 0
        denials = [
            r for r in home.audit_log.records()
            if r.action is AuditAction.SUBSCRIBE
            and r.outcome is AuditOutcome.DENY
        ]
        assert len(denials) == 1
        assert "remote subscribe from node-1" in denials[0].detail


class TestWirePrivacy:
    def test_no_plaintext_subject_identity_crosses_any_link(
        self, federation_two
    ):
        platform = federation_two.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notifications = [
            federation_two.publish_blood_test(
                subject_id=f"pat-secret-{i}", name="Maria Rossi"
            )
            for i in range(6)
        ]
        platform.dispatch_all()
        # Exercise every wire path: details, cluster inquiry, rebalance,
        # federated audit.
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest",
            notifications[0].event_id, "healthcare-treatment",
        )
        platform.controller_of("node-1").index.inquire(["BloodTest"])
        platform.add_node()
        platform.guarantor_inquiry()

        transcript = platform.link_transcripts()
        assert transcript  # the surface is non-trivial
        for line in transcript:
            assert "pat-secret" not in line
            assert "Maria Rossi" not in line

    def test_notifications_arrive_intact_despite_sealing(self, federation_two):
        platform = federation_two.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        federation_two.publish_blood_test(subject_id="pat-77", name="Maria Rossi")
        platform.dispatch_all()
        inbox = platform.consumer("FamilyDoctors/Dr-Rossi").inbox
        assert inbox[0].subject_ref == "pat-77"
        assert "Maria Rossi" in inbox[0].summary


class TestFederationTelemetry:
    def test_hop_counters_and_queue_gauges_use_hashed_node_labels(self):
        telemetry = InMemoryTelemetry()
        deployment = build_federation(telemetry=telemetry)
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        for i in range(4):
            deployment.publish_blood_test(subject_id=f"pat-{i}")
        platform.dispatch_all()
        platform.record_queue_depths()

        rows = telemetry.metrics.snapshot()
        hops = [r for r in rows if r["name"] == HOP_COUNTER]
        depths = [r for r in rows if r["name"] == NODE_QUEUE_DEPTH]
        assert hops and depths
        assert sum(r["value"] for r in hops) == platform.total_hops()
        for row in hops:
            assert row["labels"]["source"].startswith("h:")
            assert row["labels"]["target"].startswith("h:")
            assert "node-" not in row["labels"]["source"]
        for row in depths:
            assert row["labels"]["node"].startswith("h:")


class TestTraceContextWirePrivacy:
    def test_untraced_deployments_put_no_trace_key_on_the_wire(
        self, federation_two
    ):
        platform = federation_two.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        federation_two.publish_blood_test()
        platform.dispatch_all()
        for line in platform.link_transcripts():
            assert '"trace"' not in line

    def test_wire_trace_context_is_two_counter_ids_and_nothing_else(self):
        import json
        import re

        deployment = build_federation(per_node_telemetry=True)
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notification = deployment.publish_blood_test(
            subject_id="pat-secret-9", name="Maria Rossi"
        )
        platform.dispatch_all()
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
            "healthcare-treatment",
        )

        # Site prefix = guard-hashed node label; ids are counter-minted.
        identifier = re.compile(r"^(h:[0-9a-f]+/)?(tr|sp)-\d+$")
        carried = 0
        for line in platform.link_transcripts():
            assert "pat-secret" not in line
            assert "Maria Rossi" not in line
            message = json.loads(line)
            if "trace" not in message:
                continue
            carried += 1
            context = message["trace"]
            # Exactly two id fields — no baggage slot to smuggle content.
            assert set(context) == {"trace_id", "span_id"}
            assert identifier.match(context["trace_id"])
            assert identifier.match(context["span_id"])
        assert carried > 0

    def test_per_node_span_exports_stay_pseudonymous(self):
        deployment = build_federation(per_node_telemetry=True)
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notification = deployment.publish_blood_test(
            subject_id="pat-secret-3", name="Maria Rossi"
        )
        platform.dispatch_all()
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
            "healthcare-treatment",
        )
        exports = platform.trace_exports()
        assert set(exports) == {"node-0", "node-1"}
        everything = "\n".join(line for lines in exports.values()
                               for line in lines)
        assert everything
        assert "pat-secret" not in everything
        assert "Maria Rossi" not in everything
        # Even node ids appear only as guard hashes in span ids/labels.
        assert "node-0" not in everything and "node-1" not in everything
