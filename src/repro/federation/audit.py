"""Federated audit: the guarantor's view across every node.

A privacy guarantor auditing a federated deployment must see one coherent
trail even though each node keeps its own hash-chained
:class:`~repro.audit.log.AuditLog`.  :func:`guarantor_inquiry` fans the
inquiry out to every node (the coordinator reads its own log directly,
peers export theirs sealed under their federation channel keys), verifies
each chain before trusting it, and merges the records into one
total-ordered trail keyed by ``(timestamp, node id, record id)``.

Each node's chain head digest rides along in the merged trail, so the
guarantor can cross-check a node's export against an independently
published checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.audit.log import AuditAction, AuditOutcome, AuditRecord

if TYPE_CHECKING:
    from repro.federation.node import FederationNode


def record_from_payload(payload: dict) -> AuditRecord:
    """Rebuild an :class:`AuditRecord` from its canonical export payload."""
    return AuditRecord(
        record_id=payload["record_id"],
        timestamp=payload["timestamp"],
        actor=payload["actor"],
        action=AuditAction(payload["action"]),
        outcome=AuditOutcome(payload["outcome"]),
        event_id=payload.get("event_id"),
        event_type=payload.get("event_type"),
        subject_ref=payload.get("subject_ref"),
        purpose=payload.get("purpose"),
        detail=payload.get("detail", ""),
    )


@dataclass(frozen=True)
class FederatedAuditEntry:
    """One audit record attributed to the node whose chain holds it."""

    node_id: str
    record: AuditRecord


@dataclass(frozen=True)
class FederatedAuditTrail:
    """The merged, total-ordered trail plus each node's chain head."""

    entries: tuple[FederatedAuditEntry, ...]
    heads: dict[str, str]

    def __len__(self) -> int:
        return len(self.entries)

    def to_text(self) -> str:
        """Human-readable rendering for the CLI guarantor view."""
        lines = ["federated audit trail"]
        for node_id in sorted(self.heads):
            lines.append(f"  {node_id} head={self.heads[node_id]}")
        lines.append(f"  {len(self.entries)} record(s)")
        for entry in self.entries:
            record = entry.record
            lines.append(
                f"  t={record.timestamp:.3f} [{entry.node_id}] "
                f"{record.actor} {record.action.value} -> "
                f"{record.outcome.value}"
                + (f" ({record.event_type})" if record.event_type else "")
            )
        return "\n".join(lines)


def guarantor_inquiry(
    coordinator: "FederationNode",
    event_type: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> FederatedAuditTrail:
    """Fan a guarantor's audit inquiry out to every node and merge.

    The coordinator's own log is read (and verified) directly; every peer
    exports its verified records sealed under its channel key.  A tampered
    chain anywhere raises :class:`~repro.exceptions.TamperedLogError`
    before any of that node's records enter the trail.
    """
    membership = coordinator.membership
    entries: list[FederatedAuditEntry] = []
    heads: dict[str, str] = {}

    local_log = coordinator.controller.audit_log
    local_log.verify_integrity()
    heads[coordinator.node_id] = local_log.head_digest
    for record in local_log.records():
        if event_type is not None and record.event_type != event_type:
            continue
        if since is not None and record.timestamp < since:
            continue
        if until is not None and record.timestamp > until:
            continue
        entries.append(FederatedAuditEntry(coordinator.node_id, record))

    for node_id in membership.node_ids:
        if node_id == coordinator.node_id:
            continue
        response = membership.link(coordinator.node_id, node_id).call(
            "audit.records",
            {"event_type": event_type, "since": since, "until": until},
        )
        heads[node_id] = response["head"]
        body = coordinator.open_channel(response)
        for payload in body["records"]:
            entries.append(
                FederatedAuditEntry(node_id, record_from_payload(payload))
            )

    entries.sort(key=lambda e: (e.record.timestamp, e.node_id, e.record.record_id))
    return FederatedAuditTrail(entries=tuple(entries), heads=heads)
