"""Policy test-bench: testable, auditable privacy requirements.

The paper's fourth challenge (§1): "owners of data sources often require
that the privacy rules they are asked to define can be tested and audited
so that they can be relieved of the responsibility of privacy breaches."

:class:`PolicyTester` answers that requirement with *dry runs*: what-if
probes evaluated against the live policy repository — same matching, same
XACML semantics, same deny-overrides — but touching no gateway, emitting
no audit record and releasing no data:

* :meth:`simulate` — one probe: "if consumer A asked for event class E
  with purpose S, what exactly would be released, and why?";
* :meth:`probe_matrix` — every (actor × purpose) combination at once, the
  review table a data owner signs off on;
* :meth:`exposure_report` — per event class: which sensitive fields are
  released to whom, and which classes are fully locked down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import EventCatalog
from repro.core.policy import DetailRequestSpec, PolicyRepository, PrivacyPolicy
from repro.exceptions import UnknownEventClassError


@dataclass(frozen=True)
class SimulationOutcome:
    """The result of one dry-run probe."""

    actor: str
    actor_role: str
    event_type: str
    purpose: str
    permitted: bool
    released_fields: frozenset[str]
    matched_grants: tuple[str, ...]       # policy ids
    vetoing_restrictions: tuple[str, ...]  # policy ids
    reason: str

    def describe(self) -> str:
        """One printable line."""
        who = self.actor or f"role:{self.actor_role}"
        if self.permitted:
            return (f"PERMIT {who} / {self.purpose}: "
                    f"releases {sorted(self.released_fields)} "
                    f"(grants: {', '.join(self.matched_grants)})")
        return f"DENY   {who} / {self.purpose}: {self.reason}"


@dataclass
class ExposureReport:
    """Who can see which sensitive fields of which class."""

    producer_id: str
    sensitive_exposure: dict[str, dict[str, list[str]]] = field(default_factory=dict)
    # class -> sensitive field -> [actor selectors granted it]
    locked_classes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Printable report."""
        lines = [f"SENSITIVE-EXPOSURE REPORT — {self.producer_id}"]
        for event_type, fields in sorted(self.sensitive_exposure.items()):
            lines.append(f"  {event_type}:")
            if not fields:
                lines.append("    (no sensitive field is released to anyone)")
            for field_name, grantees in sorted(fields.items()):
                lines.append(f"    {field_name} -> {', '.join(sorted(grantees))}")
        if self.locked_classes:
            lines.append("classes with no policy at all (fully locked down): "
                         + ", ".join(self.locked_classes))
        return "\n".join(lines)


class PolicyTester:
    """Dry-run evaluation of a producer's privacy rules."""

    def __init__(self, catalog: EventCatalog, repository: PolicyRepository) -> None:
        self._catalog = catalog
        self._repository = repository

    # -- single probe --------------------------------------------------------

    def simulate(
        self,
        producer_id: str,
        event_type: str,
        purpose: str,
        actor_id: str = "",
        actor_role: str = "",
        at: float = 0.0,
    ) -> SimulationOutcome:
        """Evaluate one what-if request without releasing anything.

        Mirrors the enforcement semantics exactly: matching restrictions
        veto; otherwise the union of matching grants is released;
        deny-by-default when nothing matches.
        """
        self._catalog.get(event_type)  # unknown classes are caller errors
        spec = DetailRequestSpec(
            actor_id=actor_id, event_type=event_type, purpose=purpose,
            actor_role=actor_role, requested_at=at,
        )
        grants: list[PrivacyPolicy] = []
        restrictions: list[PrivacyPolicy] = []
        for policy in self._repository.candidates(producer_id, event_type):
            if not policy.matches(spec):
                continue
            (restrictions if policy.deny else grants).append(policy)
        if restrictions:
            return SimulationOutcome(
                actor=actor_id, actor_role=actor_role, event_type=event_type,
                purpose=purpose, permitted=False, released_fields=frozenset(),
                matched_grants=tuple(p.policy_id for p in grants),
                vetoing_restrictions=tuple(p.policy_id for p in restrictions),
                reason="vetoed by restriction policy "
                       + ", ".join(p.policy_id for p in restrictions),
            )
        if not grants:
            return SimulationOutcome(
                actor=actor_id, actor_role=actor_role, event_type=event_type,
                purpose=purpose, permitted=False, released_fields=frozenset(),
                matched_grants=(), vetoing_restrictions=(),
                reason="no matching policy (deny-by-default)",
            )
        released = frozenset().union(*(p.fields for p in grants))
        return SimulationOutcome(
            actor=actor_id, actor_role=actor_role, event_type=event_type,
            purpose=purpose, permitted=True, released_fields=released,
            matched_grants=tuple(p.policy_id for p in grants),
            vetoing_restrictions=(), reason="",
        )

    # -- probe matrix ------------------------------------------------------------

    def probe_matrix(
        self,
        producer_id: str,
        event_type: str,
        actors: list[tuple[str, str]],
        purposes: list[str],
        at: float = 0.0,
    ) -> list[SimulationOutcome]:
        """Every (actor × purpose) probe, for the sign-off table.

        ``actors`` are ``(selector, kind)`` with kind ``"unit"``/``"role"``.
        """
        outcomes = []
        for selector, kind in actors:
            for purpose in purposes:
                outcomes.append(self.simulate(
                    producer_id, event_type, purpose,
                    actor_id=selector if kind == "unit" else "",
                    actor_role=selector if kind == "role" else "",
                    at=at,
                ))
        return outcomes

    def render_matrix(self, outcomes: list[SimulationOutcome]) -> str:
        """Printable probe matrix."""
        return "\n".join(outcome.describe() for outcome in outcomes)

    # -- exposure coverage -----------------------------------------------------------

    def exposure_report(self, producer_id: str) -> ExposureReport:
        """Which sensitive fields does each grant release, and to whom."""
        report = ExposureReport(producer_id=producer_id)
        for event_class in self._catalog.classes_of(producer_id):
            sensitive = set(event_class.sensitive_fields)
            exposure: dict[str, list[str]] = {}
            policies = self._repository.candidates(producer_id, event_class.name)
            if not policies:
                report.locked_classes.append(event_class.name)
            for policy in policies:
                if policy.deny:
                    continue
                for field_name in sorted(sensitive.intersection(policy.fields)):
                    exposure.setdefault(field_name, []).append(policy.actor_selector)
            report.sensitive_exposure[event_class.name] = exposure
        return report

    # -- regression checks --------------------------------------------------------------

    def assert_never_released(
        self, producer_id: str, event_type: str, field_name: str,
        except_selectors: frozenset[str] = frozenset(),
    ) -> list[str]:
        """Policy ids releasing ``field_name`` to anyone outside the allow-list.

        A data owner's regression check: "HivResult must never be released
        except to <...>".  Returns the violating policy ids (empty = safe).
        """
        try:
            self._catalog.get(event_type)
        except UnknownEventClassError:
            raise
        violations = []
        for policy in self._repository.candidates(producer_id, event_type):
            if policy.deny or field_name not in policy.fields:
                continue
            if policy.actor_selector not in except_selectors:
                violations.append(policy.policy_id)
        return violations
