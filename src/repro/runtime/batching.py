"""Group-commit batching for durable record logs (kernel kind ``batch``).

The durable backends (:class:`~repro.runtime.backends.JsonlIndexStore`,
:class:`~repro.runtime.backends.JsonlAuditSink`) write one record per
append — one open/write/flush per event, the fixed per-event toll the
batched execution engine amortizes.  A :class:`BatchWriter` sits between
a backend and its :class:`~repro.storage.engine.RecordLog` and buffers
appends until ``batch_size`` records are pending (or :meth:`flush` is
called), then commits them all through the log's ``append_many`` — one
write+flush per batch.

Visibility semantics are unchanged: the backends keep their in-memory
structures (events index, audit chain) current on every append, so local
queries never see stale data; only the *durable* write-through lags, and
every read of the durable log (:meth:`iter_records`, ``__len__``) is a
flush barrier.  Callers that hand the underlying files to someone else —
snapshots, crash-recovery tests, guarantor exports — must call
:meth:`flush` first (see ``DataController.flush_storage``).

``BatchPolicy`` is what the kernel's ``batch`` kind produces: ``off``
yields ``None`` (no wrapping anywhere), ``on`` yields a policy carrying
the configured ``batch_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class BatchPolicy:
    """The platform-wide batching knob (kernel kind ``batch: on``)."""

    batch_size: int = 256
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


@dataclass
class BatchWriterStats:
    """Group-commit counters (benchmarks and the flush-barrier tests)."""

    appended: int = 0
    flushes: int = 0
    flushed_records: int = 0


class BatchWriter:
    """A :class:`~repro.storage.engine.RecordLog` that group-commits.

    Buffered records are committed in arrival order, so after a flush the
    underlying log is byte-identical to what per-record appends would
    have produced — group commit changes *when* durability happens, never
    *what* is durable.
    """

    def __init__(self, log, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self._log = log
        self._batch_size = batch_size
        self._buffer: list[dict] = []
        self.stats = BatchWriterStats()

    @property
    def batch_size(self) -> int:
        """Records buffered before an automatic group commit."""
        return self._batch_size

    @property
    def pending(self) -> int:
        """Records buffered but not yet durable."""
        return len(self._buffer)

    @property
    def path(self):
        """The wrapped log's backing file, when it has one."""
        return getattr(self._log, "path", None)

    def append(self, record: dict) -> int:
        """Buffer one record; auto-flush at the batch boundary.

        Returns the projected count after this record (mirroring the
        per-record append contract); the durable sequence is assigned at
        flush time, in the same order.
        """
        self._buffer.append(record)
        self.stats.appended += 1
        projected = len(self)
        if len(self._buffer) >= self._batch_size:
            self.flush()
        return projected

    def append_many(self, records: list[dict]) -> tuple[int, int] | None:
        """Buffer several records at once (still one flush per batch)."""
        if not records:
            return None
        first = len(self._log) + len(self._buffer) + 1
        for record in records:
            self.append(record)
        return first, first + len(records) - 1

    def flush(self) -> None:
        """Commit every buffered record in one ``append_many`` write."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self._log.append_many(batch)
        self.stats.flushes += 1
        self.stats.flushed_records += len(batch)

    def iter_records(self) -> Iterator[dict]:
        """Stream the durable log — a read, so the flush barrier runs."""
        self.flush()
        return self._log.iter_records()

    def __len__(self) -> int:
        return len(self._log) + len(self._buffer)
