"""The windowed time-series store: ticking, windows, determinism."""

import pytest

from repro.clock import Clock
from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def metrics():
    return MetricsRegistry()


@pytest.fixture()
def store(metrics, clock):
    return TimeSeriesStore(metrics, clock, interval=1.0, capacity=8)


class TestConstruction:
    def test_rejects_non_positive_interval(self, metrics, clock):
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(metrics, clock, interval=0.0)

    def test_rejects_tiny_capacity(self, metrics, clock):
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(metrics, clock, capacity=1)


class TestTicking:
    def test_maybe_tick_respects_interval(self, store, clock):
        assert store.maybe_tick() is True
        assert store.maybe_tick() is False  # same instant: not due yet
        clock.advance(0.5)
        assert store.maybe_tick() is False
        clock.advance(0.5)
        assert store.maybe_tick() is True
        assert store.ticks == 2

    def test_rings_are_bounded_by_capacity(self, metrics, clock):
        store = TimeSeriesStore(metrics, clock, interval=1.0, capacity=4)
        counter = metrics.counter("ops_total")
        for _ in range(10):
            counter.inc()
            store.tick()
            clock.advance(1.0)
        [row] = store.export_rows()
        assert len(row["points"]) == 4  # oldest samples evicted

    def test_tick_times_are_sorted_and_deduplicated(self, store, metrics,
                                                    clock):
        metrics.counter("ops_total").inc()
        metrics.gauge("depth").set(1)
        store.tick()
        clock.advance(1.0)
        store.tick()
        times = store.tick_times()
        assert times == tuple(sorted(set(times)))
        assert len(times) == 2


class TestCounterWindows:
    def test_delta_is_increase_over_window(self, store, metrics, clock):
        counter = metrics.counter("ops_total")
        counter.inc(5)
        store.tick()
        clock.advance(10.0)
        counter.inc(3)
        store.tick()
        assert store.delta("ops_total", window=5.0) == pytest.approx(3.0)
        assert store.delta("ops_total", window=60.0) == pytest.approx(8.0)

    def test_delta_sums_matching_series(self, store, metrics, clock):
        metrics.counter("ops_total", topic="a").inc(2)
        metrics.counter("ops_total", topic="b").inc(4)
        store.tick()
        clock.advance(1.0)
        assert store.delta("ops_total", window=5.0) == pytest.approx(6.0)
        assert store.delta(
            "ops_total", window=5.0, wanted=(("topic", "a"),)
        ) == pytest.approx(2.0)

    def test_rate_clamps_span_to_elapsed_time(self, store, metrics, clock):
        counter = metrics.counter("ops_total")
        store.tick()
        clock.advance(2.0)
        counter.inc(10)
        # 10 ops in 2 elapsed seconds; a 60 s window must not dilute it.
        assert store.rate("ops_total", window=60.0) == pytest.approx(5.0)


class TestHistogramWindows:
    def test_windowed_quantile_sees_only_recent_observations(
        self, store, metrics, clock
    ):
        histogram = metrics.histogram("latency")
        for _ in range(100):
            histogram.observe(0.001)  # old, fast
        store.tick()
        clock.advance(10.0)
        for _ in range(10):
            histogram.observe(1.0)  # recent, slow
        lifetime = histogram.quantile(0.5)
        windowed = store.quantile("latency", 0.5, window=5.0)
        assert lifetime < windowed  # the window isolates the regression
        assert store.windowed_histogram("latency", window=5.0).count == 10

    def test_windowed_histogram_none_without_series(self, store):
        assert store.windowed_histogram("missing", window=5.0) is None


class TestGaugeWindows:
    def test_gauge_worst_includes_live_value(self, store, metrics, clock):
        gauge = metrics.gauge("depth")
        gauge.set(3)
        store.tick()
        clock.advance(0.5)
        gauge.set(9)  # spike between ticks
        assert store.gauge_worst("depth", window=5.0) == pytest.approx(9.0)

    def test_gauge_worst_none_without_series(self, store):
        assert store.gauge_worst("depth", window=5.0) is None


class TestSampleAnchoredWindows:
    """The historical reads incident bundles are reconstructed from."""

    def test_sample_delta_ignores_post_window_growth(self, store, metrics,
                                                     clock):
        counter = metrics.counter("ops_total")
        counter.inc(5)
        store.tick()           # t=0: 5
        clock.advance(1.0)
        counter.inc(3)
        store.tick()           # t=1: 8
        clock.advance(1.0)
        counter.inc(100)
        store.tick()           # t=2: 108
        assert store.sample_delta(
            "ops_total", at=1.0, window=1.0
        ) == pytest.approx(3.0)

    def test_sample_reads_are_stable_over_time(self, store, metrics, clock):
        counter = metrics.counter("ops_total")
        gauge = metrics.gauge("depth")
        histogram = metrics.histogram("latency")
        for value in (1, 2, 3):
            counter.inc(value)
            gauge.set(value)
            histogram.observe(value / 10)
            store.tick()
            clock.advance(1.0)
        before = (
            store.sample_delta("ops_total", at=1.0, window=1.0),
            store.sample_gauge_worst("depth", at=1.0, window=1.0),
            store.sample_histogram("latency", at=1.0, window=1.0).count,
        )
        counter.inc(50)
        gauge.set(50)
        histogram.observe(5.0)
        clock.advance(10.0)
        store.tick()
        after = (
            store.sample_delta("ops_total", at=1.0, window=1.0),
            store.sample_gauge_worst("depth", at=1.0, window=1.0),
            store.sample_histogram("latency", at=1.0, window=1.0).count,
        )
        assert before == after  # history does not rewrite itself

    def test_sample_gauge_worst_is_window_max(self, store, metrics, clock):
        gauge = metrics.gauge("depth")
        for value in (2, 7, 1):
            gauge.set(value)
            store.tick()
            clock.advance(1.0)
        assert store.sample_gauge_worst(
            "depth", at=2.0, window=2.0
        ) == pytest.approx(7.0)


class TestExport:
    def test_export_rows_deterministic_and_filtered(self, metrics, clock):
        store = TimeSeriesStore(metrics, clock, interval=1.0)
        metrics.counter("b_total").inc()
        metrics.counter("a_total").inc(2)
        metrics.histogram("latency").observe(0.01)
        store.tick()
        rows = store.export_rows()
        assert [row["name"] for row in rows] == ["a_total", "b_total",
                                                 "latency"]
        assert rows == store.export_rows()  # stable on re-read
        only = store.export_rows(names=("a_total",))
        assert [row["name"] for row in only] == ["a_total"]
        [hist] = [row for row in rows if row["type"] == "histogram"]
        assert len(hist["points"][0]) == 3  # [at, count, sum]
