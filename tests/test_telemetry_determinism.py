"""Determinism and reporting tests for the telemetry exports.

The platform's clock is simulated and trace/span ids come from plain
counters, so telemetry is a pure function of (seed, workload): two runs of
the same seeded scenario must produce byte-identical JSONL exports.  The
same property makes the ``BENCH_obs.json`` scenario summary reproducible,
which is what lets CI schema-check it on every push.
"""

from __future__ import annotations

import json

from repro.cli import main as cli_main
from repro.obs.benchreport import latency_summary, scenario_summary
from repro.runtime.kernel import RuntimeConfig
from repro.sim.scenario import CssScenario, ScenarioConfig

from benchmarks.check_obs_schema import validate


def run_scenario(seed: int = 2010, n_events: int = 40, guard: str = "hash"):
    config = ScenarioConfig(
        n_patients=8, n_events=n_events, detail_request_rate=0.4, seed=seed,
        runtime=RuntimeConfig(telemetry="inmemory", telemetry_guard=guard),
    )
    scenario = CssScenario(config)
    scenario.run(scenario.generate_workload())
    return scenario


class TestTraceDeterminism:
    def test_same_seed_same_trace_bytes(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        run_scenario(seed=77).controller.telemetry.dump(trace_path=first)
        run_scenario(seed=77).controller.telemetry.dump(trace_path=second)
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0

    def test_same_seed_same_metrics_export(self):
        first = run_scenario(seed=77).controller.telemetry.metrics_export()
        second = run_scenario(seed=77).controller.telemetry.metrics_export()
        assert first == second

    def test_different_seed_different_trace(self):
        first = run_scenario(seed=77).controller.telemetry.trace_export()
        second = run_scenario(seed=78).controller.telemetry.trace_export()
        assert first != second

    def test_exported_spans_form_consistent_traces(self):
        telemetry = run_scenario().controller.telemetry
        spans = [json.loads(line) for line in telemetry.trace_export()]
        by_id = {span["span_id"] for span in spans}
        for span in spans:
            assert span["end"] is not None
            assert span["end"] >= span["start"]
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id


class TestScenarioSummary:
    def test_summary_passes_the_schema_check(self):
        telemetry = run_scenario().controller.telemetry
        payload = scenario_summary(telemetry, source="test")
        assert validate(payload) == []
        figures = {entry["figure"] for entry in payload["benchmarks"]}
        assert "scenario" in figures
        pipelines = {entry["name"] for entry in payload["benchmarks"]}
        assert any("publish" in name for name in pipelines)

    def test_latency_summary_shape(self):
        summary = latency_summary([0.001, 0.002, 0.003, 0.010])
        assert summary["min"] == 0.001 and summary["max"] == 0.010
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_schema_check_flags_malformed_payloads(self):
        assert validate([]) == ["top level must be a JSON object"]
        problems = validate({"schema": "nope", "source": "", "benchmarks": []})
        assert any("schema" in problem for problem in problems)
        assert any("source" in problem for problem in problems)
        assert any("benchmarks" in problem for problem in problems)
        bad_entry = {
            "schema": "css-bench-obs/2", "source": "x",
            "benchmarks": [{"name": "n", "figure": "f", "ops_per_second": 10,
                            "latency_seconds": {"p50": 2, "p95": 1, "p99": 3,
                                                "mean": 1, "min": 0, "max": 3}}],
        }
        assert any("p50 <= p95" in problem for problem in validate(bad_entry))


class TestTelemetryCli:
    def test_cli_reports_and_writes_artifacts(self, tmp_path, capsys):
        bench_out = tmp_path / "BENCH_obs.json"
        trace_out = tmp_path / "trace.jsonl"
        code = cli_main([
            "telemetry", "--scenario", "default", "--events", "30",
            "--patients", "6", "--seed", "9",
            "--trace-out", str(trace_out), "--bench-out", str(bench_out),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "pipeline.stage.duration_seconds" in captured
        assert "p95" in captured and "counters and gauges:" in captured
        assert trace_out.exists()
        payload = json.loads(bench_out.read_text())
        assert validate(payload) == []

    def test_cli_reject_guard_runs_clean(self, capsys):
        # The instrumentation itself must never trip the strict guard —
        # no identifying label ever reaches the registry.
        code = cli_main(["telemetry", "--events", "20", "--patients", "5",
                         "--guard", "reject"])
        assert code == 0
        assert "finished spans:" in capsys.readouterr().out

    def test_schema_check_cli_exit_codes(self, tmp_path, capsys):
        from benchmarks.check_obs_schema import main as check_main

        missing = tmp_path / "missing.json"
        assert check_main(["check", str(missing)]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert check_main(["check", str(bad)]) == 1
        assert check_main(["check"]) == 2
        good = tmp_path / "good.json"
        good.write_text(json.dumps({
            "schema": "css-bench-obs/2", "source": "test",
            "benchmarks": [{"name": "n", "figure": "f", "ops_per_second": 1.0,
                            "latency_seconds": {"p50": 1, "p95": 1, "p99": 1,
                                                "mean": 1, "min": 1, "max": 1}}],
            "counters": {"c": 1},
        }))
        assert check_main(["check", str(good)]) == 0
        capsys.readouterr()  # drain stderr/stdout noise
