"""Care-pathway mining: process analysis over event sequences.

The project's purpose is to "monitor, control and trace the clinical and
assistive processes" (§1).  Beyond volumes (:mod:`~repro.analytics.monitor`),
the governing body wants the *process view*: which event typically follows
which (discharge → home care → telecare?), where pathways start and end,
and how long transitions take.

:class:`PathwayMiner` builds that view from the controller's id map — each
citizen's event sequence ordered by publication time — as a directed
transition graph (:mod:`networkx`).  Like the monitor, it touches no
detail payloads, and transition counts are small-cell suppressed before
publication.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import networkx as nx

from repro.analytics.suppression import SuppressedCount, suppress
from repro.core.controller import DataController
from repro.exceptions import ConfigurationError

#: Synthetic nodes marking pathway boundaries.
START = "__START__"
END = "__END__"


@dataclass(frozen=True)
class Transition:
    """One published pathway edge."""

    source: str
    target: str
    count: SuppressedCount
    median_gap_seconds: float | None


class PathwayMiner:
    """Mines the event-type transition structure of citizens' pathways."""

    def __init__(self, controller: DataController,
                 suppression_threshold: int = 5) -> None:
        if suppression_threshold < 1:
            raise ConfigurationError("suppression threshold must be at least 1")
        self._controller = controller
        self.threshold = suppression_threshold

    # -- sequences -----------------------------------------------------------

    def sequences(self) -> dict[str, list[tuple[str, float]]]:
        """Per-citizen event sequences: subject → [(event type, time)].

        Built from the id map (event type + publication time + subject),
        never from payloads.
        """
        per_subject: dict[str, list[tuple[str, float]]] = defaultdict(list)
        for entry in self._controller.id_map._by_global.values():  # noqa: SLF001
            per_subject[entry.subject_ref].append(
                (entry.event_type, entry.published_at)
            )
        for events in per_subject.values():
            events.sort(key=lambda pair: pair[1])
        return dict(per_subject)

    # -- graph ------------------------------------------------------------------

    def transition_graph(self) -> nx.DiGraph:
        """The raw (unsuppressed) transition multigraph as a weighted DiGraph.

        Nodes are event types plus the synthetic ``START``/``END`` markers;
        edge attribute ``count`` is the number of observed transitions and
        ``gaps`` the list of inter-event delays.  Internal — publication
        goes through :meth:`transitions`, which suppresses small counts.
        """
        graph = nx.DiGraph()
        for events in self.sequences().values():
            path = [START] + [event_type for event_type, _ in events] + [END]
            times = [None] + [moment for _, moment in events] + [None]
            for index in range(len(path) - 1):
                source, target = path[index], path[index + 1]
                if not graph.has_edge(source, target):
                    graph.add_edge(source, target, count=0, gaps=[])
                graph[source][target]["count"] += 1
                if times[index] is not None and times[index + 1] is not None:
                    graph[source][target]["gaps"].append(
                        times[index + 1] - times[index]
                    )
        return graph

    def transitions(self) -> list[Transition]:
        """The publishable transition list, suppression-protected.

        Suppressed edges report ``<k`` counts and hide their timing (a
        median over fewer than k gaps could expose an individual's
        trajectory).
        """
        results = []
        graph = self.transition_graph()
        for source, target, data in graph.edges(data=True):
            count = suppress(data["count"], self.threshold)
            median_gap: float | None = None
            if not count.suppressed and data["gaps"]:
                gaps = sorted(data["gaps"])
                median_gap = gaps[len(gaps) // 2]
            results.append(Transition(source, target, count, median_gap))
        results.sort(key=lambda t: (-(t.count.value or 0), t.source, t.target))
        return results

    # -- derived views ---------------------------------------------------------------

    def common_pathways(self, length: int = 3, top: int = 5) -> list[tuple[tuple[str, ...], int]]:
        """The most frequent event-type n-grams across citizens.

        Returns up to ``top`` (pathway, count) pairs whose count clears the
        suppression threshold.
        """
        if length < 2:
            raise ConfigurationError("pathway length must be at least 2")
        counts: dict[tuple[str, ...], int] = defaultdict(int)
        for events in self.sequences().values():
            types = [event_type for event_type, _ in events]
            for index in range(len(types) - length + 1):
                counts[tuple(types[index:index + length])] += 1
        eligible = [
            (pathway, count) for pathway, count in counts.items()
            if count >= self.threshold
        ]
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        return eligible[:top]

    def entry_points(self) -> dict[str, SuppressedCount]:
        """How pathways start: counts of first events per class."""
        graph = self.transition_graph()
        if START not in graph:
            return {}
        return {
            target: suppress(graph[START][target]["count"], self.threshold)
            for target in graph.successors(START)
        }

    def hub_classes(self, top: int = 3) -> list[str]:
        """Event classes most central to pathways (by degree centrality)."""
        graph = self.transition_graph()
        graph.remove_nodes_from([n for n in (START, END) if n in graph])
        if not graph:
            return []
        centrality = nx.degree_centrality(graph)
        ranked = sorted(centrality, key=lambda node: (-centrality[node], node))
        return ranked[:top]

    def render(self) -> str:
        """Printable pathway report."""
        lines = [f"CARE-PATHWAY REPORT (suppression k = {self.threshold})",
                 "transitions:"]
        for transition in self.transitions():
            gap = (f"  median gap {transition.median_gap_seconds:.0f}s"
                   if transition.median_gap_seconds is not None else "")
            lines.append(f"  {transition.source:>22} -> {transition.target:<22} "
                         f"{transition.count.display:>6}{gap}")
        lines.append("entry points:")
        for name, cell in sorted(self.entry_points().items()):
            lines.append(f"  {name:<24} {cell.display}")
        hubs = self.hub_classes()
        if hubs:
            lines.append("hub classes: " + ", ".join(hubs))
        return "\n".join(lines)
