"""Unit tests for the audit substrate (log, query, reports)."""

import pytest

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.audit.query import AuditQuery
from repro.audit.reports import data_subject_report, denial_report, guarantor_report
from repro.exceptions import AuditError, TamperedLogError


def record(
    record_id: str,
    actor: str = "doctor",
    action: AuditAction = AuditAction.DETAIL_REQUEST,
    outcome: AuditOutcome = AuditOutcome.PERMIT,
    timestamp: float = 0.0,
    **kwargs,
) -> AuditRecord:
    return AuditRecord(
        record_id=record_id,
        timestamp=timestamp,
        actor=actor,
        action=action,
        outcome=outcome,
        **kwargs,
    )


@pytest.fixture()
def log() -> AuditLog:
    audit = AuditLog()
    audit.append(record("r1", actor="doctor", timestamp=10.0,
                        event_id="e1", event_type="BloodTest",
                        subject_ref="pat-1", purpose="healthcare-treatment"))
    audit.append(record("r2", actor="statistician", timestamp=20.0,
                        event_id="e1", event_type="BloodTest",
                        subject_ref="pat-1", purpose="statistical-analysis",
                        outcome=AuditOutcome.DENY))
    audit.append(record("r3", actor="doctor", timestamp=30.0,
                        action=AuditAction.INDEX_INQUIRY,
                        event_type="HomeCare", subject_ref="pat-2"))
    return audit


class TestAuditLog:
    def test_append_and_len(self, log):
        assert len(log) == 3

    def test_records_snapshot_ordered(self, log):
        assert [r.record_id for r in log.records()] == ["r1", "r2", "r3"]

    def test_record_at(self, log):
        assert log.record_at(1).record_id == "r2"
        with pytest.raises(AuditError):
            log.record_at(99)

    def test_head_digest_changes_per_append(self):
        audit = AuditLog()
        empty_head = audit.head_digest
        audit.append(record("r1"))
        assert audit.head_digest != empty_head

    def test_verify_integrity_passes(self, log):
        log.verify_integrity()

    def test_tampering_detected(self, log):
        # Simulate an attacker rewriting a stored record in place.
        log._records[1] = record("r2", actor="statistician", timestamp=20.0,
                                 outcome=AuditOutcome.PERMIT)  # flipped outcome
        with pytest.raises(TamperedLogError):
            log.verify_integrity()


class TestAuditQuery:
    def test_by_actor(self, log):
        assert AuditQuery().by_actor("doctor").count(log) == 2

    def test_by_action(self, log):
        assert AuditQuery().by_action(AuditAction.INDEX_INQUIRY).count(log) == 1

    def test_by_outcome(self, log):
        assert AuditQuery().by_outcome(AuditOutcome.DENY).count(log) == 1

    def test_about_event(self, log):
        assert AuditQuery().about_event("e1").count(log) == 2

    def test_about_event_type(self, log):
        assert AuditQuery().about_event_type("HomeCare").count(log) == 1

    def test_about_subject(self, log):
        assert AuditQuery().about_subject("pat-1").count(log) == 2

    def test_for_purpose(self, log):
        assert AuditQuery().for_purpose("statistical-analysis").count(log) == 1

    def test_time_window(self, log):
        assert AuditQuery().between(15.0, 25.0).count(log) == 1
        assert AuditQuery().between(since=15.0).count(log) == 2
        assert AuditQuery().between(until=15.0).count(log) == 1

    def test_conjunction(self, log):
        matches = (AuditQuery().by_actor("doctor")
                   .about_subject("pat-1").run(log))
        assert [r.record_id for r in matches] == ["r1"]

    def test_empty_query_matches_everything(self, log):
        assert AuditQuery().count(log) == 3


class TestReports:
    def test_guarantor_report_scopes_by_class(self, log):
        report = guarantor_report(log, event_type="BloodTest")
        assert report.total == 2
        assert report.chain_verified
        assert report.by_outcome["deny"] == 1

    def test_guarantor_report_all_classes(self, log):
        assert guarantor_report(log).total == 3

    def test_guarantor_report_time_window(self, log):
        assert guarantor_report(log, since=25.0).total == 1

    def test_data_subject_report(self, log):
        report = data_subject_report(log, "pat-1")
        assert report.total == 2
        assert report.by_actor["doctor"] == 1
        assert report.by_actor["statistician"] == 1

    def test_denial_report(self, log):
        report = denial_report(log)
        assert report.total == 1
        assert report.records[0].record_id == "r2"

    def test_report_renders_text(self, log):
        text = guarantor_report(log).to_text()
        assert "Guarantor access report" in text
        assert "doctor" in text

    def test_report_fails_on_tampered_log(self, log):
        log._records[0] = record("r1", actor="evil")
        with pytest.raises(TamperedLogError):
            guarantor_report(log)
