"""Hierarchical topics with wildcard subscription patterns.

Topics are dot-separated paths mirroring the event taxonomy, e.g.
``events.health.BloodTest`` or ``events.social.HomeCareVisit``.
Subscription patterns may use ``*`` (exactly one segment) and ``#``
(zero or more trailing segments), the classic messaging wildcards:

* ``events.health.*`` matches every health event class;
* ``events.#`` matches everything under ``events``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import UnknownTopicError

_SEGMENT = re.compile(r"^[A-Za-z0-9_\-]+$")


def _split(path: str) -> list[str]:
    segments = path.split(".")
    if not segments or any(not seg for seg in segments):
        raise UnknownTopicError(f"malformed topic path {path!r}")
    return segments


@dataclass(frozen=True)
class Topic:
    """A concrete (wildcard-free) topic path."""

    path: str

    def __post_init__(self) -> None:
        for segment in _split(self.path):
            if not _SEGMENT.match(segment):
                raise UnknownTopicError(f"illegal topic segment {segment!r} in {self.path!r}")

    @property
    def segments(self) -> tuple[str, ...]:
        """The dot-separated segments of the path."""
        return tuple(self.path.split("."))

    def is_under(self, prefix: str) -> bool:
        """Whether this topic lives under the ``prefix`` subtree."""
        return self.path == prefix or self.path.startswith(prefix + ".")


def validate_pattern(pattern: str) -> None:
    """Validate a subscription pattern; raise ``UnknownTopicError`` if bad.

    ``#`` may only appear as the final segment.
    """
    segments = _split(pattern)
    for index, segment in enumerate(segments):
        if segment == "#":
            if index != len(segments) - 1:
                raise UnknownTopicError(f"'#' must be the last segment in {pattern!r}")
        elif segment != "*" and not _SEGMENT.match(segment):
            raise UnknownTopicError(f"illegal pattern segment {segment!r} in {pattern!r}")


def topic_matches(pattern: str, topic: str) -> bool:
    """Whether ``topic`` (concrete) matches ``pattern`` (may hold wildcards)."""
    validate_pattern(pattern)
    pattern_segments = pattern.split(".")
    topic_segments = _split(topic)
    for index, pat in enumerate(pattern_segments):
        if pat == "#":
            return True
        if index >= len(topic_segments):
            return False
        if pat != "*" and pat != topic_segments[index]:
            return False
    return len(pattern_segments) == len(topic_segments)


class TopicTree:
    """The broker's registry of declared topics.

    The data controller declares one topic per event class when a producer
    installs the class in the catalog; publishing to an undeclared topic is
    an error (it means the class was never declared — paper §5).
    """

    def __init__(self) -> None:
        self._topics: dict[str, Topic] = {}

    def declare(self, path: str) -> Topic:
        """Declare ``path`` (idempotent) and return the topic."""
        topic = self._topics.get(path)
        if topic is None:
            topic = Topic(path)
            self._topics[path] = topic
        return topic

    def exists(self, path: str) -> bool:
        """Whether ``path`` has been declared."""
        return path in self._topics

    def require(self, path: str) -> Topic:
        """Return the declared topic or raise ``UnknownTopicError``."""
        try:
            return self._topics[path]
        except KeyError as exc:
            raise UnknownTopicError(f"topic {path!r} was never declared") from exc

    def all_paths(self) -> list[str]:
        """Every declared topic path, in declaration order."""
        return list(self._topics)

    def matching(self, pattern: str) -> list[Topic]:
        """All declared topics matching ``pattern``."""
        return [topic for path, topic in self._topics.items() if topic_matches(pattern, path)]
