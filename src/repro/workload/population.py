"""Lazily materialized million-actor population with a realistic hierarchy.

The paper's platform serves an entire regional population; driving the
reproduction at that scale means the workload engine must be able to name
millions of assisted persons without holding millions of objects.  A
:class:`LazyPopulation` therefore derives every person *on demand* from
``(seed, index)`` alone — same person for the same coordinates no matter
when, where, or in what order they are first touched — and keeps only a
bounded LRU cache of recently materialized records, so resident memory is
O(active set), never O(population).

The actor hierarchy mirrors the deployment's cast:

* **assisted persons** — the subjects events are about (index ``0..size``);
* **guardians** — a seeded fraction of persons (minors, persons under
  legal protection) has a guardian actor attached;
* **case workers** — every person belongs to exactly one case worker,
  assigned in contiguous blocks of ``case_load`` persons (the realistic
  shape: a municipality assigns caseloads, not random scatter);
* **clinicians** — a pool scaling with the square root of the population,
  assigned deterministically per person;
* **consumer organizations (tenants)** — the institutions that subscribe
  and request details; they are few, named, and configured per scenario
  (:mod:`repro.workload.config`), not generated here.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.sim.domain import FAMILY_NAMES, GIVEN_NAMES, MUNICIPALITIES

#: Prefix of every assisted-person subject id.  The privacy-invariant
#: tests grep benchmark payloads and telemetry exports for this shape
#: (``ap-`` + digits) — it must never appear there in plaintext.
SUBJECT_PREFIX = "ap-"


@dataclass(frozen=True)
class AssistedPerson:
    """One assisted person plus their position in the actor hierarchy."""

    index: int
    person_id: str
    name: str
    birth_year: int
    municipality: str
    guardian_id: str | None
    case_worker_id: str
    clinician_id: str


def _derive_rng(seed: int, namespace: str, index: int) -> random.Random:
    """A deterministic per-entity RNG, independent of access order.

    Seeded from a SHA-256 of the coordinates so neighbouring indexes do
    not produce correlated streams (``random.Random(seed + index)``
    would).
    """
    digest = hashlib.sha256(
        f"workload-pop:{seed}:{namespace}:{index}".encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class LazyPopulation:
    """A seeded population materialized person-by-person on first access."""

    def __init__(
        self,
        size: int,
        seed: int,
        guardian_rate: float = 0.12,
        case_load: int = 250,
        cache_size: int = 4096,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("population size must be positive")
        if not 0.0 <= guardian_rate <= 1.0:
            raise ConfigurationError("guardian_rate must be within [0, 1]")
        if case_load <= 0:
            raise ConfigurationError("case_load must be positive")
        if cache_size <= 0:
            raise ConfigurationError("cache_size must be positive")
        self.size = size
        self.seed = seed
        self.guardian_rate = guardian_rate
        self.case_load = case_load
        self.cache_size = cache_size
        #: Clinician pool scales sub-linearly, like real registries.
        self.clinician_pool = max(16, math.isqrt(size))
        self._cache: OrderedDict[int, AssistedPerson] = OrderedDict()
        self._materialized_total = 0

    # -- cheap id arithmetic (no materialization) --------------------------

    def subject_id(self, index: int) -> str:
        """The assisted person's subject id — no record materialized."""
        self._check(index)
        return f"{SUBJECT_PREFIX}{index:08d}"

    def case_worker_of(self, index: int) -> str:
        """The case worker owning ``index``'s contiguous caseload block."""
        self._check(index)
        return f"cw-{index // self.case_load:06d}"

    @property
    def case_worker_count(self) -> int:
        """Number of distinct case workers over the whole population."""
        return (self.size + self.case_load - 1) // self.case_load

    # -- materialization ---------------------------------------------------

    def person(self, index: int) -> AssistedPerson:
        """Materialize (or recall) one assisted person."""
        self._check(index)
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        person = self._materialize(index)
        self._cache[index] = person
        self._materialized_total += 1
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return person

    def _materialize(self, index: int) -> AssistedPerson:
        rng = _derive_rng(self.seed, "person", index)
        name = f"{rng.choice(GIVEN_NAMES)} {rng.choice(FAMILY_NAMES)}"
        guardian = None
        if rng.random() < self.guardian_rate:
            guardian = f"gu-{index:08d}"
        return AssistedPerson(
            index=index,
            person_id=self.subject_id(index),
            name=name,
            birth_year=rng.randint(1915, 2005),
            municipality=rng.choice(MUNICIPALITIES),
            guardian_id=guardian,
            case_worker_id=self.case_worker_of(index),
            clinician_id=f"cl-{rng.randrange(self.clinician_pool):05d}",
        )

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"person index {index} outside population of {self.size}"
            )

    # -- introspection (tests + docs) --------------------------------------

    @property
    def resident(self) -> int:
        """Persons currently held in memory (bounded by ``cache_size``)."""
        return len(self._cache)

    @property
    def materialized_total(self) -> int:
        """Persons materialized over this population's lifetime."""
        return self._materialized_total

    def hierarchy_summary(self) -> dict[str, int]:
        """Derived actor counts — arithmetic, nothing materialized."""
        return {
            "assisted_persons": self.size,
            "case_workers": self.case_worker_count,
            "clinicians": self.clinician_pool,
            "expected_guardians": int(self.size * self.guardian_rate),
        }
