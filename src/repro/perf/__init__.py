"""Hot-path performance layer (kernel kind ``perf``).

The paper's two-phase protocol puts the policy enforcer and the
notification bus on the critical path of *every* exchange (§5.2,
Algorithms 1–2).  This package makes those paths index- and cache-backed
without changing a single decision:

* :mod:`repro.perf.policy_index` — a per-``(producer, event type)``
  :class:`~repro.perf.policy_index.PolicyIndex` with actor/role buckets,
  so the PDP evaluates only the policies whose target can match the
  requesting actor, plus a compiled-XACML cache that stops
  ``to_xacml()`` from re-running on every request;
* :mod:`repro.perf.decision_cache` — a versioned
  :class:`~repro.perf.decision_cache.DecisionCache` keyed by an opaque
  keyed digest of ``(producer, subject, actor, role, event type,
  purpose)`` and invalidated by the monotonic policy / consent /
  endpoint epochs, so a policy edit, a consent revocation or an
  endpoint withdrawal drops the stale entries immediately;
* :mod:`repro.perf.topic_index` — a segment trie over subscription
  patterns plus a per-topic fan-out memo for the broker;
* :mod:`repro.perf.wire_cache` — canonical-JSON wire hints and sealed
  relay frames for the federation links, and the keystore's shared
  key-schedule cache.

Everything is toggled by ``RuntimeConfig.perf``: ``indexed`` (the
default) activates the layer, ``none`` is the ablation baseline with the
historical linear scans.  Deny-by-default and the privacy invariants are
preserved bit-for-bit — the benchmarks assert byte-identical decisions
and audit trails between the two modes on the same seed.

Cache keys and telemetry labels never carry plaintext identities: keys
are keyed SHA-256 digests and the only label the counters use is the
cache *name* (``perf.cache.hits{cache=decision}`` and friends).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.perf.decision_cache import CachedDecision, DecisionCache
from repro.perf.policy_index import PolicyIndex

#: Counter of perf-layer cache hits, labelled by cache name only.
CACHE_HITS = "perf.cache.hits"
#: Counter of perf-layer cache misses, labelled by cache name only.
CACHE_MISSES = "perf.cache.misses"
#: Histogram of candidate policies actually handed to the PDP per decide.
CANDIDATES_SCANNED = "pdp.candidates_scanned"

_CANDIDATE_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0)


@dataclass
class PerfStats:
    """Hit/miss accounting per cache (benchmarks read these directly)."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)

    def hit(self, cache: str) -> None:
        self.hits[cache] = self.hits.get(cache, 0) + 1

    def miss(self, cache: str) -> None:
        self.misses[cache] = self.misses.get(cache, 0) + 1


class NoopPerfLayer:
    """The ``perf: none`` baseline — every fast path stays disabled.

    The controller, enforcer, bus and federation modules only consult
    ``enabled`` (or receive ``None``), so with this layer the hot paths
    are byte-for-byte the historical linear scans.
    """

    enabled = False
    name = "none"

    def bind(self, **sources) -> None:
        """Accepts the epoch sources and ignores them."""

    def record_hit(self, cache: str) -> None:
        """No-op."""

    def record_miss(self, cache: str) -> None:
        """No-op."""


class PerfLayer:
    """The ``perf: indexed`` implementation — indexes and versioned caches.

    Constructed by the kernel right after telemetry; :meth:`bind` attaches
    the epoch sources (policy repository, consent resolver, endpoint
    registry) once the controller has built them.  All keys are keyed
    digests derived from ``secret`` — no plaintext subject or actor id is
    ever stored or exposed.
    """

    enabled = True
    name = "indexed"

    def __init__(self, secret: str = "css-perf", telemetry=None) -> None:
        self._secret = secret
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.stats = PerfStats()
        self.decisions = DecisionCache()
        self._policy_index: PolicyIndex | None = None
        self._repository = None
        self._consent_resolver = lambda producer_id: None
        self._endpoints = None

    # -- wiring ------------------------------------------------------------

    def bind(self, *, repository=None, consent_resolver=None, endpoints=None) -> None:
        """Attach the epoch sources the versioned caches validate against."""
        if repository is not None:
            self._repository = repository
            self._policy_index = PolicyIndex(repository)
        if consent_resolver is not None:
            self._consent_resolver = consent_resolver
        if endpoints is not None:
            self._endpoints = endpoints

    @property
    def policy_index(self) -> PolicyIndex | None:
        """The PDP-side policy index (None until :meth:`bind`)."""
        return self._policy_index

    # -- telemetry ---------------------------------------------------------

    def record_hit(self, cache: str) -> None:
        """Count one hit of ``cache`` (label carries the cache name only)."""
        self.stats.hit(cache)
        if self._telemetry is not None:
            self._telemetry.count(CACHE_HITS, cache=cache)

    def record_miss(self, cache: str) -> None:
        """Count one miss of ``cache``."""
        self.stats.miss(cache)
        if self._telemetry is not None:
            self._telemetry.count(CACHE_MISSES, cache=cache)

    # -- indexed PDP -------------------------------------------------------

    def decision_key(self, entry, request) -> str:
        """Opaque keyed digest identifying one decision situation.

        Covers ``(producer, subject, actor, role, event type, purpose)``;
        the digest is all that is ever stored — the plaintext parts never
        leave this method.
        """
        parts = (
            entry.producer_id,
            entry.subject_ref,
            request.actor.actor_id,
            request.actor.role,
            request.event_type,
            request.purpose,
        )
        body = "\x1f".join((self._secret, *parts))
        return hashlib.sha256(body.encode()).hexdigest()[:32]

    def _versions(self, producer_id: str) -> tuple[int, int, int]:
        policy_epoch = self._repository.epoch if self._repository is not None else 0
        consent = self._consent_resolver(producer_id)
        consent_version = consent.version if consent is not None else -1
        endpoint_epoch = self._endpoints.epoch if self._endpoints is not None else 0
        return (policy_epoch, consent_version, endpoint_epoch)

    def cached_decision(self, entry, request) -> CachedDecision | None:
        """The cached decision for this situation, if still valid.

        Time-bounded policy classes are never cached (the decision depends
        on the clock), so a hit is always safe to replay verbatim.
        """
        key = self.decision_key(entry, request)
        cached = self.decisions.lookup(key, self._versions(entry.producer_id))
        if cached is None:
            self.record_miss("decision")
            return None
        self.record_hit("decision")
        return cached

    def store_decision(
        self,
        entry,
        request,
        *,
        permitted: bool,
        released_fields: frozenset[str] = frozenset(),
        message: str = "",
    ) -> None:
        """Cache a freshly computed decision (skipped for time-bounded sets)."""
        if self._policy_index is None:
            return
        if self._policy_index.is_time_bounded(entry.producer_id, entry.event_type):
            return
        key = self.decision_key(entry, request)
        self.decisions.store(
            key,
            self._versions(entry.producer_id),
            CachedDecision(
                permitted=permitted,
                released_fields=released_fields,
                message=message,
            ),
        )

    def policy_set_for(self, entry, request):
        """The indexed candidate policy set for one decision.

        Falls back to the repository's full compilation when the index is
        not bound yet.  Observes ``pdp.candidates_scanned`` so operators
        can watch the index trim the PDP's work.
        """
        if self._policy_index is None:
            return self._repository.to_policy_set(entry.producer_id, entry.event_type)
        policy_set, scanned = self._policy_index.candidate_set(
            entry.producer_id,
            entry.event_type,
            request.actor.actor_id,
            request.actor.role,
        )
        if self._telemetry is not None:
            self._telemetry.observe(
                CANDIDATES_SCANNED, float(scanned), buckets=_CANDIDATE_BUCKETS
            )
        return policy_set


def perf_or_none(perf) -> "PerfLayer | None":
    """Normalise a perf collaborator: an enabled layer, or ``None``.

    Modules take ``perf=None`` and call this once, so the per-request
    checks are a plain ``is not None`` — the disabled path composes no
    wrappers, mirroring the telemetry facade's discipline.
    """
    return perf if perf is not None and perf.enabled else None
