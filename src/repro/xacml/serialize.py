"""XACML XML serialization and parsing.

Round-trips :class:`~repro.xacml.model.Policy` objects to an XML form
shaped like the paper's Fig. 8: a ``Policy`` element with a ``Target``
(subject / resource / action matches), ``Rule`` elements, and
``Obligations`` whose ``AttributeAssignment`` children carry the releasable
field names.  The serializer is the output stage of the elicitation tool —
"it automatically generates and stores in a policy repository the privacy
policy in XACML format" (paper §6).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.exceptions import PolicyError
from repro.xacml.model import (
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    Rule,
    Target,
)

_NS = "urn:oasis:names:tc:xacml:2.0:policy"


def serialize_policy(policy: Policy) -> str:
    """Render ``policy`` as an XACML-style XML string."""
    root = ET.Element("Policy")
    root.set("xmlns", _NS)
    root.set("PolicyId", policy.policy_id)
    root.set("RuleCombiningAlgId", policy.combining.value)
    if policy.description:
        ET.SubElement(root, "Description").text = policy.description
    root.append(_target_element(policy.target))
    for rule in policy.rules:
        root.append(_rule_element(rule))
    if policy.obligations:
        obligations = ET.SubElement(root, "Obligations")
        for obligation in policy.obligations:
            obligations.append(_obligation_element(obligation))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _target_element(target: Target) -> ET.Element:
    element = ET.Element("Target")
    if target.all_of:
        all_of = ET.SubElement(element, "AllOf")
        for match in target.all_of:
            all_of.append(_match_element(match))
    for alternative in target.any_of:
        any_of = ET.SubElement(element, "AnyOf")
        all_of = ET.SubElement(any_of, "AllOf")
        for match in alternative:
            all_of.append(_match_element(match))
    return element


def _match_element(match: Match) -> ET.Element:
    element = ET.Element("Match")
    element.set("MatchId", match.function_id)
    value = ET.SubElement(element, "AttributeValue")
    value.text = match.literal
    designator = ET.SubElement(element, "AttributeDesignator")
    designator.set("AttributeId", match.attribute)
    return element


def _rule_element(rule: Rule) -> ET.Element:
    element = ET.Element("Rule")
    element.set("RuleId", rule.rule_id)
    element.set("Effect", rule.effect.value)
    if rule.description:
        ET.SubElement(element, "Description").text = rule.description
    element.append(_target_element(rule.target))
    return element


def _obligation_element(obligation: Obligation) -> ET.Element:
    element = ET.Element("Obligation")
    element.set("ObligationId", obligation.obligation_id)
    element.set("FulfillOn", obligation.fulfill_on.value)
    for name, value in obligation.assignments:
        assignment = ET.SubElement(element, "AttributeAssignment")
        assignment.set("AttributeId", name)
        assignment.text = value
    return element


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_policy(text: str) -> Policy:
    """Parse an XML string produced by :func:`serialize_policy`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyError(f"malformed policy XML: {exc}") from exc
    tag = _local(root.tag)
    if tag != "Policy":
        raise PolicyError(f"expected <Policy> root, got <{tag}>")
    policy_id = root.get("PolicyId", "")
    combining = CombiningAlgorithm(root.get("RuleCombiningAlgId", "deny-overrides"))
    description = _child_text(root, "Description")
    target = _parse_target(_require_child(root, "Target"))
    rules = tuple(_parse_rule(el) for el in root if _local(el.tag) == "Rule")
    obligations_el = _find_child(root, "Obligations")
    obligations: tuple[Obligation, ...] = ()
    if obligations_el is not None:
        obligations = tuple(
            _parse_obligation(el) for el in obligations_el if _local(el.tag) == "Obligation"
        )
    return Policy(
        policy_id=policy_id,
        target=target,
        rules=rules,
        combining=combining,
        obligations=obligations,
        description=description,
    )


def _local(tag: str) -> str:
    return tag.split("}", 1)[-1]


def _find_child(parent: ET.Element, name: str) -> ET.Element | None:
    for child in parent:
        if _local(child.tag) == name:
            return child
    return None


def _require_child(parent: ET.Element, name: str) -> ET.Element:
    child = _find_child(parent, name)
    if child is None:
        raise PolicyError(f"<{_local(parent.tag)}> is missing a <{name}> child")
    return child


def _child_text(parent: ET.Element, name: str) -> str:
    child = _find_child(parent, name)
    return (child.text or "") if child is not None else ""


def _parse_target(element: ET.Element) -> Target:
    all_of: tuple[Match, ...] = ()
    any_of: list[tuple[Match, ...]] = []
    for child in element:
        tag = _local(child.tag)
        if tag == "AllOf":
            all_of = tuple(_parse_match(m) for m in child if _local(m.tag) == "Match")
        elif tag == "AnyOf":
            inner = _require_child(child, "AllOf")
            any_of.append(tuple(_parse_match(m) for m in inner if _local(m.tag) == "Match"))
    return Target(all_of=all_of, any_of=tuple(any_of))


def _parse_match(element: ET.Element) -> Match:
    function_id = element.get("MatchId", "")
    value_el = _require_child(element, "AttributeValue")
    designator = _require_child(element, "AttributeDesignator")
    return Match(
        attribute=designator.get("AttributeId", ""),
        function_id=function_id,
        literal=value_el.text or "",
    )


def _parse_rule(element: ET.Element) -> Rule:
    return Rule(
        rule_id=element.get("RuleId", ""),
        effect=Effect(element.get("Effect", "Deny")),
        target=_parse_target(_require_child(element, "Target")),
        description=_child_text(element, "Description"),
    )


def _parse_obligation(element: ET.Element) -> Obligation:
    assignments = tuple(
        (el.get("AttributeId", ""), el.text or "")
        for el in element
        if _local(el.tag) == "AttributeAssignment"
    )
    return Obligation(
        obligation_id=element.get("ObligationId", ""),
        fulfill_on=Effect(element.get("FulfillOn", "Permit")),
        assignments=assignments,
    )
