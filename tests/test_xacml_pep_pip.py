"""Unit tests for the PEP skeleton and the PIP."""

import pytest

from repro.exceptions import ObligationError, PolicyError
from repro.xacml.context import Decision, RequestContext
from repro.xacml.model import (
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    PolicySet,
    Rule,
    Target,
)
from repro.xacml.pep import PolicyEnforcementPoint
from repro.xacml.pip import PolicyInformationPoint


def permit_policy(with_obligation: str | None = None) -> Policy:
    obligations = ()
    if with_obligation:
        obligations = (Obligation(with_obligation, Effect.PERMIT),)
    return Policy(
        "p",
        Target(all_of=(Match("subject:role", "string-equal", "doctor"),)),
        (Rule(rule_id="r", effect=Effect.PERMIT),),
        obligations=obligations,
    )


def policy_set(policy: Policy) -> PolicySet:
    return PolicySet("ps", (policy,), combining=CombiningAlgorithm.PERMIT_OVERRIDES)


class TestPip:
    def test_enrich_adds_resolved_attribute(self):
        pip = PolicyInformationPoint()
        pip.register("resource:producer-id", lambda req: ("Hospital",))
        enriched = pip.enrich(RequestContext({}), ["resource:producer-id"])
        assert enriched.bag("resource:producer-id") == ("Hospital",)

    def test_existing_attributes_win(self):
        pip = PolicyInformationPoint()
        pip.register("a", lambda req: ("resolved",))
        request = RequestContext({"a": ("supplied",)})
        assert pip.enrich(request, ["a"]).bag("a") == ("supplied",)

    def test_unresolvable_attributes_are_skipped(self):
        pip = PolicyInformationPoint()
        enriched = pip.enrich(RequestContext({}), ["nothing:registered"])
        assert enriched.bag("nothing:registered") == ()

    def test_resolver_returning_empty_adds_nothing(self):
        pip = PolicyInformationPoint()
        pip.register("a", lambda req: ())
        assert pip.enrich(RequestContext({}), ["a"]).bag("a") == ()

    def test_duplicate_resolver_rejected(self):
        pip = PolicyInformationPoint()
        pip.register("a", lambda req: ())
        with pytest.raises(PolicyError):
            pip.register("a", lambda req: ())

    def test_resolver_sees_earlier_enrichment(self):
        pip = PolicyInformationPoint()
        pip.register("first", lambda req: ("1",))
        pip.register("second", lambda req: (req.single("first") or "") and ("2",))
        enriched = pip.enrich(RequestContext({}), ["first", "second"])
        assert enriched.bag("second") == ("2",)

    def test_can_resolve(self):
        pip = PolicyInformationPoint()
        pip.register("a", lambda req: ())
        assert pip.can_resolve("a")
        assert not pip.can_resolve("b")


class TestPep:
    def test_permit_flows_through(self):
        pep = PolicyEnforcementPoint()
        response = pep.authorize(
            policy_set(permit_policy()), RequestContext.build(subject__role="doctor")
        )
        assert response.decision is Decision.PERMIT

    def test_not_applicable_maps_to_deny(self):
        pep = PolicyEnforcementPoint()
        response = pep.authorize(
            policy_set(permit_policy()), RequestContext.build(subject__role="nurse")
        )
        assert response.decision is Decision.DENY
        assert "Deny" in response.status_message or "deny" in response.status_message.lower()

    def test_missing_obligation_handler_downgrades_to_deny(self):
        pep = PolicyEnforcementPoint()
        response = pep.authorize(
            policy_set(permit_policy(with_obligation="css:audit-access")),
            RequestContext.build(subject__role="doctor"),
        )
        assert response.decision is Decision.DENY
        assert "no handler" in response.status_message

    def test_obligation_handler_runs_on_permit(self):
        pep = PolicyEnforcementPoint()
        fired = []
        pep.on_obligation("css:audit-access", lambda req, ob: fired.append(ob.obligation_id))
        response = pep.authorize(
            policy_set(permit_policy(with_obligation="css:audit-access")),
            RequestContext.build(subject__role="doctor"),
        )
        assert response.decision is Decision.PERMIT
        assert fired == ["css:audit-access"]

    def test_failing_obligation_downgrades_to_deny(self):
        pep = PolicyEnforcementPoint()

        def failing(request, outcome):
            raise ObligationError("cannot discharge")

        pep.on_obligation("css:audit-access", failing)
        response = pep.authorize(
            policy_set(permit_policy(with_obligation="css:audit-access")),
            RequestContext.build(subject__role="doctor"),
        )
        assert response.decision is Decision.DENY

    def test_pip_enrichment_feeds_pdp(self):
        pip = PolicyInformationPoint()
        pip.register("subject:role", lambda req: ("doctor",))
        pep = PolicyEnforcementPoint(pip=pip, enrich_attributes=["subject:role"])
        response = pep.authorize(policy_set(permit_policy()), RequestContext({}))
        assert response.decision is Decision.PERMIT


class TestRequestContext:
    def test_build_translates_names(self):
        ctx = RequestContext.build(subject__actor_id="a", action__purpose="p")
        assert ctx.bag("subject:actor-id") == ("a",)
        assert ctx.bag("action:purpose") == ("p",)

    def test_build_accepts_sequences(self):
        ctx = RequestContext.build(subject__role=["a", "b"])
        assert ctx.bag("subject:role") == ("a", "b")

    def test_single_returns_none_for_multivalued(self):
        ctx = RequestContext.build(subject__role=("a", "b"))
        assert ctx.single("subject:role") is None
        assert ctx.single("missing") is None

    def test_with_attribute_is_immutable_copy(self):
        ctx = RequestContext({})
        extended = ctx.with_attribute("a", "1")
        assert ctx.bag("a") == ()
        assert extended.bag("a") == ("1",)

    def test_bad_values_rejected(self):
        with pytest.raises(PolicyError):
            RequestContext({"a": ["not-a-tuple"]})  # type: ignore[dict-item]
        with pytest.raises(PolicyError):
            RequestContext({"": ("v",)})
