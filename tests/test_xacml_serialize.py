"""Unit and property tests for XACML XML serialization (Fig. 8 shape)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PolicyError
from repro.xacml.model import (
    OBLIGATION_RELEASE_FIELDS,
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    Rule,
    Target,
)
from repro.xacml.serialize import parse_policy, serialize_policy


def fig8_policy() -> Policy:
    """A policy shaped like the paper's Fig. 8 example."""
    target = Target(
        all_of=(
            Match("subject:role", "string-equal", "family-doctor"),
            Match("resource:event-type", "string-equal", "HomeCareServiceEvent"),
        ),
        any_of=((Match("action:purpose", "string-equal", "healthcare-treatment"),),),
    )
    release = Obligation(
        OBLIGATION_RELEASE_FIELDS, Effect.PERMIT,
        assignments=(("field", "PatientId"), ("field", "Name"), ("field", "Surname")),
    )
    return Policy(
        policy_id="fig8-example",
        target=target,
        rules=(Rule(rule_id="permit-family-doctor", effect=Effect.PERMIT,
                    description="Fig. 8 of the paper"),),
        combining=CombiningAlgorithm.DENY_OVERRIDES,
        obligations=(release,),
        description="family doctor access to home care events",
    )


class TestSerialize:
    def test_document_contains_fig8_elements(self):
        text = serialize_policy(fig8_policy())
        for fragment in (
            "<Policy", 'PolicyId="fig8-example"', "family-doctor",
            "HomeCareServiceEvent", "healthcare-treatment",
            "PatientId", "Name", "Surname", "<Obligation", "<Rule",
        ):
            assert fragment in text

    def test_document_is_namespaced(self):
        assert "urn:oasis:names:tc:xacml:2.0:policy" in serialize_policy(fig8_policy())

    def test_round_trip_is_lossless(self):
        policy = fig8_policy()
        assert parse_policy(serialize_policy(policy)) == policy

    def test_round_trip_without_obligations(self):
        policy = Policy("p", Target(), (Rule(rule_id="r", effect=Effect.DENY),))
        assert parse_policy(serialize_policy(policy)) == policy

    def test_round_trip_preserves_combining_algorithm(self):
        policy = Policy("p", Target(), (Rule(rule_id="r", effect=Effect.PERMIT),),
                        combining=CombiningAlgorithm.FIRST_APPLICABLE)
        assert parse_policy(serialize_policy(policy)).combining is CombiningAlgorithm.FIRST_APPLICABLE

    def test_parse_rejects_malformed_xml(self):
        with pytest.raises(PolicyError):
            parse_policy("<Policy")

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(PolicyError):
            parse_policy("<NotAPolicy/>")

    def test_parse_rejects_missing_target(self):
        with pytest.raises(PolicyError):
            parse_policy('<Policy PolicyId="p"><Rule RuleId="r" Effect="Permit"><Target/></Rule></Policy>')

    @given(
        n_matches=st.integers(min_value=0, max_value=4),
        n_purposes=st.integers(min_value=1, max_value=4),
        n_fields=st.integers(min_value=1, max_value=6),
        description=st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
        ).map(lambda s: s.strip()),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, n_matches, n_purposes, n_fields, description):
        all_of = tuple(
            Match(f"subject:attr-{i}", "string-equal", f"value-{i}") for i in range(n_matches)
        )
        any_of = tuple(
            (Match("action:purpose", "string-equal", f"purpose-{i}"),)
            for i in range(n_purposes)
        )
        release = Obligation(
            OBLIGATION_RELEASE_FIELDS, Effect.PERMIT,
            assignments=tuple(("field", f"f{i}") for i in range(n_fields)),
        )
        policy = Policy(
            policy_id="prop-policy",
            target=Target(all_of=all_of, any_of=any_of),
            rules=(Rule(rule_id="r", effect=Effect.PERMIT),),
            obligations=(release,),
            description=description,
        )
        assert parse_policy(serialize_policy(policy)) == policy
