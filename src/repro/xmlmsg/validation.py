"""Validation of documents against message schemas.

``validate_document`` is the gatekeeper the local cooperation gateway and
the data controller run before accepting a message: the document must name
the right schema, carry no undeclared fields, carry every required field,
and every non-empty value must satisfy its declared type.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import MessageSchema, Occurs


def validate_document(
    document: XmlDocument,
    schema: MessageSchema,
    allow_blanked_required: bool = False,
) -> None:
    """Validate ``document`` against ``schema``; raise ``ValidationError`` on failure.

    ``allow_blanked_required`` relaxes the required-field check for
    *privacy-aware* events: after enforcement a required field may have been
    blanked to ``None`` by the producer's obligation (Algorithm 2), which is
    legal on the response path but not on the publish path.
    """
    errors = collect_violations(document, schema, allow_blanked_required)
    if errors:
        raise ValidationError("; ".join(errors))


def collect_violations(
    document: XmlDocument,
    schema: MessageSchema,
    allow_blanked_required: bool = False,
) -> list[str]:
    """Return a list of human-readable violations (empty = valid)."""
    errors: list[str] = []
    if document.schema_name != schema.name:
        errors.append(
            f"document claims schema {document.schema_name!r} but validating against {schema.name!r}"
        )

    declared = set(schema.field_names)
    for name in document:
        if name not in declared:
            errors.append(f"undeclared field {name!r}")

    for decl in schema.elements:
        present = decl.name in document
        value = document[decl.name] if present else None
        if decl.occurs is Occurs.REQUIRED:
            if not present:
                errors.append(f"missing required field {decl.name!r}")
                continue
            if value is None and not allow_blanked_required:
                errors.append(f"required field {decl.name!r} is empty")
                continue
        if not present or value is None:
            continue
        if decl.occurs.allows_many:
            items = value if isinstance(value, (list, tuple)) else [value]
        else:
            if isinstance(value, (list, tuple)):
                errors.append(f"field {decl.name!r} does not allow multiple occurrences")
                continue
            items = [value]
        for item in items:
            try:
                decl.type_.check(item)
            except ValidationError as exc:
                errors.append(f"field {decl.name!r}: {exc}")
    return errors


def is_valid(document: XmlDocument, schema: MessageSchema) -> bool:
    """True iff ``document`` validates against ``schema`` (publish-path rules)."""
    return not collect_violations(document, schema)
