"""Unit and integration tests for the PHR extension (§7 future work)."""

import pytest

from repro import ConsentScope, DataConsumer, DataController, DataProducer
from repro.clock import DAY
from repro.exceptions import AccessDeniedError, ConfigurationError
from repro.phr import PersonalHealthRecord
from repro.sim.generators import standard_event_templates


@pytest.fixture()
def phr_world():
    controller = DataController(seed="phr")
    templates = standard_event_templates()
    hospital = DataProducer(controller, "Hospital", "Hospital")
    telecare = DataProducer(controller, "TelecareSpA", "Telecare")
    blood = hospital.declare_event_class(templates["BloodTest"].build_schema())
    alarm = telecare.declare_event_class(
        templates["TelecareAlarm"].build_schema(), category="social")
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Name", "Surname", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    telecare.define_policy(
        "TelecareAlarm", fields=["PatientId", "AlarmType"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")
    doctor.subscribe("TelecareAlarm")

    def publish_blood(subject="pat-1", name=("Mario", "Bianchi")):
        return hospital.publish(
            blood, subject_id=subject, subject_name=" ".join(name),
            summary=f"blood test completed for {' '.join(name)}",
            details={"PatientId": subject, "Name": name[0], "Surname": name[1],
                     "Hemoglobin": 14.0, "Glucose": 90.0, "Cholesterol": 180.0,
                     "HivResult": "negative"})

    def publish_alarm(subject="pat-1", name=("Mario", "Bianchi")):
        return telecare.publish(
            alarm, subject_id=subject, subject_name=" ".join(name),
            summary=f"telecare alarm raised for {' '.join(name)}",
            details={"PatientId": subject, "Name": name[0], "Surname": name[1],
                     "AlarmType": "fall", "Severity": 3, "ResponseMinutes": 10,
                     "HealthContext": "none recorded"})

    phr = PersonalHealthRecord(controller, "pat-1", producers=[hospital, telecare])
    return controller, hospital, telecare, doctor, phr, publish_blood, publish_alarm


class TestTimeline:
    def test_timeline_collects_own_events_across_producers(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        blood()
        controller.clock.advance(DAY)
        alarm()
        entries = phr.timeline()
        assert [e.event_type for e in entries] == ["BloodTest", "TelecareAlarm"]
        assert entries[0].producer_id == "Hospital"
        assert entries[1].producer_id == "TelecareSpA"

    def test_timeline_excludes_other_subjects(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        blood()
        blood(subject="pat-2", name=("Luisa", "Verdi"))
        assert len(phr.timeline()) == 1

    def test_timeline_time_window(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        blood()
        controller.clock.advance(10 * DAY)
        alarm()
        assert len(phr.timeline(since=5 * DAY)) == 1
        assert len(phr.timeline(until=5 * DAY)) == 1

    def test_render_timeline(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        blood()
        text = phr.render_timeline()
        assert "pat-1" in text
        assert "BloodTest" in text

    def test_render_empty_timeline(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        assert "(no events)" in phr.render_timeline()

    def test_needs_subject_id(self, phr_world):
        controller = phr_world[0]
        with pytest.raises(ConfigurationError):
            PersonalHealthRecord(controller, "")


class TestConsentFromPhr:
    def test_opt_out_blocks_future_publications(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        phr.opt_out("Hospital", ConsentScope.NOTIFICATIONS, "BloodTest")
        assert blood() is None
        assert alarm() is not None  # other producer unaffected

    def test_detail_opt_out_from_phr(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        phr.opt_out("Hospital", ConsentScope.DETAILS, "BloodTest")
        notification = blood()
        with pytest.raises(AccessDeniedError):
            doctor.request_details(notification, "healthcare-treatment")

    def test_consent_status(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        assert phr.consent_status("Hospital", "BloodTest") == {
            "notifications": True, "details": True}
        phr.opt_out("Hospital", ConsentScope.DETAILS, "BloodTest")
        assert phr.consent_status("Hospital", "BloodTest") == {
            "notifications": True, "details": False}

    def test_opt_back_in(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        phr.opt_out("Hospital", ConsentScope.DETAILS, "BloodTest")
        phr.opt_in("Hospital", ConsentScope.DETAILS, "BloodTest")
        notification = blood()
        assert doctor.request_details(notification, "healthcare-treatment")

    def test_unregistered_producer_rejected(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        with pytest.raises(ConfigurationError, match="not registered"):
            phr.opt_out("Unknown", ConsentScope.DETAILS)

    def test_register_producer_later(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        fresh = PersonalHealthRecord(controller, "pat-1")
        fresh.register_producer(hospital)
        fresh.opt_out("Hospital", ConsentScope.DETAILS, "BloodTest")
        assert not hospital.consent.allows_details("pat-1", "BloodTest")


class TestAccessTransparency:
    def test_access_report_shows_who_and_why(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        notification = blood()
        doctor.request_details(notification, "healthcare-treatment")
        report = phr.access_report()
        assert report.by_actor["Dr-Rossi"] >= 1
        assert report.by_purpose["healthcare-treatment"] == 1
        assert report.chain_verified

    def test_accesses_by_actor(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        notification = blood()
        doctor.request_details(notification, "healthcare-treatment")
        assert phr.accesses_by("Dr-Rossi") >= 1
        assert phr.accesses_by("Nobody") == 0

    def test_report_includes_denials(self, phr_world):
        controller, hospital, telecare, doctor, phr, blood, alarm = phr_world
        notification = blood()
        with pytest.raises(AccessDeniedError):
            doctor.request_details(notification, "administration")
        report = phr.access_report()
        assert report.by_outcome["deny"] >= 1
