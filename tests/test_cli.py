"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestScenarioCommand:
    def test_runs_and_prints_report(self):
        code, output = run_cli("scenario", "--events", "30", "--patients", "10",
                               "--seed", "3")
        assert code == 0
        assert "CSS SCENARIO REPORT" in output
        assert "events published:        30" in output

    def test_archive_option(self, tmp_path):
        snap = tmp_path / "snap"
        code, output = run_cli("scenario", "--events", "20", "--archive", str(snap))
        assert code == 0
        assert (snap / "manifest.json").exists()
        assert "archived" in output


class TestCompareCommand:
    def test_prints_five_rows(self):
        code, output = run_cli("compare", "--events", "30")
        assert code == 0
        assert "CSS (two-phase)" in output
        assert "manual (Fig. 1)" in output
        assert "point-to-point SOA" in output
        assert "central warehouse" in output
        assert "full-push pub/sub" in output


class TestMonitorCommand:
    def test_prints_aggregates(self):
        code, output = run_cli("monitor", "--events", "40", "--threshold", "1")
        assert code == 0
        assert "SERVICE VOLUME" in output
        assert "distinct citizens served:" in output

    def test_suppression_threshold_respected(self):
        code, output = run_cli("monitor", "--events", "30",
                               "--threshold", "1000000")
        assert code == 0
        assert "<1000000" in output


class TestInspectCommand:
    def test_round_trip_through_archive(self, tmp_path):
        snap = tmp_path / "snap"
        run_cli("scenario", "--events", "25", "--archive", str(snap))
        code, output = run_cli("inspect", str(snap))
        assert code == 0
        assert "chain verified" in output
        assert "Guarantor access report" in output

    def test_missing_archive_fails(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_cli("inspect", str(tmp_path / "nothing"))


class TestFederateCommand:
    def test_runs_a_sharded_deployment(self):
        code, output = run_cli("federate", "--nodes", "2", "--events", "60",
                               "--patients", "12", "--seed", "5")
        assert code == 0
        assert "FEDERATED CSS SCENARIO REPORT" in output
        assert "nodes:                   2" in output
        assert "federated audit:" in output
        assert "2 verified chains" in output

    def test_rebalance_option_reports_the_new_node(self):
        code, output = run_cli("federate", "--nodes", "2", "--events", "40",
                               "--patients", "10", "--rebalance")
        assert code == 0
        assert "rebalance: added node-2" in output

    def test_telemetry_federated_scenario(self):
        code, output = run_cli("telemetry", "--scenario", "federated",
                               "--nodes", "2", "--events", "40",
                               "--patients", "10")
        assert code == 0
        assert "federation.hops_total" in output


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            run_cli()
