"""Durable subscriptions.

A subscription names a subscriber, a topic pattern, and a callback.  It is
*durable*: messages published while the subscriber's callback is failing (or
while dispatch is paused) wait in the subscription's queue.  The data
controller creates subscriptions only after verifying the privacy policy
authorizes the consumer for the event class — that gating lives in
:mod:`repro.core.controller`; the bus only transports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.bus.envelope import Envelope
from repro.bus.queue import MessageQueue
from repro.bus.topics import validate_pattern
from repro.exceptions import SubscriptionError

if TYPE_CHECKING:
    from repro.bus.delivery import DeliveryPolicy

#: Signature of subscriber callbacks. Raising marks the delivery failed.
Handler = Callable[[Envelope], None]


@dataclass
class Subscription:
    """A durable subscription and its queue.

    ``policy`` is an optional per-subscription retry budget: when set it
    overrides the delivery engine's default
    :class:`~repro.bus.delivery.DeliveryPolicy` for this subscription only
    (a flaky analytics sink can fail fast while clinical consumers keep
    the full budget).
    """

    subscription_id: str
    subscriber: str
    pattern: str
    handler: Handler
    active: bool = True
    policy: DeliveryPolicy | None = None
    queue: MessageQueue = field(init=False)

    def __post_init__(self) -> None:
        if not self.subscription_id:
            raise SubscriptionError("subscription needs an id")
        if not self.subscriber:
            raise SubscriptionError("subscription needs a subscriber")
        validate_pattern(self.pattern)
        self.queue = MessageQueue(f"sub:{self.subscription_id}")

    def pause(self) -> None:
        """Stop dispatching; messages keep queueing."""
        self.active = False

    def resume(self) -> None:
        """Resume dispatching."""
        self.active = True


class SubscriptionRegistry:
    """All subscriptions known to the broker, indexed for fan-out.

    With ``indexed`` (enabled by the ``perf: indexed`` kernel layer) the
    registry additionally maintains a segment trie over the subscription
    patterns plus a per-topic fan-out memo, so :meth:`matching_topic` is
    independent of the total subscription count.  Both paths return
    subscriptions in registration order — the property tests assert the
    two agree on arbitrary pattern/topic sets.
    """

    def __init__(self, indexed: bool = False, perf=None) -> None:
        self._subscriptions: dict[str, Subscription] = {}
        self._indexed = indexed
        self._perf = perf if perf is not None and perf.enabled else None
        self._order = 0
        self._order_of: dict[str, int] = {}
        self._trie = None
        if indexed:
            from repro.perf.topic_index import TopicTrie

            self._trie = TopicTrie()
        self._fanout_memo: dict[str, list[Subscription]] = {}

    @property
    def indexed(self) -> bool:
        """Whether the trie/memo fast path is active."""
        return self._indexed

    def __len__(self) -> int:
        return len(self._subscriptions)

    def add(self, subscription: Subscription) -> None:
        """Register a subscription; duplicate ids are rejected."""
        if subscription.subscription_id in self._subscriptions:
            raise SubscriptionError(
                f"duplicate subscription id {subscription.subscription_id!r}"
            )
        self._subscriptions[subscription.subscription_id] = subscription
        self._order_of[subscription.subscription_id] = self._order
        if self._trie is not None:
            self._trie.add(subscription.pattern, self._order, subscription)
            self._fanout_memo.clear()
        self._order += 1

    def remove(self, subscription_id: str) -> Subscription:
        """Unregister and return a subscription."""
        try:
            subscription = self._subscriptions.pop(subscription_id)
        except KeyError as exc:
            raise SubscriptionError(f"no subscription {subscription_id!r}") from exc
        self._order_of.pop(subscription_id, None)
        if self._trie is not None:
            self._trie.remove(subscription.pattern, subscription)
            self._fanout_memo.clear()
        return subscription

    def get(self, subscription_id: str) -> Subscription:
        """Fetch a subscription by id."""
        try:
            return self._subscriptions[subscription_id]
        except KeyError as exc:
            raise SubscriptionError(f"no subscription {subscription_id!r}") from exc

    def for_subscriber(self, subscriber: str) -> list[Subscription]:
        """Every subscription held by ``subscriber``."""
        return [sub for sub in self._subscriptions.values() if sub.subscriber == subscriber]

    def matching_topic(self, topic: str) -> list[Subscription]:
        """Every subscription whose pattern matches ``topic``.

        Registration order on both paths; the indexed path memoizes the
        fan-out list per topic until the next subscribe/withdraw.
        """
        if self._trie is None:
            return self.matching_topic_linear(topic)
        memoized = self._fanout_memo.get(topic)
        if memoized is not None:
            if self._perf is not None:
                self._perf.record_hit("fanout")
            return list(memoized)
        if self._perf is not None:
            self._perf.record_miss("fanout")
        matching = self._trie.match(topic)
        self._fanout_memo[topic] = matching
        return list(matching)

    def matching_topic_linear(self, topic: str) -> list[Subscription]:
        """The reference linear scan (the ``perf: none`` fan-out path).

        Kept callable on indexed registries too so the equivalence tests
        can compare both implementations on the same live registry.
        """
        from repro.bus.topics import topic_matches

        return [
            sub
            for sub in self._subscriptions.values()
            if topic_matches(sub.pattern, topic)
        ]

    def all_subscriptions(self) -> list[Subscription]:
        """Every registered subscription."""
        return list(self._subscriptions.values())
