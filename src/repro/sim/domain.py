"""Domain objects of the synthetic Trentino deployment.

The cast mirrors §2 and §4 of the paper: hospitals and laboratories,
municipal social services, telecare and home-assistance companies, family
doctors, and the governing bodies (province / social welfare department)
that consume data for accountability, reimbursement and monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actors import ActorKind


@dataclass(frozen=True)
class Patient:
    """A citizen receiving socio-health services."""

    patient_id: str
    name: str
    birth_year: int
    municipality: str

    def age_at(self, year: int = 2010) -> int:
        """Age in ``year`` (the deployment's reference year)."""
        return year - self.birth_year


@dataclass(frozen=True)
class OrganizationSpec:
    """Blueprint of one participating organization."""

    actor_id: str
    name: str
    kind: ActorKind
    role: str
    category: str          # which event category it produces/consumes
    needed_fields_hint: str = ""


# Functional roles used across the simulation (paper §5.1, Fig. 8).
ROLE_FAMILY_DOCTOR = "family-doctor"
ROLE_SOCIAL_WORKER = "social-worker"
ROLE_STATISTICIAN = "statistician"
ROLE_ADMINISTRATOR = "administrator"
ROLE_CARE_PROVIDER = "care-provider"


#: The standing cast of the scenario (§2's actors).
ORGANIZATIONS: tuple[OrganizationSpec, ...] = (
    OrganizationSpec(
        "Hospital-S-Maria", "Hospital S. Maria", ActorKind.PRODUCER,
        ROLE_CARE_PROVIDER, "health",
    ),
    OrganizationSpec(
        "Hospital-S-Maria/Laboratory", "Laboratory, Hospital S. Maria",
        ActorKind.PRODUCER, ROLE_CARE_PROVIDER, "health",
    ),
    OrganizationSpec(
        "Municipality-Trento/SocialServices", "Social Services of Trento",
        ActorKind.BOTH, ROLE_SOCIAL_WORKER, "social",
    ),
    OrganizationSpec(
        "Municipality-Rovereto/SocialServices", "Social Services of Rovereto",
        ActorKind.BOTH, ROLE_SOCIAL_WORKER, "social",
    ),
    OrganizationSpec(
        "TelecareSpA", "Telecare S.p.A.", ActorKind.PRODUCER,
        ROLE_CARE_PROVIDER, "social",
    ),
    OrganizationSpec(
        "HomeAssist-Coop", "HomeAssist Cooperative", ActorKind.PRODUCER,
        ROLE_CARE_PROVIDER, "social",
    ),
    OrganizationSpec(
        "FamilyDoctors/Dr-Rossi", "Dr. Rossi (family doctor)",
        ActorKind.CONSUMER, ROLE_FAMILY_DOCTOR, "health",
    ),
    OrganizationSpec(
        "FamilyDoctors/Dr-Verdi", "Dr. Verdi (family doctor)",
        ActorKind.CONSUMER, ROLE_FAMILY_DOCTOR, "health",
    ),
    OrganizationSpec(
        "Province-Trentino/Statistics", "Provincial statistics office",
        ActorKind.CONSUMER, ROLE_STATISTICIAN, "governance",
    ),
    OrganizationSpec(
        "Province-Trentino/SocialWelfare", "Social Welfare Department",
        ActorKind.CONSUMER, ROLE_ADMINISTRATOR, "governance",
    ),
)

#: Municipalities patients live in.
MUNICIPALITIES = ("Trento", "Rovereto", "Pergine", "Arco", "Riva", "Levico")

#: Italian-flavoured name pools for the synthetic population.
GIVEN_NAMES = (
    "Mario", "Luisa", "Giovanni", "Anna", "Carlo", "Elena", "Franco",
    "Giulia", "Paolo", "Sofia", "Luca", "Martina", "Davide", "Chiara",
    "Andrea", "Francesca", "Marco", "Valentina", "Stefano", "Silvia",
)
FAMILY_NAMES = (
    "Bianchi", "Rossi", "Ferrari", "Esposito", "Romano", "Colombo",
    "Ricci", "Marino", "Greco", "Bruno", "Gallo", "Conti", "DeLuca",
    "Mancini", "Costa", "Giordano", "Rizzo", "Lombardi", "Moretti",
    "Barbieri",
)
