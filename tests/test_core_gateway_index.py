"""Unit tests for the local cooperation gateway (Algorithm 2) and the
events index."""

import pytest

from repro.core.events import EventClass, EventOccurrence
from repro.core.gateway import LocalCooperationGateway
from repro.core.index import EventsIndex
from repro.core.messages import NotificationMessage
from repro.crypto.keystore import KeyStore
from repro.exceptions import (
    DetailNotFoundError,
    GatewayError,
    SourceUnavailableError,
    UnknownEventError,
    ValidationError,
)
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType


def blood_class() -> EventClass:
    schema = MessageSchema("BloodTest", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Hemoglobin", IntegerType(0, 30), sensitive=True),
        ElementDecl("Notes", StringType(), occurs=Occurs.OPTIONAL),
    ])
    return EventClass(name="BloodTest", producer_id="Hospital", schema=schema)


def occurrence(src_id: str = "src-1") -> EventOccurrence:
    return EventOccurrence(
        event_class=blood_class(),
        src_event_id=src_id,
        subject_id="p1",
        subject_name="Mario",
        occurred_at=1.0,
        summary="done",
        details=XmlDocument("BloodTest", {"PatientId": "p1", "Hemoglobin": 14, "Notes": "ok"}),
    )


class TestGatewayPersistence:
    def test_persist_and_contains(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        assert "src-1" in gateway
        assert len(gateway) == 1
        assert gateway.stats.stored == 1

    def test_persist_validates_payload(self):
        gateway = LocalCooperationGateway("Hospital")
        bad = EventOccurrence(
            event_class=blood_class(), src_event_id="s", subject_id="p",
            subject_name="n", occurred_at=0.0, summary="x",
            details=XmlDocument("BloodTest", {"PatientId": "p", "Hemoglobin": 999}),
        )
        with pytest.raises(ValidationError):
            gateway.persist(bad)

    def test_double_persist_rejected(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        with pytest.raises(GatewayError):
            gateway.persist(occurrence())

    def test_missing_detail_rejected(self):
        gateway = LocalCooperationGateway("Hospital")
        with pytest.raises(DetailNotFoundError):
            gateway.get_event_details("missing")


class TestAlgorithm2:
    def test_get_response_filters_fields(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        detail = gateway.get_response("src-1", {"PatientId"}, event_id="evt-1")
        assert detail.exposed_values() == {"PatientId": "p1"}
        assert detail.released_fields == ("PatientId",)
        assert detail.is_filtered
        assert detail.event_id == "evt-1"

    def test_get_response_full_fields(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        detail = gateway.get_response(
            "src-1", {"PatientId", "Hemoglobin", "Notes"}, event_id="evt-1"
        )
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14, "Notes": "ok"}

    def test_get_response_empty_fields_rejected(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        with pytest.raises(GatewayError):
            gateway.get_response("src-1", set(), event_id="e")

    def test_unknown_fields_in_policy_are_harmless(self):
        # A policy may name fields the event instance left empty.
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        detail = gateway.get_response("src-1", {"PatientId", "Bogus"}, event_id="e")
        assert detail.exposed_values() == {"PatientId": "p1"}


class TestSourceAvailability:
    def test_persistence_survives_source_downtime(self):
        gateway = LocalCooperationGateway("Hospital")
        gateway.persist(occurrence())
        gateway.take_source_offline()
        detail = gateway.get_response("src-1", {"PatientId"}, event_id="e")
        assert detail.exposed_values() == {"PatientId": "p1"}
        assert gateway.stats.served_from_cache == 1

    def test_without_persistence_offline_source_fails(self):
        gateway = LocalCooperationGateway("Hospital", persistence_enabled=False)
        gateway.persist(occurrence())
        gateway.take_source_offline()
        with pytest.raises(SourceUnavailableError):
            gateway.get_response("src-1", {"PatientId"}, event_id="e")
        assert gateway.stats.unavailable_failures == 1

    def test_bring_source_online_restores(self):
        gateway = LocalCooperationGateway("Hospital", persistence_enabled=False)
        gateway.persist(occurrence())
        gateway.take_source_offline()
        gateway.bring_source_online()
        assert gateway.get_response("src-1", {"PatientId"}, event_id="e")


def notification(event_id: str = "evt-1", event_type: str = "BloodTest",
                 occurred_at: float = 10.0,
                 subject_ref: str = "p1") -> NotificationMessage:
    return NotificationMessage(
        event_id=event_id, event_type=event_type, producer_id="Hospital",
        occurred_at=occurred_at, summary="done", subject_ref=subject_ref,
        subject_display="Mario Bianchi",
    )


@pytest.fixture()
def index() -> EventsIndex:
    return EventsIndex(KeyStore("test-secret"))


class TestEventsIndex:
    def test_store_and_get_round_trip(self, index):
        index.store(notification())
        fetched = index.get("evt-1")
        assert fetched.subject_ref == "p1"
        assert fetched.subject_display == "Mario Bianchi"
        assert fetched.event_type == "BloodTest"
        assert "evt-1" in index and len(index) == 1

    def test_identity_is_encrypted_at_rest(self, index):
        index.store(notification())
        obj = index.registry.get("evt-1")
        assert obj.slot_value("subjectRef") != "p1"
        assert "Mario" not in (obj.slot_value("subjectDisplay") or "")

    def test_plaintext_mode_for_ablation(self):
        index = EventsIndex(KeyStore("s"), encrypt_identity=False)
        index.store(notification())
        assert index.registry.get("evt-1").slot_value("subjectRef") == "p1"
        assert index.stats.seal_operations == 0

    def test_get_unknown_rejected(self, index):
        with pytest.raises(UnknownEventError):
            index.get("nope")

    def test_inquire_by_type(self, index):
        index.store(notification("e1", "BloodTest"))
        index.store(notification("e2", "HomeCare"))
        results = index.inquire(["BloodTest"])
        assert [n.event_id for n in results] == ["e1"]

    def test_inquire_multiple_types_sorted_by_time(self, index):
        index.store(notification("e1", "BloodTest", occurred_at=30.0))
        index.store(notification("e2", "HomeCare", occurred_at=10.0))
        results = index.inquire(["BloodTest", "HomeCare"])
        assert [n.event_id for n in results] == ["e2", "e1"]

    def test_inquire_time_window(self, index):
        index.store(notification("e1", occurred_at=10.0))
        index.store(notification("e2", occurred_at=20.0))
        index.store(notification("e3", occurred_at=30.0))
        results = index.inquire(["BloodTest"], since=15.0, until=25.0)
        assert [n.event_id for n in results] == ["e2"]

    def test_inquire_by_producer(self, index):
        index.store(notification("e1"))
        assert index.inquire(["BloodTest"], producer_id="Hospital")
        assert index.inquire(["BloodTest"], producer_id="Other") == []

    def test_inquire_decrypts_identity(self, index):
        index.store(notification())
        result = index.inquire(["BloodTest"])[0]
        assert result.subject_ref == "p1"

    def test_count_for_type(self, index):
        index.store(notification("e1"))
        index.store(notification("e2"))
        assert index.count_for_type("BloodTest") == 2
        assert index.count_for_type("Other") == 0
