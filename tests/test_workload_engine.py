"""Unit tests for arrival processes, skew sampling, and the workload engine.

The acceptance-critical properties: same-seed streams are byte-identical,
Zipf popularity is rank-frequency monotone, Poisson inter-arrivals hit
their configured mean, and the anomaly scenario's injections (abusive
tenant, hot subjects) actually dominate the stream.
"""

import json
import math
import random
from collections import Counter

import pytest

from repro.exceptions import ConfigurationError
from repro.workload import (
    OP_DETAILS,
    OP_PUBLISH,
    OP_SUBSCRIBE,
    OnOffProcess,
    PoissonProcess,
    WorkloadConfig,
    WorkloadEngine,
    ZipfSampler,
    workload_config,
)
from repro.workload.arrivals import scatter


class TestPoissonProcess:
    def test_interarrival_mean_matches_rate(self):
        rng = random.Random(1234)
        times = PoissonProcess(rate=50.0).times(rng)
        arrivals = [next(times) for _ in range(5_000)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1 / 50.0, rel=0.10)

    def test_times_are_monotone(self):
        rng = random.Random(7)
        times = PoissonProcess(rate=10.0).times(rng)
        arrivals = [next(times) for _ in range(500)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=0.0)


class TestOnOffProcess:
    def test_burstier_than_poisson_at_same_mean(self):
        """On/off gaps have coefficient of variation > 1 (Poisson: ~1)."""
        rng = random.Random(99)
        times = OnOffProcess(
            burst_rate=100.0, on_seconds=5.0, off_seconds=20.0
        ).times(rng)
        arrivals = [next(times) for _ in range(5_000)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert math.sqrt(variance) / mean > 1.5

    def test_off_periods_produce_long_silences(self):
        rng = random.Random(3)
        times = OnOffProcess(
            burst_rate=100.0, on_seconds=2.0, off_seconds=30.0
        ).times(rng)
        arrivals = [next(times) for _ in range(2_000)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert max(gaps) > 5.0  # at least one OFF silence
        assert sorted(gaps)[len(gaps) // 2] < 0.05  # bursts stay dense

    def test_base_rate_trickles_during_off(self):
        silent = OnOffProcess(burst_rate=50.0, on_seconds=1.0, off_seconds=60.0)
        trickle = OnOffProcess(
            burst_rate=50.0, on_seconds=1.0, off_seconds=60.0, base_rate=5.0
        )
        stream = silent.times(random.Random(3))
        t_silent = [next(stream) for _ in range(200)]
        stream = trickle.times(random.Random(3))
        t_trickle = [next(stream) for _ in range(200)]
        assert t_trickle[-1] < t_silent[-1]  # trickle fills the silences

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffProcess(burst_rate=0, on_seconds=1, off_seconds=1)
        with pytest.raises(ConfigurationError):
            OnOffProcess(burst_rate=1, on_seconds=0, off_seconds=1)
        with pytest.raises(ConfigurationError):
            OnOffProcess(burst_rate=1, on_seconds=1, off_seconds=1,
                         base_rate=-1)


class TestZipfSampler:
    def test_rank_frequency_is_monotone(self):
        rng = random.Random(2024)
        sampler = ZipfSampler(n=50, exponent=1.2)
        counts = Counter(sampler.sample(rng) for _ in range(30_000))
        head = [counts.get(rank, 0) for rank in range(1, 6)]
        assert head == sorted(head, reverse=True)
        assert counts[1] > counts[10] > counts.get(40, 0)

    def test_head_mass_matches_theory(self):
        """Rank-1 share ≈ 1 / (harmonic normalizer) for the exponent."""
        n, exponent = 100, 1.5
        rng = random.Random(5)
        sampler = ZipfSampler(n=n, exponent=exponent)
        draws = 40_000
        counts = Counter(sampler.sample(rng) for _ in range(draws))
        normalizer = sum(k ** -exponent for k in range(1, n + 1))
        assert counts[1] / draws == pytest.approx(1 / normalizer, rel=0.08)

    def test_support_is_exactly_1_to_n(self):
        rng = random.Random(8)
        sampler = ZipfSampler(n=7, exponent=1.01)
        seen = {sampler.sample(rng) for _ in range(5_000)}
        assert seen == set(range(1, 8))

    def test_single_rank_degenerates(self):
        sampler = ZipfSampler(n=1, exponent=2.0)
        assert sampler.sample(random.Random(1)) == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(n=0, exponent=1.1)
        with pytest.raises(ConfigurationError):
            ZipfSampler(n=10, exponent=0.0)


class TestScatter:
    @pytest.mark.parametrize("size", [10, 97, 1_000, 4_096])
    def test_is_a_permutation(self, size):
        image = {scatter(rank, size) for rank in range(1, size + 1)}
        assert image == set(range(size))

    def test_spreads_hot_ranks_across_the_index_space(self):
        size = 1_000_000
        hot = [scatter(rank, size) for rank in range(1, 5)]
        assert len(set(hot)) == 4
        assert max(hot) - min(hot) > size // 10


class TestStreamDeterminism:
    def _config(self, **overrides):
        defaults = dict(population=2_000, ops=300, seed=11)
        defaults.update(overrides)
        return workload_config("steady", **defaults)

    def test_same_seed_streams_are_byte_identical(self):
        first = b"\n".join(
            line.encode() for line in WorkloadEngine(self._config()).stream_lines()
        )
        second = b"\n".join(
            line.encode() for line in WorkloadEngine(self._config()).stream_lines()
        )
        assert first == second

    def test_different_seeds_differ(self):
        first = list(WorkloadEngine(self._config(seed=1)).stream_lines())
        second = list(WorkloadEngine(self._config(seed=2)).stream_lines())
        assert first != second

    def test_stream_lines_are_canonical_json(self):
        for line in WorkloadEngine(self._config(ops=50)).stream_lines():
            record = json.loads(line)
            assert record["kind"] in (OP_PUBLISH, OP_DETAILS, OP_SUBSCRIBE)
            assert record["at"] >= 0

    def test_stream_length_and_sequencing(self):
        ops = list(WorkloadEngine(self._config()).plan())
        assert len(ops) == 300
        assert [op.sequence for op in ops] == list(range(300))
        assert all(b.at >= a.at for a, b in zip(ops, ops[1:]))

    def test_details_never_precede_a_publish_of_the_class(self):
        seen_publish: set[str] = set()
        for op in WorkloadEngine(self._config(details_weight=2.0)).plan():
            if op.kind == OP_PUBLISH:
                seen_publish.add(op.template)
            elif op.kind == OP_DETAILS:
                assert op.template in seen_publish

    def test_publish_ops_carry_materialized_payloads(self):
        for op in WorkloadEngine(self._config(ops=100)).plan():
            if op.kind != OP_PUBLISH:
                continue
            assert op.subject_id.startswith("ap-")
            assert op.subject_name
            assert op.details
            assert op.subject_index >= 0
        engine = WorkloadEngine(self._config(ops=100))
        list(engine.plan())
        assert engine.population.resident <= engine.population.cache_size

    def test_details_ops_carry_tenant_and_purpose(self):
        for op in WorkloadEngine(self._config(details_weight=2.0)).plan():
            if op.kind == OP_DETAILS:
                assert op.tenant_id
                assert op.purpose
                assert op.target_recency >= 0


class TestScenarios:
    def test_presets_cover_the_four_scenarios(self):
        assert workload_config("steady").arrival == "poisson"
        assert workload_config("stress").rate > workload_config("steady").rate
        assert workload_config("surge").arrival == "onoff"
        anomaly = workload_config("anomaly")
        assert anomaly.abusive_tenant is not None
        assert anomaly.hot_subjects > 0

    def test_unknown_scenario_suggests(self):
        with pytest.raises(ConfigurationError, match="steady"):
            workload_config("stedy")

    def test_overrides_apply_on_top_of_presets(self):
        config = workload_config("stress", population=500, seed=77)
        assert config.scenario == "stress"
        assert config.population == 500
        assert config.seed == 77
        assert config.rate == 200.0  # preset survives

    def test_abusive_tenant_dominates_detail_traffic(self):
        def detail_share(config):
            tenants = Counter(
                op.tenant_id
                for op in WorkloadEngine(config).plan()
                if op.kind == OP_DETAILS
            )
            total = sum(tenants.values())
            assert total > 50
            abusive = "Province-Trentino/SocialWelfare"
            return tenants[abusive] / total, tenants

        config = workload_config("anomaly", population=1_000, ops=600, seed=5)
        baseline = workload_config(
            "anomaly", population=1_000, ops=600, seed=5, abusive_tenant=None
        )
        injected_share, injected = detail_share(config)
        fair_share, _ = detail_share(baseline)
        assert injected_share > 2 * fair_share
        assert injected[config.abusive_tenant] == max(injected.values())

    def test_hot_subjects_concentrate_publishes(self):
        config = workload_config(
            "anomaly", population=100_000, ops=600, seed=5
        )
        engine = WorkloadEngine(config)
        hot = set(engine._hot_indexes)  # noqa: SLF001
        assert len(hot) == config.hot_subjects
        publishes = [
            op for op in engine.plan() if op.kind == OP_PUBLISH
        ]
        on_hot = sum(op.subject_index in hot for op in publishes)
        share = on_hot / len(publishes)
        # hot_subject_share=0.5 plus the Zipf head (the top ranks scatter
        # onto the same indexes), so well above half but never all
        assert 0.45 < share < 0.9

    @pytest.mark.parametrize(
        "overrides",
        [
            {"population": 0},
            {"ops": -1},
            {"arrival": "uniform"},
            {"publish_weight": 0.0},
            {"details_weight": -0.1},
            {"tenants": ()},
            {"abusive_tenant": "x", "abusive_factor": 0.5},
            {"hot_subjects": -1},
            {"hot_subject_share": 1.5},
        ],
    )
    def test_bad_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**overrides)
