"""Client-side forwarding of cross-node operations.

The :class:`FederationRouter` is the consumer-side half of the federation
protocol: it asks a producer's home node to authorize a subscription (and
install a relay back to this node), and it forwards requests-for-details
to the home node for decision.  It never decides anything itself — the
router's job is transport plus translating the home node's structured
error responses back into the platform's native exceptions, so a consumer
cannot tell (except for latency) whether the producer was local or remote.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.enforcement import DetailRequest
from repro.core.messages import DetailMessage
from repro.exceptions import (
    AccessDeniedError,
    FederationError,
    SourceUnavailableError,
    UnknownEventClassError,
    UnknownEventError,
)
from repro.xmlmsg.document import XmlDocument

if TYPE_CHECKING:
    from repro.core.actors import Actor
    from repro.federation.node import FederationNode


def _raise_for(response: dict) -> None:
    """Translate a home node's error response into the native exception."""
    error = response.get("error")
    if error is None:
        return
    message = response.get("message", error)
    if error == "access-denied":
        raise AccessDeniedError(message)
    if error == "source-unavailable":
        raise SourceUnavailableError(message)
    if error == "unknown-event":
        raise UnknownEventError(message)
    if error == "unknown-event-class":
        raise UnknownEventClassError(message)
    raise FederationError(f"remote call failed: {error}: {message}")


class FederationRouter:
    """Forwards subscriptions and detail requests to producers' home nodes."""

    def __init__(self, node: "FederationNode") -> None:
        self.node = node

    def _link_to(self, home_node_id: str):
        return self.node.membership.link(self.node.node_id, home_node_id)

    def subscribe_remote(
        self,
        home_node_id: str,
        consumer: "Actor",
        event_type: str,
        deliver: Callable,
    ) -> str:
        """Subscribe a local consumer to a class homed on another node.

        The home node's policy repository authorizes (or queues a pending
        access request and denies); on permit it relays the class topic to
        this node, where a local durable subscription feeds ``deliver``.
        Returns the local subscription id.
        """
        response = self._link_to(home_node_id).call("subscribe.remote", {
            "consumer_id": consumer.actor_id,
            "role": consumer.role,
            "event_type": event_type,
            "origin": self.node.node_id,
        })
        _raise_for(response)
        topic = response["topic"]
        bus = self.node.controller.bus
        bus.declare_topic(topic)
        subscription = bus.subscribe(consumer.actor_id, topic, deliver)
        return subscription.subscription_id

    def request_remote_details(
        self, home_node_id: str, request: DetailRequest
    ) -> DetailMessage:
        """Forward a request-for-details to the producer's home node.

        The decision (Algorithm 1) and field filtering (Algorithm 2) run
        entirely on the home node; this side only unseals and rebuilds the
        already-filtered detail message.
        """
        response = self._link_to(home_node_id).call("details.get", {
            "actor_id": request.actor.actor_id,
            "actor_name": request.actor.name,
            "role": request.actor.role,
            "event_type": request.event_type,
            "event_id": request.event_id,
            "purpose": request.purpose,
        })
        _raise_for(response)
        body = self.node.open_channel(response)
        return DetailMessage(
            event_id=body["event_id"],
            event_type=body["event_type"],
            producer_id=body["producer_id"],
            payload=XmlDocument(body["event_type"], body["fields"]),
            released_fields=tuple(body["released"]),
        )
