"""Durable backend implementations of the runtime interfaces.

The in-memory classes (:class:`~repro.core.index.EventsIndex`,
:class:`~repro.audit.log.AuditLog`) are the reference implementations; the
pair here proves the multi-backend seam: both write through to a durable
:class:`~repro.storage.engine.RecordLog` and replay it on start, so a
platform restarted over the same data directory sees its indexed
notifications (identity slots still sealed — the logs never hold
plaintext identities) and its hash-chained audit trail.

Which log implementation sits underneath is the kernel's ``store`` kind:
``jsonl`` (flat files, the ablation baseline) or ``segmented`` (the
crash-recoverable storage engine).  Decisions and audit trails are
byte-identical across both — these adapters serialize rows the same way
regardless of the log they write to.

Select them through the kernel::

    RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                  store="segmented", data_dir="...")

Replay streams (:meth:`RecordLog.iter_records`), so restart memory is
bounded by one record, not by the log.
"""

from __future__ import annotations

from pathlib import Path

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.core.index import EventsIndex, SealedIdentity
from repro.core.messages import NotificationMessage
from repro.exceptions import ObjectNotFoundError, TamperedLogError
from repro.registry.objects import LifecycleStatus, RegistryObject, Slot
from repro.storage.engine import JsonlRecordLog, RecordLog


def _as_log(log_or_path: str | Path | RecordLog) -> RecordLog:
    """Accept either a ready log or a path to a flat JSONL file."""
    if isinstance(log_or_path, (str, Path)):
        return JsonlRecordLog(log_or_path)
    return log_or_path


class JsonlAuditSink:
    """Hash-chained audit log with durable write-through persistence.

    Every appended record lands in the ``audit`` log together with its
    chain digest.  On construction an existing log is replayed into a
    fresh chain and the stored head digest re-verified, so tampering with
    the stored trail is detected at load time, not at the next guarantor
    review.  Accepts a path (flat JSONL, the historical constructor) or
    any :class:`~repro.storage.engine.RecordLog`.
    """

    def __init__(self, path: str | Path | RecordLog) -> None:
        self._log = AuditLog()
        self._store = _as_log(path)
        self._replay()

    @property
    def path(self) -> Path | None:
        """The backing file, when the log has one (flat JSONL)."""
        return getattr(self._store, "path", None)

    def _replay(self) -> None:
        for row in self._store.iter_records():
            digest = self._log.append(AuditRecord(
                record_id=row["record_id"],
                timestamp=row["timestamp"],
                actor=row["actor"],
                action=AuditAction(row["action"]),
                outcome=AuditOutcome(row["outcome"]),
                event_id=row["event_id"],
                event_type=row["event_type"],
                subject_ref=row["subject_ref"],
                purpose=row["purpose"],
                detail=row["detail"],
            ))
            if row.get("digest") not in (None, digest):
                raise TamperedLogError(
                    f"stored digest of audit record "
                    f"{row['record_id']!r} does not replay"
                )

    # -- AuditSink ---------------------------------------------------------

    def append(self, record: AuditRecord) -> str:
        """Append ``record``, write it through to disk, return its digest."""
        digest = self._log.append(record)
        self._store.append({**record.to_payload(), "digest": digest})
        return digest

    def flush(self) -> None:
        """Group-commit barrier: make every buffered append durable.

        A no-op for unbatched logs.  The in-memory chain is always
        current — only the durable write-through can lag, so this must
        run before the underlying files are snapshotted, verified on
        disk, or replayed by another process.
        """
        flush = getattr(self._store, "flush", None)
        if flush is not None:
            flush()

    def records(self) -> tuple[AuditRecord, ...]:
        """A snapshot of all records, oldest first."""
        return self._log.records()

    def record_at(self, index: int) -> AuditRecord:
        """The record at position ``index`` (0-based)."""
        return self._log.record_at(index)

    @property
    def head_digest(self) -> str:
        """Digest of the latest chain link."""
        return self._log.head_digest

    def verify_integrity(self) -> None:
        """Re-hash every record against the chain."""
        self._log.verify_integrity()

    def __len__(self) -> int:
        return len(self._log)


class JsonlIndexStore:
    """Events index with durable write-through persistence.

    Wraps the in-memory :class:`EventsIndex` (queries, decryption and the
    nonce sequence behave identically) and appends every stored registry
    object — identity slots sealed — to the ``index`` log.  On
    construction an existing log is replayed via the raw-restore path,
    and the nonce sequence fast-forwarded so no keystream is reused after
    a restart.  Withdrawals persist as tombstone rows, which compaction
    (``segmented`` store kind) later reclaims together with the rows they
    hide.
    """

    def __init__(self, path: str | Path | RecordLog, keystore,
                 encrypt_identity: bool = True) -> None:
        self._inner = EventsIndex(keystore, encrypt_identity=encrypt_identity)
        self._store = _as_log(path)
        self._replay()

    @property
    def path(self) -> Path | None:
        """The backing file, when the log has one (flat JSONL)."""
        return getattr(self._store, "path", None)

    def _replay(self) -> None:
        sequence = 0
        withdrawn: list[str] = []
        for row in self._store.iter_records():
            if row.get("tombstone"):
                withdrawn.append(row["object_id"])
                continue
            obj = RegistryObject(
                object_id=row["object_id"], object_type=row["object_type"],
                name=row["name"], description=row["description"],
            )
            for classification in row["classifications"]:
                obj.classify(classification["scheme"], classification["node"])
            for slot_name, values in row["slots"].items():
                obj.slots[slot_name] = Slot(slot_name, tuple(values))
            self._inner.restore_raw(obj)
            obj.status = LifecycleStatus(row["status"])
            sequence = max(sequence, int(row.get("sequence", 0)))
        for object_id in withdrawn:
            try:
                self._inner.registry.withdraw(object_id)
            except ObjectNotFoundError:  # its row was already compacted away
                pass
        if sequence:
            self._inner.restore_sequence(sequence)

    # -- IndexStore --------------------------------------------------------

    def seal_identity(self, notification: NotificationMessage) -> SealedIdentity:
        """Seal the identifying slots (crypto stage pass-through)."""
        return self._inner.seal_identity(notification)

    def _row_of(self, obj: RegistryObject) -> dict:
        return {
            "object_id": obj.object_id, "object_type": obj.object_type,
            "name": obj.name, "description": obj.description,
            "status": obj.status.value,
            "classifications": [
                {"scheme": c.scheme, "node": c.node} for c in obj.classifications
            ],
            "slots": {name: list(slot.values) for name, slot in obj.slots.items()},
            "sequence": self._inner.sequence,
        }

    def store(self, notification: NotificationMessage,
              sealed: SealedIdentity | None = None) -> RegistryObject:
        """Index a notification and append its sealed row to disk."""
        obj = self._inner.store(notification, sealed=sealed)
        self._store.append(self._row_of(obj))
        return obj

    def flush(self) -> None:
        """Group-commit barrier: make every buffered row durable.

        Queries always read the in-memory index (never stale); the
        barrier protects snapshot/restart visibility of the durable log.
        """
        flush = getattr(self._store, "flush", None)
        if flush is not None:
            flush()

    def withdraw(self, event_id: str) -> None:
        """Hide an indexed entry and persist the withdrawal as a tombstone.

        Registry object ids *are* event ids, so this is the durable
        counterpart of ``registry.withdraw`` — the entry stays hidden
        across restarts, and compaction may reclaim it and its tombstone.
        """
        self._inner.registry.withdraw(event_id)
        self._store.append({"tombstone": True, "object_id": event_id})

    def restore_raw(self, obj: RegistryObject) -> None:
        """Re-insert an archived registry object (archive-restore path)."""
        self._inner.restore_raw(obj)

    def adopt_raw(self, obj: RegistryObject) -> None:
        """Index a raw registry object *and* persist its row.

        The federated shard-transfer path: entries shipped by a peer
        (identity slots still sealed) must survive this node's restarts,
        unlike archive restores which replay from their own snapshot.
        """
        self._inner.restore_raw(obj)
        self._store.append(self._row_of(obj))

    def open_identity(self, token: str) -> str:
        """Open one sealed identity slot (federated fan-out path)."""
        return self._inner.open_identity(token)

    def get(self, event_id: str) -> NotificationMessage:
        """Rebuild the notification stored under ``event_id``."""
        return self._inner.get(event_id)

    def inquire(self, event_types, since=None, until=None, producer_id=None):
        """Query notifications of the authorized ``event_types``."""
        return self._inner.inquire(event_types, since=since, until=until,
                                   producer_id=producer_id)

    def count_for_type(self, event_type: str) -> int:
        """Number of indexed notifications of one class."""
        return self._inner.count_for_type(event_type)

    def restore_sequence(self, value: int) -> None:
        """Fast-forward the nonce counter (archive-restore path)."""
        self._inner.restore_sequence(value)

    @property
    def encrypt_identity(self) -> bool:
        """Whether identity slots are sealed (ablation A2 switch)."""
        return self._inner.encrypt_identity

    @property
    def registry(self):
        """The underlying ebXML-style registry (read-mostly)."""
        return self._inner.registry

    @property
    def sequence(self) -> int:
        """The nonce sequence counter."""
        return self._inner.sequence

    @property
    def stats(self):
        """The inner index's instrumentation counters."""
        return self._inner.stats

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, event_id: str) -> bool:
        return event_id in self._inner
