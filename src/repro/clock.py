"""Simulated time for the platform.

The paper stresses *temporal decoupling*: a consumer may request the details
of a notification "even months after the publication" (§4), and policies may
carry validity windows (Fig. 7).  Testing those behaviours against the wall
clock would be slow and flaky, so every component takes a :class:`Clock` and
the default implementation is a controllable simulated clock.

Times are plain ``float`` seconds since an arbitrary epoch; helpers convert
to ISO-8601 strings for messages and audit records.
"""

from __future__ import annotations

import datetime as _dt
import threading
import time as _time

#: Epoch used to render simulated instants as ISO-8601 timestamps.
SIMULATION_EPOCH = _dt.datetime(2010, 1, 1, tzinfo=_dt.timezone.utc)

#: Convenience constants for advancing simulated time.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
MONTH = 30 * DAY
YEAR = 365 * DAY


class Clock:
    """A monotonically advancing simulated clock.

    ``now()`` returns the current simulated instant in seconds.  Time only
    moves when :meth:`advance` (or :meth:`set`) is called, which makes tests
    of validity windows and months-later detail requests instantaneous.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new instant."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, instant: float) -> None:
        """Jump to an absolute ``instant`` (must not move backwards)."""
        with self._lock:
            if instant < self._now:
                raise ValueError("cannot set the clock backwards")
            self._now = float(instant)

    def isoformat(self, instant: float | None = None) -> str:
        """Render ``instant`` (default: now) as an ISO-8601 UTC timestamp."""
        if instant is None:
            instant = self.now()
        stamp = SIMULATION_EPOCH + _dt.timedelta(seconds=instant)
        return stamp.isoformat()


class WallClock(Clock):
    """A clock backed by real time, for live demos.

    ``advance``/``set`` are rejected: wall time cannot be steered.
    """

    def __init__(self) -> None:
        super().__init__(0.0)
        self._t0 = _time.monotonic()

    def now(self) -> float:  # noqa: D102 - inherited docstring
        return _time.monotonic() - self._t0

    def advance(self, seconds: float) -> float:  # noqa: D102
        raise NotImplementedError("wall clock cannot be advanced manually")

    def set(self, instant: float) -> None:  # noqa: D102
        raise NotImplementedError("wall clock cannot be set manually")
