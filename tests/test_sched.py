"""Fair multi-tenant scheduling: admission, DRR, penalty box, backpressure.

The acceptance-critical invariants: token buckets refill on the simulated
clock only, the penalty box demotes and recovers deterministically, the
victim tenant's service share is bounded below under ``fair`` while it
collapses under ``none``, same-seed schedules are deterministic, fan-out
overflow parks in the dead-letter queue and replays in bulk, and the
fair scheduler composes a ``sched`` pipeline stage while the baseline's
pipelines stay byte-identical to the pre-sched platform.
"""

import pytest

from repro.bus.broker import ServiceBus
from repro.clock import Clock
from repro.core.controller import DataController
from repro.exceptions import ConfigurationError
from repro.runtime.kernel import RuntimeConfig, default_kernel
from repro.sched import (
    POLICY_DRR,
    POLICY_FIFO,
    SYSTEM_TENANT,
    WORK_DETAILS,
    WORK_PUBLISH,
    PenaltyBox,
    SchedConfig,
    TenantScheduler,
    TokenBucket,
    jain_index,
    tenant_of,
)


class TestTokenBucket:
    def test_refills_from_simulated_time_only(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.take(now=0.0)
        assert not bucket.take(now=0.0)  # dry at t=0, no wall-clock refill
        assert bucket.take(now=0.5)      # 0.5 s * 2/s = 1 token back
        assert not bucket.take(now=0.5)

    def test_burst_caps_the_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert bucket.take(now=0.0)
        bucket.refill(now=1_000.0)
        assert bucket.tokens == 3.0

    def test_refusal_consumes_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.take(now=0.0)
        tokens = bucket.tokens
        assert not bucket.take(now=0.0)
        assert bucket.tokens == tokens

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.0)


class TestPenaltyBox:
    def test_demotes_after_strike_limit(self):
        box = PenaltyBox(strike_limit=3, cooldown_seconds=10.0)
        for i in range(3):
            box.record(admitted=False, now=float(i))
        assert box.is_penalized(now=3.0)
        assert box.demotions == 1
        assert box.weight_factor(now=3.0) == box.penalty_weight

    def test_recovers_after_cooldown_on_simulated_clock(self):
        box = PenaltyBox(strike_limit=1, cooldown_seconds=5.0)
        box.record(admitted=False, now=0.0)
        assert box.is_penalized(now=4.999)
        assert not box.is_penalized(now=5.0)
        assert box.recoveries == 1
        assert box.weight_factor(now=5.0) == 1.0

    def test_good_behaviour_forgives_accumulated_strikes(self):
        box = PenaltyBox(strike_limit=3, forgive_seconds=2.0)
        box.record(admitted=False, now=0.0)
        box.record(admitted=False, now=0.1)
        # A conforming arrival after the forgiveness window clears strikes,
        # so a short burst is not punished like sustained abuse.
        box.record(admitted=True, now=3.0)
        box.record(admitted=False, now=3.1)
        box.record(admitted=False, now=3.2)
        assert not box.is_penalized(now=3.2)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PenaltyBox(strike_limit=0)
        with pytest.raises(ConfigurationError):
            PenaltyBox(penalty_weight=0.0)


class TestTenantIdentity:
    def test_organizations_are_their_own_tenant(self):
        assert tenant_of("Municipality-Trento/SocialWorkers") == \
            "Municipality-Trento/SocialWorkers"

    def test_platform_traffic_collapses_onto_the_system_tenant(self):
        assert tenant_of("federation:node-1") == SYSTEM_TENANT
        assert tenant_of("") == SYSTEM_TENANT


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_one_tenant_taking_everything_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_defined_as_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


def saturated_run(policy: str) -> TenantScheduler:
    """Drive an overloaded virtual server: abuser floods, victim trickles.

    The server can complete 1 work-second over the run while ~4 arrive,
    so the serving policy — not spare capacity — decides who is served.
    """
    clock = Clock()
    sched = TenantScheduler(
        clock, policy=policy,
        config=SchedConfig(service_rate=0.1, bucket_rate=5.0,
                           bucket_burst=10.0),
    )
    sched.set_weight("abuser", 1.0)
    sched.set_weight("victim", 1.0)
    for step in range(100):
        now = step * 0.1
        sched.ingress("abuser", WORK_PUBLISH, now)
        for _ in range(9):
            sched.ingress("abuser", WORK_DETAILS, now)
        if step % 10 == 0:
            sched.ingress("victim", WORK_DETAILS, now)
        sched.drain(now)
    sched.drain(10.0)
    return sched


class TestFairnessInvariants:
    def test_victim_share_collapses_under_fifo(self):
        shares = saturated_run(POLICY_FIFO).shares()
        # FIFO serves proportional-to-arrival: the flood drowns the victim.
        assert shares["victim"] < 0.05

    def test_victim_demand_fully_served_under_drr(self):
        # Equal weights entitle the victim to ~half the served work; its
        # demand is far below that, so DRR must serve *all* of it — the
        # bounded-below isolation guarantee — while FIFO satisfies only
        # the queue-position lottery's fraction.
        drr = saturated_run(POLICY_DRR).tenant_report(10.0)
        assert drr["victim"]["served_work"] == \
            pytest.approx(drr["victim"]["arrived_work"])
        fifo = saturated_run(POLICY_FIFO).tenant_report(10.0)
        fifo_satisfaction = (fifo["victim"]["served_work"]
                             / fifo["victim"]["arrived_work"])
        assert fifo_satisfaction < 0.5

    def test_abuser_is_throttled_and_penalized_only_under_drr(self):
        fifo = saturated_run(POLICY_FIFO)
        drr = saturated_run(POLICY_DRR)
        assert fifo.throttled_total == 0          # baseline never shapes
        assert drr.throttled_total > 0
        assert not fifo.is_penalized("abuser", 10.0)
        assert drr.is_penalized("abuser", 10.0)
        assert not drr.is_penalized("victim", 10.0)

    def test_same_seed_schedules_are_deterministic(self):
        a = saturated_run(POLICY_DRR).tenant_report(10.0)
        b = saturated_run(POLICY_DRR).tenant_report(10.0)
        assert a == b

    def test_unknown_policy_rejected_with_suggestion_material(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling"):
            TenantScheduler(Clock(), policy="fifoo")


class TestDrrService:
    def test_weights_shape_shares_under_saturation(self):
        clock = Clock()
        sched = TenantScheduler(
            clock, policy=POLICY_DRR,
            config=SchedConfig(service_rate=0.1, bucket_rate=1e9,
                               bucket_burst=1e9),
        )
        sched.set_weight("heavy", 3.0)
        sched.set_weight("light", 1.0)
        for step in range(100):
            now = step * 0.1
            for _ in range(10):
                sched.ingress("heavy", WORK_DETAILS, now)
                sched.ingress("light", WORK_DETAILS, now)
            sched.drain(now)
        report = sched.tenant_report(10.0)
        ratio = report["heavy"]["served_work"] / report["light"]["served_work"]
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_fifo_serves_in_global_arrival_order(self):
        clock = Clock()
        sched = TenantScheduler(
            clock, policy=POLICY_FIFO,
            config=SchedConfig(service_rate=1.0),
        )
        sched.submit("a", WORK_DETAILS, 0.0)
        sched.submit("b", WORK_DETAILS, 0.0)
        # Budget for exactly one item: the earliest arrival wins.
        sched.drain(0.003)
        report = sched.tenant_report(0.003)
        assert report["a"]["served"] == 1
        assert report["b"]["served"] == 0


class TestBackpressure:
    def make_bus(self, max_pending: int = 2):
        clock = Clock()
        sched = TenantScheduler(
            clock, policy=POLICY_DRR,
            config=SchedConfig(max_pending=max_pending),
        )
        bus = ServiceBus(clock=clock, auto_dispatch=False, sched=sched)
        bus.declare_topic("events.t")
        return bus, sched

    def test_overflow_sheds_to_dead_letter_and_replays_in_bulk(self):
        bus, sched = self.make_bus(max_pending=2)
        received = []
        bus.subscribe("consumer-org", "events.t", received.append)
        for i in range(5):
            bus.publish("events.t", "producer-org", f"m{i}")
        # Two enqueued, three shed past the bound — bounded real memory.
        assert bus.pending_messages() == 2
        assert bus.dead_letter_depth == 3
        assert sched.shed_total == 3
        bus.dispatch()
        assert len(received) == 2

        replayed = bus.replay_all_dead_letters()
        bus.dispatch()
        assert replayed == 3
        assert bus.dead_letter_depth == 0
        assert sorted(env.body for env in received) == [f"m{i}" for i in range(5)]

    def test_dead_letter_counts_accumulate_per_topic_across_replay(self):
        bus, _ = self.make_bus(max_pending=1)
        bus.declare_topic("events.u")
        bus.subscribe("consumer-org", "events.t", lambda e: None)
        bus.subscribe("consumer-org", "events.u", lambda e: None)
        for _ in range(3):
            bus.publish("events.t", "p", "x")
        for _ in range(2):
            bus.publish("events.u", "p", "x")
        assert bus.dead_letter_counts() == {"events.t": 2, "events.u": 1}
        bus.replay_all_dead_letters()
        # Cumulative arrivals survive replay — they are a counter, not a depth.
        assert bus.dead_letter_counts() == {"events.t": 2, "events.u": 1}
        assert bus.dead_letter_depth == 0

    def test_fifo_baseline_never_sheds(self):
        clock = Clock()
        sched = TenantScheduler(clock, policy=POLICY_FIFO,
                                config=SchedConfig(max_pending=1))
        bus = ServiceBus(clock=clock, auto_dispatch=False, sched=sched)
        bus.declare_topic("events.t")
        bus.subscribe("consumer-org", "events.t", lambda e: None)
        for _ in range(5):
            bus.publish("events.t", "p", "x")
        assert bus.dead_letter_depth == 0
        assert bus.pending_messages() == 5


class TestBusStatsResetContract:
    def test_reset_zeroes_counters_but_keeps_high_water_marks(self):
        bus = ServiceBus(auto_dispatch=False)
        bus.declare_topic("events.t")
        bus.subscribe("c", "events.t", lambda e: None)
        bus.publish("events.t", "s", "x")
        assert bus.stats.published == 1
        assert bus.queue_high_water() == 1

        bus.stats.reset()
        assert bus.stats.published == 0
        # High-water marks live on the bus, cleared only by the bus.
        assert bus.queue_high_water() == 1
        bus.reset_high_water()
        assert bus.queue_high_water() == 0

    def test_reset_docstring_pins_the_division_of_labour(self):
        from repro.bus.broker import BusStats

        assert "reset_high_water" in BusStats.reset.__doc__


class TestKernelWiring:
    def test_sched_kind_registered_with_both_policies(self):
        kernel = default_kernel()
        assert kernel.wiring()["sched"] == ("fair", "none")

    def test_unknown_sched_name_gets_a_suggestion(self):
        kernel = default_kernel()
        with pytest.raises(ConfigurationError, match="did you mean 'fair'"):
            kernel.create("sched", "fiar", clock=Clock())

    def test_fair_controller_gains_a_sched_stage(self):
        fifo = DataController(seed="wire")
        fair = DataController(seed="wire",
                              runtime=RuntimeConfig(sched="fair"))
        assert "sched" not in fifo.publish_pipeline.stage_names
        assert "sched" not in fifo.details_pipeline.stage_names
        assert fair.publish_pipeline.stage_names[0] == "sched"
        assert fair.details_pipeline.stage_names[0] == "sched"
        # Minus the leading sched stage, the chains are the pinned defaults.
        assert fair.publish_pipeline.stage_names[1:] == \
            fifo.publish_pipeline.stage_names
        assert fair.details_pipeline.stage_names[1:] == \
            fifo.details_pipeline.stage_names

    def test_both_policies_meter_but_only_fair_shapes(self):
        fifo = DataController(seed="wire")
        fair = DataController(seed="wire",
                              runtime=RuntimeConfig(sched="fair"))
        assert fifo.sched.policy == POLICY_FIFO
        assert not fifo.sched_gate.shapes_ingress
        assert fair.sched.policy == POLICY_DRR
        assert fair.sched_gate.shapes_ingress
