"""Property-based tests of the substrate invariants.

* Bus: per-subscription FIFO order, at-least-once accounting
  (delivered + dead-lettered + pending == fanned out), wildcard-matching
  consistency.
* Registry: the indexed query engine agrees with a brute-force filter.
* Keystore: rotation never breaks previously sealed tokens.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.broker import ServiceBus
from repro.bus.delivery import DeliveryPolicy
from repro.bus.topics import topic_matches
from repro.crypto.keystore import KeyStore
from repro.registry.objects import RegistryObject
from repro.registry.query import FilterQuery
from repro.registry.registry import Registry

TOPICS = ("events.health.BloodTest", "events.health.Discharge",
          "events.social.HomeCare", "events.social.Alarm")
PATTERNS = ("events.#", "events.health.*", "events.social.*",
            "events.health.BloodTest", "events.*.Alarm")


class TestBusProperties:
    @given(publishes=st.lists(st.sampled_from(TOPICS), max_size=40),
           pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_per_subscription(self, publishes, pattern):
        bus = ServiceBus(strict_topics=False)
        received: list[str] = []
        bus.subscribe("c", pattern, lambda env: received.append(env.body))
        for index, topic in enumerate(publishes):
            bus.publish(topic, "p", f"{index}:{topic}")
        expected = [
            f"{index}:{topic}" for index, topic in enumerate(publishes)
            if topic_matches(pattern, topic)
        ]
        assert received == expected

    @given(
        publishes=st.lists(st.sampled_from(TOPICS), max_size=30),
        fail_first_n=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_message_lost_or_duplicated(self, publishes, fail_first_n):
        """delivered + dead-lettered + pending == enqueued, exactly."""
        bus = ServiceBus(strict_topics=False, auto_dispatch=False,
                         delivery_policy=DeliveryPolicy(max_attempts=2))
        seen: list[str] = []
        state = {"failures_left": fail_first_n}

        def flaky(envelope):
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                raise RuntimeError("transient")
            seen.append(envelope.message_id)

        subscription = bus.subscribe("c", "events.#", flaky)
        for topic in publishes:
            bus.publish(topic, "p", "x")
        for _ in range(len(publishes) * 3 + 5):
            bus.dispatch()
        stats = subscription.queue.stats
        accounted = stats.delivered + stats.dead_lettered + subscription.queue.depth
        assert accounted == stats.enqueued == len(publishes)
        # Delivered messages were delivered exactly once.
        assert len(seen) == len(set(seen)) == stats.delivered

    @given(topic=st.sampled_from(TOPICS))
    @settings(max_examples=20, deadline=None)
    def test_fanout_reaches_exactly_matching_subscriptions(self, topic):
        bus = ServiceBus(strict_topics=False)
        boxes = {pattern: [] for pattern in PATTERNS}
        for pattern in PATTERNS:
            bus.subscribe(pattern, pattern, boxes[pattern].append)
        bus.publish(topic, "p", "x")
        for pattern in PATTERNS:
            expected = 1 if topic_matches(pattern, topic) else 0
            assert len(boxes[pattern]) == expected


CLASSES = ("BloodTest", "HomeCare", "Alarm")


def registry_objects(data: list[tuple[str, str]]) -> list[RegistryObject]:
    objects = []
    for index, (event_class, stamp) in enumerate(data):
        obj = RegistryObject(object_id=f"n{index}", object_type="Notification",
                             name=f"event {index}")
        obj.classify("EventClass", event_class)
        obj.set_slot("occurredAt", stamp)
        objects.append(obj)
    return objects


class TestRegistryProperties:
    @given(
        data=st.lists(
            st.tuples(st.sampled_from(CLASSES),
                      st.from_regex(r"2010-(0[1-9]|1[0-2])-(0[1-9]|2[0-8])",
                                    fullmatch=True)),
            max_size=30,
        ),
        wanted_class=st.sampled_from(CLASSES),
        since=st.from_regex(r"2010-(0[1-9]|1[0-2])-01", fullmatch=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_indexed_query_equals_brute_force(self, data, wanted_class, since):
        registry = Registry()
        objects = registry_objects(data)
        for obj in objects:
            registry.submit(obj)
        query = (FilterQuery(object_type="Notification")
                 .where("class:EventClass", "eq", wanted_class)
                 .where("slot:occurredAt", "ge", since))
        indexed = {obj.object_id for obj in registry.query(query)}
        brute_force = {
            obj.object_id for obj in objects
            if obj.classification_node("EventClass") == wanted_class
            and (obj.slot_value("occurredAt") or "") >= since
        }
        assert indexed == brute_force


class TestKeystoreRotationProperty:
    @given(
        values=st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=10),
        rotations=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_rotation_preserves_old_tokens(self, values, rotations):
        store = KeyStore("rotation-secret")
        store.create("k")
        tokens = []
        sequence = 0
        for value in values:
            sequence += 1
            tokens.append((value, store.seal("k", value, sequence)))
            if rotations and sequence % max(1, len(values) // (rotations + 1)) == 0:
                store.rotate("k")
        for value, token in tokens:
            assert store.open_("k", token) == value
