"""Audit substrate: tamper-evident logging and compliance reporting.

The data controller "maintains logs of the access request for auditing
purposes" and must "answer to auditing inquiry by the privacy guarantor or
the data subject herself" (paper §2, §4).  This subpackage provides:

* :mod:`~repro.audit.log` — the hash-chained, append-only audit log;
* :mod:`~repro.audit.query` — filtered queries (actor, purpose, subject,
  event, outcome, time window);
* :mod:`~repro.audit.reports` — the guarantor inquiry report and the
  data-subject access report.
"""

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.audit.query import AuditQuery
from repro.audit.reports import data_subject_report, guarantor_report

__all__ = [
    "AuditAction",
    "AuditLog",
    "AuditOutcome",
    "AuditQuery",
    "AuditRecord",
    "data_subject_report",
    "guarantor_report",
]
