"""Platform archiving and restoration.

``PlatformArchive(directory).save(controller)`` writes a directory
snapshot; ``restore(master_secret)`` rebuilds an equivalent
:class:`~repro.core.controller.DataController`:

* the audit log is replayed record by record and its hash chain compared
  against the manifest's head digest — a tampered archive fails restore;
* the events index is restored with its identity slots **still sealed**
  (the archive never contains plaintext identities) and its nonce
  sequence fast-forwarded, so no keystream is ever reused;
* id generators are fast-forwarded past every archived id;
* gateways and consent registries are rebuilt and re-attached; producers
  and consumers reconnect their client objects (and re-subscribe) on top.

The same ``master_secret`` and ``seed`` used at save time must be supplied
at restore time — keys are derived, never stored.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.audit.log import AuditAction, AuditOutcome, AuditRecord
from repro.clock import Clock
from repro.core.actors import Actor, ActorKind
from repro.core.consent import ConsentDecision, ConsentRegistry, ConsentScope
from repro.core.contracts import Contract, ContractStatus
from repro.core.controller import DataController
from repro.core.events import EventClass
from repro.core.gateway import LocalCooperationGateway
from repro.core.idmap import EventIdEntry
from repro.core.policy import PrivacyPolicy
from repro.exceptions import ConfigurationError, TamperedLogError
from repro.registry.objects import RegistryObject, Slot
from repro.storage.jsonl import JsonlFile
from repro.storage.schemas import (
    schema_from_dict,
    schema_to_dict,
    values_from_wire,
    values_to_wire,
)
from repro.xmlmsg.document import XmlDocument

_FILES = ("actors", "contracts", "catalog", "policies", "idmap", "index",
          "gateways", "consent", "audit")


class PlatformArchive:
    """A directory-backed snapshot of a data controller."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _file(self, name: str) -> JsonlFile:
        return JsonlFile(self.directory / f"{name}.jsonl")

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    # -- save ------------------------------------------------------------

    def save(self, controller: DataController) -> None:
        """Write a full snapshot of ``controller``."""
        if self.manifest_path.exists():
            raise ConfigurationError(
                f"archive directory {self.directory} already holds a snapshot"
            )
        self.directory.mkdir(parents=True, exist_ok=True)

        self._file("actors").append_many([
            {"actor_id": a.actor_id, "name": a.name, "kind": a.kind.value,
             "role": a.role, "description": a.description}
            for a in controller.actors.all_actors()
        ])
        self._file("contracts").append_many([
            {"party_id": c.party_id, "kind": c.kind.value,
             "signed_at": c.signed_at, "valid_until": c.valid_until,
             "status": c.status.value}
            for c in (controller.contracts.get(a.actor_id)
                      for a in controller.actors.all_actors())
        ])
        catalog_rows = []
        for event_class in controller.catalog.all_classes():
            for version in controller.catalog.history(event_class.name):
                catalog_rows.append({
                    "name": version.name, "producer_id": version.producer_id,
                    "category": version.category, "description": version.description,
                    "version": version.version,
                    "schema": schema_to_dict(version.schema),
                })
        self._file("catalog").append_many(catalog_rows)

        policy_rows = []
        for policy_id, policy in controller.policies._policies.items():  # noqa: SLF001
            policy_rows.append({
                "policy_id": policy.policy_id, "producer_id": policy.producer_id,
                "event_type": policy.event_type,
                "fields": sorted(policy.fields),
                "purposes": sorted(policy.purposes),
                "actor_id": policy.actor_id, "actor_role": policy.actor_role,
                "label": policy.label, "description": policy.description,
                "valid_from": policy.valid_from, "valid_until": policy.valid_until,
                "deny": policy.deny,
                "revoked": controller.policies.is_revoked(policy_id),
                "xacml": controller.policies.xacml_text(policy_id),
            })
        self._file("policies").append_many(policy_rows)

        self._file("idmap").append_many([
            {"event_id": e.event_id, "producer_id": e.producer_id,
             "src_event_id": e.src_event_id, "event_type": e.event_type,
             "subject_ref": e.subject_ref, "published_at": e.published_at}
            for e in controller.id_map._by_global.values()  # noqa: SLF001
        ])

        self._file("index").append_many([
            {
                "object_id": obj.object_id, "object_type": obj.object_type,
                "name": obj.name, "description": obj.description,
                "status": obj.status.value,
                "classifications": [
                    {"scheme": c.scheme, "node": c.node}
                    for c in obj.classifications
                ],
                "slots": {name: list(slot.values)
                          for name, slot in obj.slots.items()},
            }
            for obj in controller.index.registry.all_objects()
        ])

        gateway_rows = []
        for actor in controller.actors.producers():
            try:
                gateway = controller.gateway_of(actor.actor_id)
            except Exception:  # no gateway attached
                continue
            for src_event_id, event_class, details in gateway.stored_entries():
                gateway_rows.append({
                    "producer_id": actor.actor_id,
                    "src_event_id": src_event_id,
                    "event_type": event_class.name,
                    "event_version": event_class.version,
                    "fields": values_to_wire(details.fields, event_class.schema),
                })
        self._file("gateways").append_many(gateway_rows)

        consent_rows = []
        for actor in controller.actors.producers():
            registry = controller.consent_registry_of(actor.actor_id)
            if registry is None:
                continue
            for decision in registry._decisions:  # noqa: SLF001
                consent_rows.append({
                    "producer_id": actor.actor_id,
                    "subject_id": decision.subject_id,
                    "scope": decision.scope.value,
                    "granted": decision.granted,
                    "event_type": decision.event_type,
                    "decided_at": decision.decided_at,
                    "default_granted": registry.default_granted,
                })
        self._file("consent").append_many(consent_rows)

        self._file("audit").append_many([
            {
                "record_id": r.record_id, "timestamp": r.timestamp,
                "actor": r.actor, "action": r.action.value,
                "outcome": r.outcome.value, "event_id": r.event_id,
                "event_type": r.event_type, "subject_ref": r.subject_ref,
                "purpose": r.purpose, "detail": r.detail,
            }
            for r in controller.audit_log.records()
        ])

        manifest = {
            "seed": controller.ids.seed,
            "clock_now": controller.clock.now(),
            "encrypt_identity": controller.index.encrypt_identity,
            "index_sequence": controller.index.sequence,
            "audit_head": controller.audit_log.head_digest,
            "id_skips": self._id_skips(controller),
            "counts": {name: len(self._file(name)) for name in _FILES},
        }
        self.manifest_path.write_text(json.dumps(manifest, indent=2))

    @staticmethod
    def _id_skips(controller: DataController) -> dict[str, int]:
        """Highest counter seen per id prefix, parsed from archived ids."""
        skips: dict[str, int] = {}

        def note(identifier: str | None) -> None:
            if not identifier:
                return
            parts = identifier.split("-")
            if len(parts) != 3 or not parts[1].isdigit():
                return
            prefix, counter = parts[0], int(parts[1])
            skips[prefix] = max(skips.get(prefix, 0), counter)

        for entry in controller.id_map._by_global.values():  # noqa: SLF001
            note(entry.event_id)
        for record in controller.audit_log.records():
            note(record.record_id)
        for policy_id in list(controller.policies._policies):  # noqa: SLF001
            note(policy_id)
        return skips

    # -- restore -------------------------------------------------------------------

    def restore(self, master_secret: str) -> DataController:
        """Rebuild an equivalent controller from the snapshot.

        Raises :class:`~repro.exceptions.TamperedLogError` if the replayed
        audit chain does not reproduce the manifest's head digest.
        """
        if not self.manifest_path.exists():
            raise ConfigurationError(f"no snapshot in {self.directory}")
        manifest = json.loads(self.manifest_path.read_text())

        controller = DataController(
            clock=Clock(start=manifest["clock_now"]),
            master_secret=master_secret,
            seed=manifest["seed"],
            encrypt_identity=manifest["encrypt_identity"],
        )
        for prefix, count in manifest.get("id_skips", {}).items():
            controller.ids.skip(prefix, count)

        # Audit log first: replay and verify against the manifest head.
        for row in self._file("audit").iter_records():
            controller.audit_log.append(AuditRecord(
                record_id=row["record_id"], timestamp=row["timestamp"],
                actor=row["actor"], action=AuditAction(row["action"]),
                outcome=AuditOutcome(row["outcome"]), event_id=row["event_id"],
                event_type=row["event_type"], subject_ref=row["subject_ref"],
                purpose=row["purpose"], detail=row["detail"],
            ))
        controller.audit_log.verify_integrity()
        if controller.audit_log.head_digest != manifest["audit_head"]:
            raise TamperedLogError(
                "restored audit chain does not match the archived head digest"
            )

        for row in self._file("actors").iter_records():
            controller.actors.add(Actor(
                actor_id=row["actor_id"], name=row["name"],
                kind=ActorKind(row["kind"]), role=row["role"],
                description=row["description"],
            ))
        for row in self._file("contracts").iter_records():
            controller.contracts.sign(Contract(
                party_id=row["party_id"], kind=ActorKind(row["kind"]),
                signed_at=row["signed_at"], valid_until=row["valid_until"],
                status=ContractStatus(row["status"]),
            ))

        catalog_rows = sorted(self._file("catalog").iter_records(),
                              key=lambda row: (row["name"], row["version"]))
        for row in catalog_rows:
            event_class = EventClass(
                name=row["name"], producer_id=row["producer_id"],
                schema=schema_from_dict(row["schema"]),
                category=row["category"], description=row["description"],
                version=1,
            )
            if row["version"] == 1:
                controller.catalog.install(event_class)
                controller.bus.declare_topic(event_class.topic)
            else:
                controller.catalog.upgrade(event_class)

        for row in self._file("policies").iter_records():
            policy = PrivacyPolicy(
                policy_id=row["policy_id"], producer_id=row["producer_id"],
                event_type=row["event_type"],
                fields=frozenset(row["fields"]),
                purposes=frozenset(row["purposes"]),
                actor_id=row["actor_id"], actor_role=row["actor_role"],
                label=row["label"], description=row["description"],
                valid_from=row["valid_from"], valid_until=row["valid_until"],
                deny=row.get("deny", False),
            )
            controller.policies.add(policy, row["xacml"])
            if row["revoked"]:
                controller.policies.revoke(policy.policy_id)

        for row in self._file("idmap").iter_records():
            controller.id_map.record(EventIdEntry(
                event_id=row["event_id"], producer_id=row["producer_id"],
                src_event_id=row["src_event_id"], event_type=row["event_type"],
                subject_ref=row["subject_ref"], published_at=row["published_at"],
            ))

        from repro.registry.objects import LifecycleStatus

        for row in self._file("index").iter_records():
            obj = RegistryObject(
                object_id=row["object_id"], object_type=row["object_type"],
                name=row["name"], description=row["description"],
            )
            for classification in row["classifications"]:
                obj.classify(classification["scheme"], classification["node"])
            for slot_name, values in row["slots"].items():
                obj.slots[slot_name] = Slot(slot_name, tuple(values))
            controller.index.restore_raw(obj)
            obj.status = LifecycleStatus(row["status"])
        controller.index.restore_sequence(manifest["index_sequence"])

        gateways: dict[str, LocalCooperationGateway] = {}
        for row in self._file("gateways").iter_records():
            producer_id = row["producer_id"]
            gateway = gateways.get(producer_id)
            if gateway is None:
                gateway = LocalCooperationGateway(producer_id)
                gateways[producer_id] = gateway
            event_class = controller.catalog.get_version(
                row["event_type"], row["event_version"])
            details = XmlDocument(
                row["event_type"],
                values_from_wire(row["fields"], event_class.schema),
            )
            gateway.restore_detail(row["src_event_id"], event_class, details)
        # Producers without archived details still need (empty) gateways.
        for actor in controller.actors.producers():
            gateways.setdefault(actor.actor_id, LocalCooperationGateway(actor.actor_id))
        for producer_id, gateway in gateways.items():
            controller.attach_gateway(producer_id, gateway, check_contract=False)

        registries: dict[str, ConsentRegistry] = {}
        for row in self._file("consent").iter_records():
            registry = registries.get(row["producer_id"])
            if registry is None:
                registry = ConsentRegistry(row["producer_id"],
                                           default_granted=row["default_granted"])
                registries[row["producer_id"]] = registry
            registry.record(ConsentDecision(
                subject_id=row["subject_id"],
                scope=ConsentScope(row["scope"]),
                granted=row["granted"],
                event_type=row["event_type"],
                decided_at=row["decided_at"],
            ))
        for producer_id, registry in registries.items():
            controller.attach_consent(producer_id, registry, check_contract=False)

        return controller
