"""The flight recorder: rings, sanitisation, freezing, platform hooks."""

import pytest

from repro.clock import Clock
from repro.exceptions import ConfigurationError
from repro.obs.guard import PrivacyGuard
from repro.obs.recorder import (
    EVENT_DEADLETTER,
    EVENT_DEMOTION,
    EVENT_SLO_ALERT,
    FlightRecorder,
    NoopFlightRecorder,
)
from repro.obs.telemetry import InMemoryTelemetry
from repro.runtime.kernel import RuntimeConfig
from repro.sim.scenario import CssScenario, ScenarioConfig


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def recorder(clock):
    return FlightRecorder(clock=clock, capacity=4, span_capacity=4,
                         guard=PrivacyGuard(secret="s"))


class TestNoop:
    def test_noop_is_disabled_and_empty(self):
        noop = NoopFlightRecorder()
        assert noop.enabled is False
        noop.record("bus.deadletter", depth=1)
        assert noop.events() == []
        assert noop.timeline() == []
        snapshot = noop.freeze()
        assert snapshot["events"] == [] and snapshot["frozen"] is False


class TestRecording:
    def test_rejects_capacity_below_one(self, clock):
        with pytest.raises(ConfigurationError):
            FlightRecorder(clock=clock, capacity=0)

    def test_ring_evicts_oldest_and_counts_drops(self, recorder, clock):
        for index in range(6):
            clock.advance(1.0)
            recorder.record(EVENT_DEADLETTER, count=index)
        events = recorder.events()
        assert len(events) == 4
        assert [row["count"] for row in events] == [2, 3, 4, 5]
        assert recorder.dropped_events == 2

    def test_numeric_fields_pass_identifying_strings_hash(self, recorder):
        recorder.record(EVENT_DEMOTION, subject_id="ap-00000001", depth=7,
                        topic="events.social.HomeVisit")
        [row] = recorder.events()
        assert row["depth"] == 7  # measurements keep their value
        assert row["subject_id"].startswith("h:")  # identities never do
        assert "ap-00000001" not in str(row)
        assert row["topic"] == "events.social.HomeVisit"  # plain strings pass

    def test_identifying_numeric_field_is_hashed(self, recorder):
        recorder.record(EVENT_SLO_ALERT, subject=12345678)
        [row] = recorder.events()
        assert str(row["subject"]).startswith("h:")

    def test_seq_is_shared_across_both_rings(self, recorder, clock):
        class Span:
            name = "stage.x"
            trace_id = "tr-1"
            span_id = "sp-1"
            parent_id = None
            status = "ok"
            start = 0.0
            end = 1.5
            duration = 1.5

        recorder.record(EVENT_DEADLETTER, depth=1)
        recorder.record_span(Span())
        recorder.record(EVENT_DEADLETTER, depth=2)
        timeline = recorder.timeline()
        assert [row["seq"] for row in sorted(timeline,
                                             key=lambda r: r["seq"])] \
            == [1, 2, 3]
        assert {row["entry"] for row in timeline} == {"event", "span"}

    def test_timeline_is_time_ordered(self, recorder, clock):
        recorder.record(EVENT_DEADLETTER, depth=1)
        clock.advance(2.0)
        recorder.record(EVENT_SLO_ALERT, objective="x")
        ats = [row["at"] for row in recorder.timeline()]
        assert ats == sorted(ats)


class TestFreezing:
    def test_freeze_stops_both_rings_idempotently(self, recorder, clock):
        recorder.record(EVENT_DEADLETTER, depth=1)
        first = recorder.freeze()
        recorder.record(EVENT_DEADLETTER, depth=2)

        class Span:
            name = "stage.x"
            trace_id = "tr-1"
            span_id = "sp-1"
            parent_id = None
            status = "ok"
            start = 0.0
            end = None
            duration = None

        recorder.record_span(Span())
        assert recorder.freeze() == first
        assert len(recorder.events()) == 1
        assert recorder.spans() == []


class TestKernelWiring:
    def test_default_runtime_gets_noop_recorder(self):
        scenario = CssScenario(ScenarioConfig(n_patients=2, n_events=4))
        assert scenario.controller.recorder.enabled is False

    def test_ring_recorder_attaches_and_mirrors_spans(self):
        runtime = RuntimeConfig(telemetry="inmemory", recorder="ring")
        scenario = CssScenario(ScenarioConfig(n_patients=2, n_events=6,
                                              runtime=runtime))
        controller = scenario.controller
        assert controller.recorder.enabled is True
        assert controller.telemetry.recorder is controller.recorder
        scenario.run(scenario.generate_workload())
        assert len(controller.recorder.spans()) > 0

    def test_first_enabled_recorder_wins_on_shared_telemetry(self):
        telemetry = InMemoryTelemetry()
        first = FlightRecorder(clock=Clock())
        second = FlightRecorder(clock=Clock())
        telemetry.attach_recorder(NoopFlightRecorder())
        assert telemetry.recorder is None
        telemetry.attach_recorder(first)
        telemetry.attach_recorder(second)
        assert telemetry.recorder is first
        assert telemetry.tracer.recorder is first
