"""Unit tests for repro.bus.endpoints (the synchronous SOA layer)."""

import pytest

from repro.bus.endpoints import EndpointRegistry, ServiceEndpoint
from repro.exceptions import EndpointError


class TestServiceEndpoint:
    def test_invoke_returns_operation_result(self):
        endpoint = ServiceEndpoint("echo", lambda req: req)
        assert endpoint.invoke("hello") == "hello"
        assert endpoint.stats.calls == 1

    def test_empty_name_rejected(self):
        with pytest.raises(EndpointError):
            ServiceEndpoint("", lambda req: req)

    def test_offline_endpoint_rejects_calls(self):
        endpoint = ServiceEndpoint("svc", lambda req: req)
        endpoint.take_offline()
        assert not endpoint.available
        with pytest.raises(EndpointError):
            endpoint.invoke("x")
        assert endpoint.stats.failures == 1
        assert endpoint.stats.calls == 0

    def test_bring_online_restores_service(self):
        endpoint = ServiceEndpoint("svc", lambda req: req)
        endpoint.take_offline()
        endpoint.bring_online()
        assert endpoint.invoke("x") == "x"

    def test_operation_exception_propagates_and_counts(self):
        def failing(req):
            raise ValueError("fault response")

        endpoint = ServiceEndpoint("svc", failing)
        with pytest.raises(ValueError):
            endpoint.invoke("x")
        assert endpoint.stats.calls == 1
        assert endpoint.stats.failures == 1


class TestEndpointRegistry:
    def test_expose_and_call(self):
        registry = EndpointRegistry()
        registry.expose("double", lambda req: req * 2)
        assert registry.call("double", 21) == 42
        assert len(registry) == 1

    def test_duplicate_names_rejected(self):
        registry = EndpointRegistry()
        registry.expose("svc", lambda req: req)
        with pytest.raises(EndpointError):
            registry.expose("svc", lambda req: req)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(EndpointError):
            EndpointRegistry().call("nope", 1)

    def test_names_and_total_calls(self):
        registry = EndpointRegistry()
        registry.expose("a", lambda req: req)
        registry.expose("b", lambda req: req)
        registry.call("a", 1)
        registry.call("a", 2)
        registry.call("b", 3)
        assert set(registry.names()) == {"a", "b"}
        assert registry.total_calls() == 3
