"""Scenario configurations of the workload engine.

One :class:`WorkloadConfig` fully determines a workload: population size
and hierarchy shape, the arrival process, popularity skew, the
publish/request-for-details/subscribe operation mix, tenant roster and
anomaly injection.  Together with ``seed`` it is the *entire* input of
:class:`~repro.workload.engine.WorkloadEngine` — two engines built from
equal configs emit byte-identical operation streams.

Four named scenarios ship with the platform:

``steady``
    The provisioning baseline: Poisson arrivals, gentle skew, the op mix
    of routine continuity-of-care traffic.
``stress``
    Saturation probe: several times the steady rate and a detail-heavy
    mix, the knob to find the knee of the throughput curve.
``surge``
    On/off bursts (telecare alarm storms, end-of-month administrative
    runs): same average rate as ``steady`` but concentrated in bursts.
``anomaly``
    Abuse injection: one consumer organization issues a large multiple
    of its fair share of detail requests and popularity collapses onto a
    few hot subjects — the scenario admission-control work is measured
    against.
``multi_tenant``
    Fair-sharing probe: a wider roster from :func:`multi_tenant_roster`
    (N consumer organizations with Zipf-skewed weights, one mid-rank
    abusive) at an elevated detail-heavy rate — the scenario the
    ``sched`` kernel kind's fairness figures come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError
from repro.runtime.kernel import suggest
from repro.sim.domain import (
    ROLE_ADMINISTRATOR,
    ROLE_FAMILY_DOCTOR,
    ROLE_SOCIAL_WORKER,
    ROLE_STATISTICIAN,
)
from repro.sim.generators import DEFAULT_SEED

#: Operation kinds the engine emits.
OP_PUBLISH = "publish"
OP_DETAILS = "details"
OP_SUBSCRIBE = "subscribe"


@dataclass(frozen=True)
class TenantSpec:
    """One consumer organization in the workload's tenant roster."""

    tenant_id: str
    role: str
    #: Relative share of detail-request / subscribe traffic.
    weight: float = 1.0


#: The default tenant roster (the scenario cast plus the workload's
#: consumer organizations — ids reuse the deployment's naming style).
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("FamilyDoctors/Dr-Rossi", ROLE_FAMILY_DOCTOR, 3.0),
    TenantSpec("Municipality-Trento/SocialWorkers", ROLE_SOCIAL_WORKER, 3.0),
    TenantSpec("Province-Trentino/Statistics", ROLE_STATISTICIAN, 1.0),
    TenantSpec("Province-Trentino/SocialWelfare", ROLE_ADMINISTRATOR, 2.0),
)

#: Roles the synthetic multi-tenant roster cycles through.
MULTI_TENANT_ROLES: tuple[str, ...] = (
    ROLE_FAMILY_DOCTOR,
    ROLE_SOCIAL_WORKER,
    ROLE_STATISTICIAN,
    ROLE_ADMINISTRATOR,
)


def multi_tenant_roster(count: int = 8,
                        exponent: float = 0.8) -> tuple[TenantSpec, ...]:
    """A synthetic roster of ``count`` consumer organizations.

    Weights follow a Zipf law (rank r gets ``1/r**exponent``), scaled so
    they sum to ``count`` (mean weight 1.0) and rounded to 3 decimals —
    a skewed-but-not-degenerate share distribution for fairness studies.
    Roles cycle through :data:`MULTI_TENANT_ROLES`; ids use a synthetic
    ``Org-NN/…`` namespace that collides with no deployment producer or
    consumer organization.  Pure function of its arguments, so rosters
    are as reproducible as everything else under seed.
    """
    if count < 2:
        raise ConfigurationError("a multi-tenant roster needs >= 2 tenants")
    if exponent < 0:
        raise ConfigurationError("roster exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    scale = count / sum(raw)
    return tuple(
        TenantSpec(
            tenant_id=f"Org-{rank:02d}/{MULTI_TENANT_ROLES[(rank - 1) % len(MULTI_TENANT_ROLES)]}",
            role=MULTI_TENANT_ROLES[(rank - 1) % len(MULTI_TENANT_ROLES)],
            weight=round(weight * scale, 3),
        )
        for rank, weight in enumerate(raw, start=1)
    )


def multi_tenant_abuser(count: int = 8) -> str:
    """The mid-rank roster tenant the preset marks abusive.

    Mid-rank on purpose: an abuser with a *middling* fair share makes
    the collapse under fifo and the bound under fair both visible —
    the top-ranked tenant would dominate legitimately anyway.
    """
    roster = multi_tenant_roster(count)
    return roster[len(roster) // 2].tenant_id


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything that determines one workload, reproducible under seed."""

    scenario: str = "steady"
    population: int = 100_000
    ops: int = 5_000
    seed: int = DEFAULT_SEED

    # arrival process --------------------------------------------------------
    #: ``poisson`` or ``onoff``.
    arrival: str = "poisson"
    #: Average operations per simulated second (poisson: the rate; onoff:
    #: the burst rate).
    rate: float = 50.0
    #: Mean ON / OFF period lengths for ``arrival="onoff"``.
    on_seconds: float = 20.0
    off_seconds: float = 60.0
    #: Trickle rate during OFF periods.
    base_rate: float = 0.0

    # popularity skew --------------------------------------------------------
    #: Zipf exponent over event classes (rank 1 = hottest class).
    type_exponent: float = 1.1
    #: Zipf exponent over assisted persons.
    subject_exponent: float = 1.05

    # operation mix ----------------------------------------------------------
    publish_weight: float = 1.0
    details_weight: float = 0.45
    subscribe_weight: float = 0.02

    # actor hierarchy --------------------------------------------------------
    guardian_rate: float = 0.12
    case_load: int = 250
    tenants: tuple[TenantSpec, ...] = DEFAULT_TENANTS

    # anomaly injection ------------------------------------------------------
    #: Tenant id whose detail-request share is multiplied by
    #: ``abusive_factor`` (None = no abusive tenant).
    abusive_tenant: str | None = None
    abusive_factor: float = 20.0
    #: Number of artificially hot subjects; 0 disables injection.  With k
    #: hot subjects, ``hot_subject_share`` of all subject draws collapse
    #: onto those k indexes.
    hot_subjects: int = 0
    hot_subject_share: float = 0.5

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ConfigurationError("population must be positive")
        if self.ops < 0:
            raise ConfigurationError("ops must be non-negative")
        if self.arrival not in ("poisson", "onoff"):
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                "available: poisson, onoff"
            )
        if self.publish_weight <= 0:
            raise ConfigurationError("publish_weight must be positive")
        if self.details_weight < 0 or self.subscribe_weight < 0:
            raise ConfigurationError("op-mix weights must be non-negative")
        if not self.tenants:
            raise ConfigurationError("the tenant roster cannot be empty")
        if self.abusive_tenant is not None and self.abusive_factor < 1.0:
            raise ConfigurationError("abusive_factor must be >= 1")
        if self.hot_subjects < 0:
            raise ConfigurationError("hot_subjects must be non-negative")
        if not 0.0 <= self.hot_subject_share <= 1.0:
            raise ConfigurationError("hot_subject_share must be within [0, 1]")


#: The named scenario presets (field overrides on top of the defaults).
SCENARIOS: dict[str, dict[str, object]] = {
    "steady": {},
    "stress": {
        "rate": 200.0,
        "details_weight": 0.9,
        "subject_exponent": 1.2,
    },
    "surge": {
        "arrival": "onoff",
        "rate": 250.0,
        "on_seconds": 15.0,
        "off_seconds": 45.0,
        "type_exponent": 1.4,
    },
    "anomaly": {
        "rate": 120.0,
        "details_weight": 1.2,
        "abusive_tenant": "Province-Trentino/SocialWelfare",
        "abusive_factor": 25.0,
        "hot_subjects": 4,
        "hot_subject_share": 0.5,
        "subject_exponent": 1.3,
    },
    "multi_tenant": {
        "rate": 150.0,
        "details_weight": 1.0,
        "tenants": multi_tenant_roster(),
        "abusive_tenant": multi_tenant_abuser(),
        "abusive_factor": 20.0,
        "subject_exponent": 1.2,
    },
}


def workload_config(name: str, **overrides: object) -> WorkloadConfig:
    """A named scenario preset with field overrides applied on top.

    Unknown scenario names fail with the kernel's did-you-mean
    discipline, like every other enumeration in the platform.
    """
    try:
        preset = SCENARIOS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload scenario {name!r};"
            f"{suggest(name, SCENARIOS)} "
            f"available: {', '.join(sorted(SCENARIOS))}"
        ) from exc
    merged: dict[str, object] = {"scenario": name, **preset, **overrides}
    return replace(WorkloadConfig(), **merged)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CapacityConfig:
    """Knobs of one capacity-trajectory run over the federation."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    node_counts: tuple[int, ...] = (1, 2, 4, 8)
    #: Detail-request purposes per tenant role (defaults to the
    #: scenario's role-purpose table).
    link_latency: float = 0.005
    #: Tenant scheduler on every node ("none" or "fair") — see
    #: ``RuntimeConfig.sched``.
    sched: str = "none"
    #: Batched execution across the hot path ("off" or "on") — see
    #: ``RuntimeConfig.batch`` and docs/PERFORMANCE.md.
    batch: str = "off"
    #: Records per group commit / entries per coalesced frame.
    batch_size: int = 256

    def __post_init__(self) -> None:
        if not self.node_counts:
            raise ConfigurationError("node_counts cannot be empty")
        if any(n < 1 for n in self.node_counts):
            raise ConfigurationError("every node count must be >= 1")
        if self.batch not in ("off", "on"):
            raise ConfigurationError(
                f"unknown batch mode {self.batch!r};"
                f"{suggest(self.batch, ('off', 'on'))} "
                f"available: off, on"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
