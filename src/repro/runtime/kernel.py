"""The service kernel — the platform's single composition root.

Every collaborator of the :class:`~repro.core.controller.DataController`
(cipher, transport, index store, audit sink, detail fetcher, policy
decision point) is constructed here, by *name*, from a registry of
factories.  The controller, CLI, examples and benchmarks all build their
service graph through one kernel, so swapping a backend — say the
in-memory events index for the JSONL-backed one — is a
:class:`RuntimeConfig` field, not an edit to the controller:

    >>> controller = DataController(runtime=RuntimeConfig(
    ...     index_store="jsonl", audit_sink="jsonl", data_dir="/tmp/css"))

Factories receive the construction context (clock, ids, keystore, paths,
...) as keyword arguments and may ignore what they don't need.  They
import their implementation modules lazily, keeping the kernel itself
import-light and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import ConfigurationError

#: A service factory: ``factory(**context) -> implementation``.
ServiceFactory = Callable[..., Any]

#: Service kinds the default kernel wires (one per controller collaborator).
KIND_CIPHER = "cipher"
KIND_TRANSPORT = "transport"
KIND_INDEX = "index"
KIND_AUDIT = "audit"
KIND_PDP = "pdp"
KIND_FETCHER = "fetcher"
KIND_TELEMETRY = "telemetry"
KIND_FEDERATION = "federation"
KIND_SLO = "slo"
KIND_PROFILING = "profiling"
KIND_PERF = "perf"
KIND_STORE = "store"
KIND_SCHED = "sched"
KIND_RECORDER = "recorder"
KIND_BATCH = "batch"


@dataclass(frozen=True)
class RuntimeConfig:
    """Named implementation choices for one platform instance.

    The defaults reproduce the historical all-in-memory wiring; ``jsonl``
    backends additionally need ``data_dir``.
    """

    cipher: str = "keystore"
    transport: str = "bus"
    index_store: str = "memory"
    audit_sink: str = "memory"
    pdp: str = "xacml"
    detail_fetcher: str = "endpoint"
    telemetry: str = "noop"
    #: Privacy-guard mode for the telemetry backend ("hash" or "reject").
    telemetry_guard: str = "hash"
    #: SLO engine: "noop" (default) or "default" (stock objectives over
    #: the telemetry backend, which must then be enabled).
    slo: str = "noop"
    #: Profiler: "noop" (default) or "sampling" (deterministic section
    #: profiler over the simulated clock, labels guard-hashed).
    profiling: str = "noop"
    #: Hot-path performance layer: "indexed" (default — policy index,
    #: versioned decision cache, subscription trie, wire caches) or
    #: "none" (the linear-scan ablation baseline).  Decisions and audit
    #: trails are identical either way; only the speed differs.
    perf: str = "indexed"
    #: Durable store engine behind the jsonl index/audit backends:
    #: "jsonl" (flat files, the ablation baseline) or "segmented" (the
    #: storage engine — segmented checksummed logs with compaction,
    #: snapshots and point-in-time recovery).  Decisions and audit
    #: trails are byte-identical across both.
    store: str = "jsonl"
    #: Multi-tenant scheduler at the bus boundary: "none" (today's FIFO
    #: dispatch, with per-tenant accounting) or "fair" (deficit-round-robin
    #: fair queueing with token-bucket admission, backpressure shedding to
    #: the dead-letter queue, and abusive-tenant penalty weights).  Either
    #: way decisions and audit trails are identical — see docs/SCHEDULING.md.
    sched: str = "none"
    #: Batched execution across the hot path: "off" (default — one
    #: durable append, one wire frame, one work charge per event) or
    #: "on" (group-commit durability, coalesced federation frames and
    #: amortized per-event work, ``batch_size`` records per batch).
    #: Audit digests and PDP decisions are byte-identical either way —
    #: see docs/PERFORMANCE.md.
    batch: str = "off"
    #: Records per batch when batching is on (flush boundary of the
    #: group-commit writers and the shard-frame coalescer).
    batch_size: int = 256
    #: Flight recorder: "noop" (default) or "ring" (bounded ring buffers
    #: of recent guard-sanitized spans, SLO alerts, penalty-box
    #: transitions and bus saturation events — the raw material for
    #: incident bundles, cheap enough to stay on in every scenario).
    recorder: str = "noop"
    #: Federation topology: "none" (single controller) or "static"
    #: (a fixed ring of ``shards`` controller nodes, see repro.federation).
    federation: str = "none"
    #: Number of controller nodes when federation is enabled.
    shards: int = 1
    data_dir: str | Path | None = None


class ServiceKernel:
    """A two-level registry: service kind → implementation name → factory."""

    def __init__(self) -> None:
        self._factories: dict[str, dict[str, ServiceFactory]] = {}

    def register(self, kind: str, name: str, factory: ServiceFactory) -> None:
        """Register (or replace) the factory for ``kind``/``name``."""
        self._factories.setdefault(kind, {})[name] = factory

    def create(self, kind: str, name: str, **context: Any) -> Any:
        """Instantiate implementation ``name`` of service ``kind``.

        Unknown kinds and names fail with a :class:`ConfigurationError`
        listing what *is* registered (plus a close-match suggestion for
        typos), never a bare ``KeyError``.
        """
        try:
            by_name = self._factories[kind]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown service kind {kind!r};{_suggest(kind, self._factories)} "
                f"kinds: {', '.join(sorted(self._factories))}"
            ) from exc
        try:
            factory = by_name[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"no {kind!r} implementation named {name!r};"
                f"{_suggest(name, by_name)} "
                f"available: {', '.join(sorted(by_name))}"
            ) from exc
        return factory(**context)

    def kinds(self) -> tuple[str, ...]:
        """The registered service kinds, sorted."""
        return tuple(sorted(self._factories))

    def implementations(self, kind: str) -> tuple[str, ...]:
        """The implementation names registered for ``kind``, sorted."""
        if kind not in self._factories:
            raise ConfigurationError(f"unknown service kind {kind!r}")
        return tuple(sorted(self._factories[kind]))

    def wiring(self) -> dict[str, tuple[str, ...]]:
        """The full kind → implementations table (for docs and the CLI)."""
        return {kind: self.implementations(kind) for kind in self.kinds()}


def suggest(typo: str, known) -> str:
    """A did-you-mean fragment for error messages (empty if no close match).

    Public because the CLI reuses the kernel's suggestion discipline for
    its own enumerations (scenario names, ...), so every "unknown X"
    error in the platform reads the same way.
    """
    matches = get_close_matches(typo, list(known), n=1)
    return f" did you mean {matches[0]!r}?" if matches else ""


#: Backwards-compatible private alias (pre-dating the public helper).
_suggest = suggest


def _data_file(context: dict, filename: str) -> Path:
    data_dir = context.get("data_dir")
    if data_dir is None:
        raise ConfigurationError(
            f"the jsonl backend needs RuntimeConfig.data_dir (for {filename})"
        )
    return Path(data_dir) / filename


# -- default factories (lazy imports: the kernel must not cycle with core) --


def _keystore(**context: Any) -> Any:
    from repro.crypto.keystore import KeyStore

    return KeyStore(context["master_secret"])


def _service_bus(**context: Any) -> Any:
    from repro.bus.broker import ServiceBus

    return ServiceBus(
        clock=context["clock"], ids=context["ids"],
        auto_dispatch=context.get("auto_dispatch", True),
        telemetry=context.get("telemetry"),
        perf=context.get("perf"),
        sched=context.get("sched"),
        recorder=context.get("recorder"),
    )


def _noop_telemetry(**context: Any) -> Any:
    from repro.obs.telemetry import NoopTelemetry

    return NoopTelemetry()


def _inmemory_telemetry(**context: Any) -> Any:
    from repro.obs.telemetry import InMemoryTelemetry

    return InMemoryTelemetry(
        clock=context["clock"],
        guard_mode=context.get("telemetry_guard", "hash"),
        secret=context.get("master_secret", "css-telemetry"),
    )


def _memory_index(**context: Any) -> Any:
    from repro.core.index import EventsIndex

    return EventsIndex(
        context["keystore"],
        encrypt_identity=context.get("encrypt_identity", True),
    )


def _durable_log(context: dict, name: str) -> Any:
    """The named record log from the runtime's store provider.

    Falls back to a flat ``<name>.jsonl`` path when no provider is in the
    construction context (direct kernel use predating the store kind).
    """
    provider = context.get("store")
    if provider is not None:
        return provider.log(name)
    return _data_file(context, f"{name}.jsonl")


def _maybe_batched(log: Any, context: dict) -> Any:
    """Wrap a durable log in a group-commit writer when batching is on."""
    policy = context.get("batch")
    if policy is None or not getattr(policy, "enabled", False):
        return log
    from repro.runtime.batching import BatchWriter

    return BatchWriter(log, batch_size=policy.batch_size)


def _jsonl_index(**context: Any) -> Any:
    from repro.runtime.backends import JsonlIndexStore

    return JsonlIndexStore(
        _maybe_batched(_durable_log(context, "index"), context),
        context["keystore"],
        encrypt_identity=context.get("encrypt_identity", True),
    )


def _memory_audit(**context: Any) -> Any:
    from repro.audit.log import AuditLog

    return AuditLog()


def _jsonl_audit(**context: Any) -> Any:
    from repro.runtime.backends import JsonlAuditSink

    return JsonlAuditSink(_maybe_batched(_durable_log(context, "audit"), context))


def _xacml_enforcer(**context: Any) -> Any:
    from repro.core.enforcement import PolicyEnforcer

    return PolicyEnforcer(
        repository=context["repository"],
        id_map=context["id_map"],
        purposes=context["purposes"],
        gateway_resolver=context.get("gateway_resolver"),
        audit_log=context["audit_log"],
        clock=context["clock"],
        ids=context["ids"],
        consent_resolver=context.get("consent_resolver"),
        fetcher=context.get("fetcher"),
        telemetry=context.get("telemetry"),
        perf=context.get("perf"),
    )


def _no_federation(**context: Any) -> Any:
    from repro.federation.membership import NoFederation

    return NoFederation()


def _static_federation(**context: Any) -> Any:
    from repro.federation.membership import StaticMembership

    return StaticMembership(
        shards=context["shards"],
        clock=context["clock"],
        master_secret=context["master_secret"],
        link_latency=context.get("link_latency", 0.005),
        link_policy=context.get("link_policy"),
        telemetry=context.get("telemetry"),
        label_guard=context.get("label_guard"),
    )


def _federated_index(**context: Any) -> Any:
    from repro.core.index import EventsIndex
    from repro.federation.index import FederatedIndexStore

    if context.get("data_dir") is not None:
        # Durable deployment: this node's shard writes through to its own
        # index log, so rehome tombstones and adopted entries survive a
        # restart (the store kind decides flat-file vs segmented).
        from repro.runtime.backends import JsonlIndexStore

        local: Any = JsonlIndexStore(
            _maybe_batched(_durable_log(context, "index"), context),
            context["keystore"],
            encrypt_identity=context.get("encrypt_identity", True),
        )
    else:
        local = EventsIndex(
            context["keystore"],
            encrypt_identity=context.get("encrypt_identity", True),
        )
    return FederatedIndexStore(
        local=local,
        membership=context["membership"],
        node_id=context["node_id"],
        perf=context.get("perf"),
        batch=context.get("batch"),
    )


def _noop_slo(**context: Any) -> Any:
    from repro.obs.slo import NoopSLOEngine

    return NoopSLOEngine()


def _default_slo(**context: Any) -> Any:
    from repro.obs.slo import SLOEngine

    return SLOEngine(
        telemetry=context["telemetry"],
        objectives=context.get("objectives"),
        timeseries=context.get("timeseries"),
        recorder=context.get("recorder"),
    )


def _noop_profiler(**context: Any) -> Any:
    from repro.obs.profiling import NoopProfiler

    return NoopProfiler()


def _sampling_profiler(**context: Any) -> Any:
    from repro.obs.profiling import SamplingProfiler

    telemetry = context.get("telemetry")
    return SamplingProfiler(
        clock=context["clock"],
        guard=getattr(telemetry, "guard", None),
    )


def _no_perf(**context: Any) -> Any:
    from repro.perf import NoopPerfLayer

    return NoopPerfLayer()


def _indexed_perf(**context: Any) -> Any:
    from repro.perf import PerfLayer

    return PerfLayer(
        secret=context.get("master_secret", "css-perf"),
        telemetry=context.get("telemetry"),
    )


def _jsonl_store(**context: Any) -> Any:
    from repro.storage.engine import JsonlStore

    return JsonlStore(data_dir=context.get("data_dir"))


def _segmented_store(**context: Any) -> Any:
    from repro.storage.engine import SegmentedStore

    return SegmentedStore(
        data_dir=context.get("data_dir"),
        telemetry=context.get("telemetry"),
    )


def _no_sched(**context: Any) -> Any:
    from repro.sched.scheduler import POLICY_FIFO, TenantScheduler

    return TenantScheduler(
        clock=context["clock"],
        policy=POLICY_FIFO,
        config=context.get("sched_config"),
        telemetry=context.get("telemetry"),
        secret=context.get("master_secret", "css-sched"),
        recorder=context.get("recorder"),
    )


def _fair_sched(**context: Any) -> Any:
    from repro.sched.scheduler import POLICY_DRR, TenantScheduler

    return TenantScheduler(
        clock=context["clock"],
        policy=POLICY_DRR,
        config=context.get("sched_config"),
        telemetry=context.get("telemetry"),
        secret=context.get("master_secret", "css-sched"),
        recorder=context.get("recorder"),
    )


def _off_batch(**context: Any) -> Any:
    # No policy object at all: every batching seam checks for None and
    # stays on the historical per-record/per-frame path.
    return None


def _on_batch(**context: Any) -> Any:
    from repro.runtime.batching import BatchPolicy

    return BatchPolicy(batch_size=context.get("batch_size", 256))


def _noop_recorder(**context: Any) -> Any:
    from repro.obs.recorder import NoopFlightRecorder

    return NoopFlightRecorder()


def _ring_recorder(**context: Any) -> Any:
    from repro.obs.recorder import FlightRecorder

    telemetry = context.get("telemetry")
    return FlightRecorder(
        clock=context["clock"],
        capacity=context.get("recorder_capacity", 256),
        span_capacity=context.get("recorder_span_capacity", 256),
        guard=getattr(telemetry, "guard", None),
    )


def _shared_telemetry(**context: Any) -> Any:
    # The federated platform shares one telemetry instance across all its
    # node controllers; the factory just hands it through the kernel so the
    # controller's wiring stays uniform.
    return context["shared_telemetry"]


def _endpoint_fetcher(**context: Any) -> Any:
    from repro.runtime.services import EndpointDetailFetcher

    return EndpointDetailFetcher(context["endpoints"], context["require_producer"])


def _direct_fetcher(**context: Any) -> Any:
    from repro.runtime.services import DirectDetailFetcher

    return DirectDetailFetcher(context["gateway_resolver"])


def default_kernel() -> ServiceKernel:
    """A kernel pre-loaded with every in-tree implementation."""
    kernel = ServiceKernel()
    kernel.register(KIND_CIPHER, "keystore", _keystore)
    kernel.register(KIND_TRANSPORT, "bus", _service_bus)
    kernel.register(KIND_INDEX, "memory", _memory_index)
    kernel.register(KIND_INDEX, "jsonl", _jsonl_index)
    kernel.register(KIND_INDEX, "federated", _federated_index)
    kernel.register(KIND_AUDIT, "memory", _memory_audit)
    kernel.register(KIND_AUDIT, "jsonl", _jsonl_audit)
    kernel.register(KIND_PDP, "xacml", _xacml_enforcer)
    kernel.register(KIND_FETCHER, "endpoint", _endpoint_fetcher)
    kernel.register(KIND_FETCHER, "direct", _direct_fetcher)
    kernel.register(KIND_TELEMETRY, "noop", _noop_telemetry)
    kernel.register(KIND_TELEMETRY, "inmemory", _inmemory_telemetry)
    kernel.register(KIND_TELEMETRY, "shared", _shared_telemetry)
    kernel.register(KIND_FEDERATION, "none", _no_federation)
    kernel.register(KIND_FEDERATION, "static", _static_federation)
    kernel.register(KIND_SLO, "noop", _noop_slo)
    kernel.register(KIND_SLO, "default", _default_slo)
    kernel.register(KIND_PROFILING, "noop", _noop_profiler)
    kernel.register(KIND_PROFILING, "sampling", _sampling_profiler)
    kernel.register(KIND_PERF, "none", _no_perf)
    kernel.register(KIND_PERF, "indexed", _indexed_perf)
    kernel.register(KIND_STORE, "jsonl", _jsonl_store)
    kernel.register(KIND_STORE, "segmented", _segmented_store)
    kernel.register(KIND_SCHED, "none", _no_sched)
    kernel.register(KIND_SCHED, "fair", _fair_sched)
    kernel.register(KIND_RECORDER, "noop", _noop_recorder)
    kernel.register(KIND_RECORDER, "ring", _ring_recorder)
    kernel.register(KIND_BATCH, "off", _off_batch)
    kernel.register(KIND_BATCH, "on", _on_batch)
    return kernel
