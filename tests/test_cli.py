"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestScenarioCommand:
    def test_runs_and_prints_report(self):
        code, output = run_cli("scenario", "--events", "30", "--patients", "10",
                               "--seed", "3")
        assert code == 0
        assert "CSS SCENARIO REPORT" in output
        assert "events published:        30" in output

    def test_archive_option(self, tmp_path):
        snap = tmp_path / "snap"
        code, output = run_cli("scenario", "--events", "20", "--archive", str(snap))
        assert code == 0
        assert (snap / "manifest.json").exists()
        assert "archived" in output


class TestCompareCommand:
    def test_prints_five_rows(self):
        code, output = run_cli("compare", "--events", "30")
        assert code == 0
        assert "CSS (two-phase)" in output
        assert "manual (Fig. 1)" in output
        assert "point-to-point SOA" in output
        assert "central warehouse" in output
        assert "full-push pub/sub" in output


class TestMonitorCommand:
    def test_prints_aggregates(self):
        code, output = run_cli("monitor", "--events", "40", "--threshold", "1")
        assert code == 0
        assert "SERVICE VOLUME" in output
        assert "distinct citizens served:" in output

    def test_suppression_threshold_respected(self):
        code, output = run_cli("monitor", "--events", "30",
                               "--threshold", "1000000")
        assert code == 0
        assert "<1000000" in output


class TestInspectCommand:
    def test_round_trip_through_archive(self, tmp_path):
        snap = tmp_path / "snap"
        run_cli("scenario", "--events", "25", "--archive", str(snap))
        code, output = run_cli("inspect", str(snap))
        assert code == 0
        assert "chain verified" in output
        assert "Guarantor access report" in output

    def test_missing_archive_fails(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_cli("inspect", str(tmp_path / "nothing"))


class TestFederateCommand:
    def test_runs_a_sharded_deployment(self):
        code, output = run_cli("federate", "--nodes", "2", "--events", "60",
                               "--patients", "12", "--seed", "5")
        assert code == 0
        assert "FEDERATED CSS SCENARIO REPORT" in output
        assert "nodes:                   2" in output
        assert "federated audit:" in output
        assert "2 verified chains" in output

    def test_rebalance_option_reports_the_new_node(self):
        code, output = run_cli("federate", "--nodes", "2", "--events", "40",
                               "--patients", "10", "--rebalance")
        assert code == 0
        assert "rebalance: added node-2" in output

    def test_batched_run_matches_unbatched_outcomes(self):
        args = ("--nodes", "2", "--events", "40", "--patients", "10",
                "--seed", "5")
        _code, plain = run_cli("federate", *args)
        code, batched = run_cli("federate", *args, "--batch", "on",
                                "--batch-size", "64")
        assert code == 0
        assert "2 verified chains" in batched

        def outcomes(report: str) -> list[str]:
            # Timing lines shrink under batching (the point of the knob);
            # every decision-derived line must be identical.
            keep = ("events published", "blocked by consent",
                    "notifications delivered", "detail requests",
                    "cross-node hops", "audit chains verified",
                    "federated audit")
            return [line for line in report.splitlines()
                    if line.strip().startswith(keep)]

        assert outcomes(batched) == outcomes(plain)

    def test_unknown_batch_name_suggests_the_nearest(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("federate", "--batch", "onn")
        assert "did you mean 'on'?" in str(excinfo.value)

    def test_telemetry_federated_scenario(self):
        code, output = run_cli("telemetry", "--scenario", "federated",
                               "--nodes", "2", "--events", "40",
                               "--patients", "10")
        assert code == 0
        assert "federation.hops_total" in output

    def test_slo_out_writes_report_payload(self, tmp_path):
        report = tmp_path / "slo.json"
        code, output = run_cli("federate", "--nodes", "2", "--events", "40",
                               "--patients", "10", "--slo-out", str(report))
        assert code == 0
        payload = json.loads(report.read_text())
        names = {row["name"] for row in payload["objectives"]}
        assert "link-delivery" in names and "request-details-latency" in names


class TestTelemetryObservability:
    def test_profile_prints_the_profiler_table(self):
        code, output = run_cli("telemetry", "--scenario", "default",
                               "--events", "30", "--profile")
        assert code == 0
        assert "pipeline.stage" in output
        assert "pipeline=publish,stage=crypto" in output

    def test_slo_out_writes_evaluated_objectives(self, tmp_path):
        report = tmp_path / "slo.json"
        code, _ = run_cli("telemetry", "--scenario", "default", "--events",
                          "30", "--slo-out", str(report))
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["breaches"] >= 0
        assert all(0.0 <= row["target"] <= 1.0
                   for row in payload["objectives"])


class TestSloCommand:
    def test_scripted_drops_breach_link_delivery(self, tmp_path):
        report = tmp_path / "slo.json"
        code, output = run_cli("slo", "--scenario", "federated", "--nodes",
                               "2", "--events", "60", "--patients", "10",
                               "--drops", "2", "--slo-out", str(report))
        assert code == 0
        assert "link-delivery" in output
        assert "BREACH" in output
        assert "platform.slo.alerts" in output
        payload = json.loads(report.read_text())
        by_name = {row["name"]: row for row in payload["objectives"]}
        assert by_name["link-delivery"]["breached"] is True

    def test_default_scenario_evaluates_local_objectives(self):
        code, output = run_cli("slo", "--scenario", "default",
                               "--events", "30")
        assert code == 0
        assert "request-details-latency" in output

    def test_unknown_scenario_suggests_the_nearest(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("slo", "--scenario", "federatd")
        assert "did you mean 'federated'?" in str(excinfo.value)


class TestTraceCommand:
    def test_stitches_a_federated_run(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        code, output = run_cli("trace", "--scenario", "federated", "--nodes",
                               "2", "--events", "30", "--patients", "8",
                               "--stitch", "--out", str(out))
        assert code == 0
        assert "stitched" in output
        assert "cross-node" in output
        assert "0 orphan spans" in output
        lines = out.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["span_id"] for line in lines)

    def test_unknown_scenario_suggests_the_nearest(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("trace", "--scenario", "defalt")
        assert "did you mean 'default'?" in str(excinfo.value)


class TestPerfCommand:
    def test_kernel_scenario_prints_the_figures(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        code, output = run_cli("perf", "--scenario", "kernel",
                               "--seed", "7", "--out", str(out))
        assert code == 0
        assert "pdp.decide" in output
        assert "publish.fanout" in output
        assert "equivalence: identical=True" in output
        payload = json.loads(out.read_text())
        assert payload["schema"] == "css-bench-perf/1"
        assert payload["quick"] is True
        # The written summary satisfies the CI gate as-is.
        from benchmarks.check_perf_schema import validate

        assert validate(payload) == []

    def test_unknown_scenario_suggests_the_nearest(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("perf", "--scenario", "federeted")
        assert "did you mean 'federated'?" in str(excinfo.value)
        assert "available: kernel, federated" in str(excinfo.value)

    def test_nodes_must_be_positive(self):
        with pytest.raises(SystemExit, match="--nodes must be a positive"):
            run_cli("perf", "--scenario", "federated", "--nodes", "0")


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            run_cli()
