"""Side-by-side comparison: CSS vs every baseline architecture.

Runs one seeded workload through the CSS platform and the four
alternatives the paper argues against (manual document exchange,
point-to-point SOA, central warehouse, full-push pub/sub) and prints the
comparison table behind Fig. 1 / the two-phase ablation.

Run with::

    python examples/architecture_comparison.py
"""

from repro.baselines import (
    FullPushBaseline,
    ManualExchangeBaseline,
    PointToPointSoaBaseline,
    WarehouseBaseline,
)
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    CssScenario,
    ScenarioConfig,
)


def main() -> None:
    config = ScenarioConfig(n_patients=30, n_events=200,
                            detail_request_rate=0.3, seed=2010)
    scenario = CssScenario(config)
    workload = scenario.generate_workload()
    consumers = list(DEFAULT_CONSUMERS)

    print(f"workload: {len(workload)} events, {len(consumers)} consumers, "
          f"detail-request rate {config.detail_request_rate:.0%}\n")

    css = scenario.run(workload)
    rows = [css.exposure]
    extras = {
        "CSS (two-phase)": (
            f"connections={css.subscriptions} "
            f"audit={css.audit_records} (chain ok)"
        ),
    }

    baselines = [
        ManualExchangeBaseline(scenario.templates, consumers),
        PointToPointSoaBaseline(scenario.templates, consumers,
                                DEFAULT_PRODUCER_ASSIGNMENT),
        WarehouseBaseline(scenario.templates, consumers),
        FullPushBaseline(scenario.templates, consumers,
                         DEFAULT_PRODUCER_ASSIGNMENT),
    ]
    for baseline in baselines:
        report = baseline.run(workload)
        rows.append(report.exposure)
        extras[baseline.system_name] = (
            f"connections={report.connections} "
            f"duplicated-sensitive={report.duplicated_sensitive_values}"
        )

    print("system                  events  disclosures  sensitive  "
          "overexposed  traced    notes")
    print("-" * 110)
    for exposure in rows:
        summary = exposure
        print(f"{summary.system:<22} {summary.events:>7} {summary.disclosures:>12} "
              f"{summary.sensitive_disclosures:>10} {summary.overexposed:>12} "
              f"{summary.traced_fraction:>7.0%}    {extras[summary.system]}")

    print("\nreading the table:")
    print(" * overexposed = values a receiver got but did not need "
          "(the paper's minimal-usage violations) — CSS is the only 0;")
    print(" * traced = share of disclosures visible to the privacy guarantor "
          "— CSS and the centralized designs trace, the legacy flows do not;")
    print(" * only the warehouse duplicates sensitive values outside their "
          "owner, which the Italian regulation prohibits outright.")


if __name__ == "__main__":
    main()
