"""Service-level objectives over the telemetry the platform already emits.

An :class:`SLObjective` declares, over existing metric series, what
fraction of events must be *good*; the :class:`SLOEngine` evaluates every
objective against an :class:`~repro.obs.telemetry.InMemoryTelemetry`
registry on the simulated clock and produces a deterministic
:class:`SLOReport` with error-budget and burn-rate accounting:

* ``latency`` — good events are histogram observations at or below
  ``threshold`` (counted from fixed bucket boundaries, the same
  upper-bound discipline the p95 summaries use), so "p95 of
  request-details ≤ 50 ms" is simply ``target=0.95, threshold=0.05``;
* ``ratio`` — good events are ``1 - bad/total`` over two counters
  (dead-lettered per published, denied per decided, dropped per link
  attempt);
* ``level`` — a point-in-time invariant: every matching gauge must sit
  at or below ``threshold`` (drained queues).

Breaches are emitted onto the service bus as first-class notifications —
:data:`SLO_ALERT_TOPIC` messages whose canonical-JSON body names only
the objective, the metric, thresholds and attainment.  Nothing about any
assisted person can appear in an alert because nothing about any person
exists in the metric layer the objectives read (the
:class:`~repro.obs.guard.PrivacyGuard` saw to that on ingest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import canonical_json
from repro.exceptions import ConfigurationError
from repro.obs.recorder import EVENT_SLO_ALERT
from repro.obs.telemetry import PIPELINE_DURATION

#: Default multi-window burn-rate horizons (simulated seconds).
DEFAULT_SHORT_WINDOW = 5.0
DEFAULT_LONG_WINDOW = 60.0

#: Objective kinds.
KIND_LATENCY = "latency"
KIND_RATIO = "ratio"
KIND_LEVEL = "level"

#: The bus topic SLO breach alerts are published under.
SLO_ALERT_TOPIC = "platform.slo.alerts"

#: Counter of alerts emitted, labelled by objective.
SLO_ALERTS = "slo.alerts_total"
#: Counter of engine evaluations.
SLO_EVALUATIONS = "slo.evaluations_total"

_EPSILON = 1e-12


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over already-recorded metric series."""

    name: str
    kind: str
    metric: str
    #: Required good fraction in [0, 1] (e.g. 0.95 = "95% of requests").
    target: float
    #: ``latency``: max good observation; ``level``: max good gauge value.
    threshold: float = 0.0
    #: Label filter on ``metric`` series ({} matches every series).
    labels: tuple[tuple[str, str], ...] = ()
    #: ``ratio`` only: the bad-event counter (+ its label filter).
    bad_metric: str = ""
    bad_labels: tuple[tuple[str, str], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_LATENCY, KIND_RATIO, KIND_LEVEL):
            raise ConfigurationError(
                f"unknown SLO kind {self.kind!r}; "
                f"use {KIND_LATENCY!r}, {KIND_RATIO!r} or {KIND_LEVEL!r}"
            )
        if not 0.0 <= self.target <= 1.0:
            raise ConfigurationError("SLO target must be within [0, 1]")
        if self.kind == KIND_RATIO and not self.bad_metric:
            raise ConfigurationError("a ratio objective needs bad_metric")


@dataclass(frozen=True)
class SLOStatus:
    """One objective's evaluated state."""

    objective: SLObjective
    attainment: float
    #: Events (observations / counter increments) the evaluation saw.
    observed: float
    breached: bool
    #: Allowed bad fraction (1 - target).
    error_budget: float
    #: Bad fraction actually spent, as a multiple of the budget (>1 = blown).
    burn_rate: float
    #: Windowed rows (``("short", {...}), ("long", {...})``) when the
    #: engine evaluates against a time-series store; empty otherwise.
    windows: tuple[tuple[str, dict], ...] = ()

    def to_payload(self) -> dict:
        """The JSON row of this status (reports and alert bodies)."""
        row = {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "metric": self.objective.metric,
            "target": self.objective.target,
            "threshold": self.objective.threshold,
            "attainment": round(self.attainment, 9),
            "observed": self.observed,
            "breached": self.breached,
            "error_budget": round(self.error_budget, 9),
            "burn_rate": round(self.burn_rate, 9),
        }
        if self.windows:
            row["windows"] = {name: dict(data) for name, data in self.windows}
        return row


@dataclass(frozen=True)
class SLOReport:
    """Deterministic outcome of one engine evaluation."""

    evaluated_at: float
    statuses: tuple[SLOStatus, ...]

    def breaches(self) -> tuple[SLOStatus, ...]:
        """The objectives currently out of budget."""
        return tuple(status for status in self.statuses if status.breached)

    def to_payload(self) -> dict:
        """The ``slo`` section of a BENCH_obs summary (and ``--slo-out``)."""
        return {
            "evaluated_at": self.evaluated_at,
            "objectives": [status.to_payload() for status in self.statuses],
            "breaches": len(self.breaches()),
        }

    def to_text(self) -> str:
        """Console rendering."""
        lines = [
            f"SLO REPORT (simulated t={self.evaluated_at:.3f}s, "
            f"{len(self.statuses)} objectives, {len(self.breaches())} breached)",
            f"  {'objective':<26} {'kind':<8} {'target':>7} {'attain':>7} "
            f"{'burn':>6}  state",
        ]
        for status in self.statuses:
            state = "BREACH" if status.breached else "ok"
            lines.append(
                f"  {status.objective.name:<26} {status.objective.kind:<8} "
                f"{status.objective.target:>7.3f} {status.attainment:>7.3f} "
                f"{status.burn_rate:>6.2f}  {state}"
            )
        return "\n".join(lines)


def default_objectives() -> tuple[SLObjective, ...]:
    """The platform's stock objectives, all over metrics it already emits.

    The counter/gauge names referencing other subsystems are spelled out
    as literals on purpose: the SLO layer reads metric series by name, it
    must not import the bus or the federation to do so.
    """
    return (
        SLObjective(
            name="request-details-latency",
            kind=KIND_LATENCY,
            metric=PIPELINE_DURATION,
            labels=(("pipeline", "request-details"),),
            target=0.95,
            threshold=0.05,
            description="p95 of request-for-details pipeline ≤ 50 simulated ms",
        ),
        SLObjective(
            name="bus-deadletter-ratio",
            kind=KIND_RATIO,
            metric="bus.published_total",
            bad_metric="bus.deadletter_total",
            target=0.999,
            description="≤ 0.1% of published notifications dead-lettered",
        ),
        SLObjective(
            name="pdp-deny-rate",
            kind=KIND_RATIO,
            metric="xacml.pdp.evaluations_total",
            bad_metric="xacml.pdp.evaluations_total",
            bad_labels=(("decision", "deny"),),
            target=0.5,
            description="most PDP evaluations resolve to permit",
        ),
        SLObjective(
            name="link-delivery",
            kind=KIND_RATIO,
            metric="federation.link.attempts_total",
            bad_metric="federation.link.drops_total",
            target=0.999,
            description="≤ 0.1% of federation link attempts dropped",
        ),
        SLObjective(
            name="node-queues-drained",
            kind=KIND_LEVEL,
            metric="federation.node.queue_depth",
            target=1.0,
            threshold=0.0,
            description="every node's bus queue drains to zero",
        ),
        SLObjective(
            name="tenant-starvation",
            kind=KIND_LEVEL,
            metric="sched.tenant.starvation_seconds",
            target=1.0,
            threshold=2.0,
            description="no tenant's scheduled work waits over 2 simulated s",
        ),
    )


def _matches(series_labels: dict[str, str], wanted: tuple[tuple[str, str], ...]) -> bool:
    return all(series_labels.get(key) == value for key, value in wanted)


def _burn_rate(objective: SLObjective, attainment: float, observed: float) -> float:
    """Bad fraction spent as a multiple of the budget (sentinel on zero)."""
    error_budget = 1.0 - objective.target
    bad_fraction = 1.0 - attainment
    if error_budget > _EPSILON:
        return bad_fraction / error_budget
    return 0.0 if bad_fraction <= _EPSILON else float(observed)


def _histogram_attainment(histogram, threshold: float) -> tuple[float, float]:
    """Good fraction of one (merged) histogram, bucket upper bounds."""
    if histogram is None or histogram.count == 0:
        return 1.0, 0.0  # vacuously met: no demand, no breach
    if histogram.max <= threshold:
        return 1.0, float(histogram.count)
    good = sum(
        bucket_count
        for boundary, bucket_count in zip(histogram.boundaries, histogram.counts)
        if boundary <= threshold
    )
    return good / histogram.count, float(histogram.count)


def _windowed_attainment(objective: SLObjective, histogram_fn, delta_fn,
                         worst_fn) -> tuple[float, float]:
    """(attainment, observed) of one objective from windowed reads.

    The three callables abstract over *which* window is read — the live
    trailing window during evaluation, or a sample-anchored historical
    one when reconstructing a burn trajectory for an incident bundle.
    """
    if objective.kind == KIND_LATENCY:
        return _histogram_attainment(
            histogram_fn(objective.metric, objective.labels),
            objective.threshold,
        )
    if objective.kind == KIND_RATIO:
        total = delta_fn(objective.metric, objective.labels)
        bad = delta_fn(objective.bad_metric, objective.bad_labels)
        if total <= 0.0:
            return 1.0, 0.0
        return max(0.0, 1.0 - bad / total), total
    worst = worst_fn(objective.metric, objective.labels)
    if worst is None:
        return 1.0, 0.0
    return (1.0 if worst <= objective.threshold + _EPSILON else 0.0), 1.0


def windowed_burn_series(store, objective: SLObjective,
                         window: float) -> list[dict]:
    """The burn-rate trajectory of one objective, one point per tick.

    Every point is computed purely from retained time-series samples
    (:meth:`~repro.obs.timeseries.TimeSeriesStore.sample_delta` and
    friends), so the series an incident bundle captures is the same no
    matter when it is asked for — the minutes *before* the trigger, not
    the state at export time.
    """
    points: list[dict] = []
    for at in store.tick_times():
        attainment, observed = _windowed_attainment(
            objective,
            lambda name, labels: store.sample_histogram(name, at, window, labels),
            lambda name, labels: store.sample_delta(name, at, window, labels),
            lambda name, labels: store.sample_gauge_worst(name, at, window, labels),
        )
        points.append({
            "at": at,
            "attainment": round(attainment, 9),
            "observed": observed,
            "burn_rate": round(_burn_rate(objective, attainment, observed), 9),
        })
    return points


class NoopSLOEngine:
    """SLO evaluation disabled (kernel kind ``slo: noop``, the default)."""

    enabled = False

    def evaluate(self) -> SLOReport:
        """An empty report at t=0 — nothing is measured, nothing breaches."""
        return SLOReport(evaluated_at=0.0, statuses=())

    def alert(self, bus, report: SLOReport | None = None) -> int:
        """No alerts."""
        return 0


class SLOEngine:
    """Evaluates objectives against one telemetry backend."""

    enabled = True

    def __init__(self, telemetry, objectives=None, timeseries=None,
                 recorder=None, short_window: float = DEFAULT_SHORT_WINDOW,
                 long_window: float = DEFAULT_LONG_WINDOW) -> None:
        if not getattr(telemetry, "enabled", False):
            raise ConfigurationError(
                "the SLO engine reads metric series; run it against an "
                "enabled telemetry backend (RuntimeConfig(telemetry='inmemory'))"
            )
        if short_window <= 0 or long_window < short_window:
            raise ConfigurationError(
                "SLO windows need 0 < short_window <= long_window"
            )
        self.telemetry = telemetry
        self.clock = telemetry.clock
        self.objectives = tuple(objectives if objectives is not None
                                else default_objectives())
        #: Optional time-series store: when attached, every status also
        #: carries short/long-window attainment + burn instead of only
        #: the lifetime ratio.
        self.timeseries = timeseries
        self.short_window = short_window
        self.long_window = long_window
        self._recorder = (recorder if recorder is not None
                          and getattr(recorder, "enabled", False) else None)
        self._alert_topic_declared = False

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> SLOReport:
        """Evaluate every objective now (simulated clock)."""
        self.telemetry.count(SLO_EVALUATIONS)
        statuses = tuple(self._evaluate_one(o) for o in self.objectives)
        return SLOReport(evaluated_at=self.clock.now(), statuses=statuses)

    def _evaluate_one(self, objective: SLObjective) -> SLOStatus:
        if objective.kind == KIND_LATENCY:
            attainment, observed = self._latency_attainment(objective)
        elif objective.kind == KIND_RATIO:
            attainment, observed = self._ratio_attainment(objective)
        else:
            attainment, observed = self._level_attainment(objective)
        return SLOStatus(
            objective=objective,
            attainment=attainment,
            observed=observed,
            breached=attainment < objective.target - _EPSILON,
            error_budget=1.0 - objective.target,
            # Zero budget: any bad event is an infinite burn; _burn_rate
            # reports a deterministic sentinel instead of dividing by zero.
            burn_rate=_burn_rate(objective, attainment, observed),
            windows=self._windows(objective),
        )

    def _windows(self, objective: SLObjective) -> tuple[tuple[str, dict], ...]:
        """Short/long trailing-window rows, when a store is attached."""
        if self.timeseries is None:
            return ()
        return (
            ("short", self._window_row(objective, self.short_window)),
            ("long", self._window_row(objective, self.long_window)),
        )

    def _window_row(self, objective: SLObjective, window: float) -> dict:
        store = self.timeseries
        attainment, observed = _windowed_attainment(
            objective,
            lambda name, labels: store.windowed_histogram(name, window, labels),
            lambda name, labels: store.delta(name, window, labels),
            lambda name, labels: store.gauge_worst(name, window, labels),
        )
        return {
            "window": window,
            "attainment": round(attainment, 9),
            "observed": observed,
            "burn_rate": round(_burn_rate(objective, attainment, observed), 9),
        }

    def _latency_attainment(self, objective: SLObjective) -> tuple[float, float]:
        """Good fraction = observations ≤ threshold, from bucket counts."""
        total = 0
        good = 0
        for labels, histogram in self.telemetry.metrics.histogram_series(
                objective.metric):
            if not _matches(labels, objective.labels):
                continue
            total += histogram.count
            if histogram.count == 0:
                continue
            if histogram.max <= objective.threshold:
                good += histogram.count
                continue
            for boundary, bucket_count in zip(histogram.boundaries,
                                              histogram.counts):
                if boundary <= objective.threshold:
                    good += bucket_count
        if total == 0:
            return 1.0, 0.0  # vacuously met: no demand, no breach
        return good / total, float(total)

    def _ratio_attainment(self, objective: SLObjective) -> tuple[float, float]:
        total = self._counter_total(objective.metric, objective.labels)
        bad = self._counter_total(objective.bad_metric, objective.bad_labels)
        if total <= 0.0:
            return 1.0, 0.0
        return max(0.0, 1.0 - bad / total), total

    def _level_attainment(self, objective: SLObjective) -> tuple[float, float]:
        series = [
            gauge.value
            for labels, gauge in self.telemetry.metrics.gauge_series(
                objective.metric)
            if _matches(labels, objective.labels)
        ]
        if not series:
            return 1.0, 0.0
        worst = max(series)
        return (1.0 if worst <= objective.threshold + _EPSILON else 0.0,
                float(len(series)))

    def _counter_total(self, name: str,
                       wanted: tuple[tuple[str, str], ...]) -> float:
        return sum(
            counter.value
            for labels, counter in self.telemetry.metrics.counter_series(name)
            if _matches(labels, wanted)
        )

    # -- alerting ------------------------------------------------------------

    def alert(self, bus, report: SLOReport | None = None) -> int:
        """Publish one bus notification per breached objective.

        The alert body is the breach's canonical-JSON status row — metric
        names, thresholds and attainment only — making SLO violations
        first-class platform events any operator service can subscribe to
        without ever widening the privacy surface.
        """
        report = report if report is not None else self.evaluate()
        if not self._alert_topic_declared:
            bus.declare_topic(SLO_ALERT_TOPIC)
            self._alert_topic_declared = True
        for status in report.breaches():
            bus.publish(
                SLO_ALERT_TOPIC,
                sender="slo-engine",
                body=canonical_json({
                    "alert": "slo-breach",
                    "evaluated_at": report.evaluated_at,
                    **status.to_payload(),
                }),
            )
            self.telemetry.count(SLO_ALERTS, objective=status.objective.name)
            if self._recorder is not None:
                self._recorder.record(
                    EVENT_SLO_ALERT,
                    objective=status.objective.name,
                    metric=status.objective.metric,
                    attainment=round(status.attainment, 9),
                    burn_rate=round(status.burn_rate, 9),
                )
        return len(report.breaches())
