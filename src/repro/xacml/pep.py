"""Policy Enforcement Point skeleton.

The PEP is the front door of the policy enforcer (Fig. 4): it receives the
authorization request, asks the PIP to enrich it, hands it to the PDP, and
— on permit — discharges the obligations.  The generic skeleton here knows
nothing about events; :mod:`repro.core.enforcement` subclasses the
behaviour by supplying the obligation handlers (field release, audit).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ObligationError
from repro.xacml.context import Decision, ObligationOutcome, RequestContext, ResponseContext
from repro.xacml.model import PolicySet
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.pip import PolicyInformationPoint

#: An obligation handler consumes (request, obligation outcome).
ObligationHandler = Callable[[RequestContext, ObligationOutcome], None]


class PolicyEnforcementPoint:
    """Orchestrates PIP enrichment, PDP evaluation and obligation discharge."""

    def __init__(
        self,
        pdp: PolicyDecisionPoint | None = None,
        pip: PolicyInformationPoint | None = None,
        enrich_attributes: list[str] | None = None,
    ) -> None:
        self.pdp = pdp or PolicyDecisionPoint()
        self.pip = pip or PolicyInformationPoint()
        self._enrich_attributes = list(enrich_attributes or [])
        self._handlers: dict[str, ObligationHandler] = {}

    def on_obligation(self, obligation_id: str, handler: ObligationHandler) -> None:
        """Register the handler discharging ``obligation_id``."""
        self._handlers[obligation_id] = handler

    def authorize(self, policy_set: PolicySet, request: RequestContext) -> ResponseContext:
        """Run the full PEP pipeline and return the final response.

        ``NOT_APPLICABLE`` and ``INDETERMINATE`` are mapped to ``DENY`` —
        deny-by-default.  On permit, every obligation must have a handler
        and every handler must succeed, otherwise the permit is downgraded
        to deny (XACML's "must fulfill all obligations" requirement).
        """
        enriched = self.pip.enrich(request, self._enrich_attributes)
        response = self.pdp.evaluate_policy_set(policy_set, enriched)
        if response.decision is not Decision.PERMIT:
            if response.decision is Decision.NOT_APPLICABLE:
                reason = "no matching policy (deny-by-default)"
            else:
                reason = f"mapped {response.decision.value} to Deny"
            return ResponseContext(
                Decision.DENY,
                obligations=response.obligations,
                status_message=response.status_message or reason,
            )
        try:
            for outcome in response.obligations:
                handler = self._handlers.get(outcome.obligation_id)
                if handler is None:
                    raise ObligationError(
                        f"no handler for obligation {outcome.obligation_id!r}"
                    )
                handler(enriched, outcome)
        except ObligationError as exc:
            return ResponseContext(Decision.DENY, status_message=str(exc))
        return response
