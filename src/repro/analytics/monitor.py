"""The governing body's process monitor.

Computes service-delivery statistics from the events index.  Everything
here reads *notification metadata only* — event class, producer,
occurrence time, and the (still sealed) subject reference used solely to
count distinct citizens — never a detail payload, so the monitor needs no
detail policies: it sees exactly what the index already holds, aggregated
and suppression-protected.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.analytics.suppression import SuppressedCount, suppress, suppress_small_cells
from repro.core.controller import DataController
from repro.core.index import OBJECT_TYPE, SCHEME_EVENT_CLASS, SCHEME_PRODUCER
from repro.exceptions import ConfigurationError


@dataclass
class VolumeReport:
    """Event volumes over time buckets, per class."""

    bucket_seconds: float
    buckets: dict[int, dict[str, SuppressedCount]] = field(default_factory=dict)
    threshold: int = 1

    def bucket_of(self, instant: float) -> int:
        """The bucket index an instant falls into."""
        return int(math.floor(instant / self.bucket_seconds))

    def total_lower_bound(self) -> int:
        """Sum of safe lower bounds across all cells."""
        return sum(
            cell.lower_bound()
            for breakdown in self.buckets.values()
            for cell in breakdown.values()
        )

    def to_text(self) -> str:
        """Printable report (one row per bucket)."""
        lines = [f"SERVICE VOLUME (bucket = {self.bucket_seconds:.0f}s, "
                 f"suppression k = {self.threshold})"]
        for bucket in sorted(self.buckets):
            cells = ", ".join(
                f"{name}={cell.display}"
                for name, cell in sorted(self.buckets[bucket].items())
            )
            lines.append(f"  bucket {bucket:>5}: {cells}")
        return "\n".join(lines)


class ProcessMonitor:
    """Aggregate monitoring over the events index (the §2 governing-body view)."""

    def __init__(self, controller: DataController, suppression_threshold: int = 5) -> None:
        if suppression_threshold < 1:
            raise ConfigurationError("suppression threshold must be at least 1")
        self._controller = controller
        self.threshold = suppression_threshold

    # -- raw metadata access (internal) -------------------------------------

    def _objects(self):
        return self._controller.index.registry.by_type(OBJECT_TYPE)

    # -- breakdowns ----------------------------------------------------------

    def class_breakdown(self) -> dict[str, SuppressedCount]:
        """Events per class, suppression-protected."""
        counts: dict[str, int] = defaultdict(int)
        for obj in self._objects():
            counts[obj.classification_node(SCHEME_EVENT_CLASS) or "?"] += 1
        return suppress_small_cells(dict(counts), self.threshold)

    def producer_breakdown(self) -> dict[str, SuppressedCount]:
        """Events per producing institution, suppression-protected."""
        counts: dict[str, int] = defaultdict(int)
        for obj in self._objects():
            counts[obj.classification_node(SCHEME_PRODUCER) or "?"] += 1
        return suppress_small_cells(dict(counts), self.threshold)

    def volume_report(self, bucket_seconds: float = 86400.0) -> VolumeReport:
        """Events per (time bucket × class)."""
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket_seconds must be positive")
        report = VolumeReport(bucket_seconds=bucket_seconds, threshold=self.threshold)
        raw: dict[int, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for obj in self._objects():
            occurred_at = float(obj.slot_value("occurredAt") or 0.0)
            event_class = obj.classification_node(SCHEME_EVENT_CLASS) or "?"
            raw[report.bucket_of(occurred_at)][event_class] += 1
        for bucket, breakdown in raw.items():
            report.buckets[bucket] = suppress_small_cells(dict(breakdown), self.threshold)
        return report

    # -- citizen-level aggregates (distinct counts only) ------------------------

    def distinct_citizens_served(self, event_type: str | None = None) -> SuppressedCount:
        """How many distinct citizens received services (optionally per class).

        Counts distinct *sealed* subject references without opening them —
        tokens are unique per notification, so distinctness comes from the
        controller's id map, which records the subject of each event.
        The result is still suppression-protected.
        """
        subjects = {
            entry.subject_ref
            for entry in self._controller.id_map._by_global.values()  # noqa: SLF001
            if event_type is None or entry.event_type == event_type
        }
        return suppress(len(subjects), self.threshold)

    def events_per_citizen(self, event_type: str | None = None) -> float:
        """Average service intensity: events per served citizen.

        Returns 0.0 when the distinct-citizen count is suppressed — the
        ratio would otherwise leak the small denominator.
        """
        distinct = self.distinct_citizens_served(event_type)
        if distinct.suppressed or not distinct.value:
            return 0.0
        total = sum(
            1
            for entry in self._controller.id_map._by_global.values()  # noqa: SLF001
            if event_type is None or entry.event_type == event_type
        )
        return total / distinct.value

    # -- service efficiency -----------------------------------------------------

    def access_latency_report(self) -> dict[str, float]:
        """Median delay between publication and first detail request, per class.

        A process-efficiency signal the paper's monitoring goal implies:
        how quickly downstream caregivers act on new events.  Computed from
        audit metadata (publish and detail-request timestamps), not from
        payloads.
        """
        from repro.audit.log import AuditAction, AuditOutcome

        published_at: dict[str, tuple[str, float]] = {}
        first_request: dict[str, float] = {}
        for record in self._controller.audit_log.records():
            if record.action is AuditAction.PUBLISH and record.event_id:
                published_at[record.event_id] = (record.event_type or "?",
                                                 record.timestamp)
            elif (record.action is AuditAction.DETAIL_REQUEST
                  and record.outcome is AuditOutcome.PERMIT
                  and record.event_id and record.event_id not in first_request):
                first_request[record.event_id] = record.timestamp
        delays: dict[str, list[float]] = defaultdict(list)
        for event_id, request_time in first_request.items():
            if event_id in published_at:
                event_type, publish_time = published_at[event_id]
                delays[event_type].append(request_time - publish_time)
        medians = {}
        for event_type, values in delays.items():
            values.sort()
            medians[event_type] = values[len(values) // 2]
        return medians
