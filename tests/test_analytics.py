"""Unit and integration tests for the process-monitoring analytics."""

import pytest

from repro.analytics import ProcessMonitor, suppress_small_cells
from repro.analytics.suppression import suppress
from repro.clock import DAY
from repro.exceptions import ConfigurationError
from repro.sim.scenario import CssScenario, ScenarioConfig


class TestSuppression:
    def test_counts_at_or_above_threshold_pass(self):
        assert suppress(5, 5).value == 5
        assert suppress(100, 5).display == "100"

    def test_small_positive_counts_suppressed(self):
        cell = suppress(3, 5)
        assert cell.suppressed
        assert cell.value is None
        assert cell.display == "<5"
        assert cell.lower_bound() == 0

    def test_zero_is_not_suppressed(self):
        assert suppress(0, 5).value == 0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            suppress(1, 0)

    def test_breakdown_suppression(self):
        cells = suppress_small_cells({"a": 10, "b": 2, "c": 0}, 5)
        assert cells["a"].value == 10
        assert cells["b"].suppressed
        assert cells["c"].value == 0


@pytest.fixture(scope="module")
def monitored_scenario():
    config = ScenarioConfig(n_patients=15, n_events=120,
                            detail_request_rate=0.5, seed=21)
    scenario = CssScenario(config)
    scenario.run()
    return scenario


class TestProcessMonitor:
    def test_class_breakdown_totals_match_index(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=1)
        breakdown = monitor.class_breakdown()
        total = sum(cell.value or 0 for cell in breakdown.values())
        assert total == len(monitored_scenario.controller.index)

    def test_producer_breakdown_covers_all_producers(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=1)
        breakdown = monitor.producer_breakdown()
        assert set(breakdown) <= set(monitored_scenario.producers)

    def test_volume_report_buckets_sum_to_total(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=1)
        report = monitor.volume_report(bucket_seconds=DAY)
        assert report.total_lower_bound() == len(monitored_scenario.controller.index)

    def test_volume_report_renders(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller)
        text = monitor.volume_report(bucket_seconds=DAY).to_text()
        assert "SERVICE VOLUME" in text

    def test_small_cells_are_suppressed_in_reports(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=10**6)  # suppress everything >0
        breakdown = monitor.class_breakdown()
        assert all(cell.suppressed for cell in breakdown.values() if cell.value != 0)

    def test_distinct_citizens_served(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=1)
        distinct = monitor.distinct_citizens_served()
        assert distinct.value is not None
        assert 1 <= distinct.value <= 15

    def test_distinct_citizens_per_class_suppression(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=10**6)
        assert monitor.distinct_citizens_served("BloodTest").suppressed

    def test_events_per_citizen(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=1)
        intensity = monitor.events_per_citizen()
        assert intensity >= 1.0

    def test_events_per_citizen_guarded_by_suppression(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller,
                                 suppression_threshold=10**6)
        assert monitor.events_per_citizen() == 0.0

    def test_access_latency_report(self, monitored_scenario):
        monitor = ProcessMonitor(monitored_scenario.controller)
        latencies = monitor.access_latency_report()
        # The scenario requests details immediately after publication.
        assert latencies
        assert all(delay >= 0.0 for delay in latencies.values())

    def test_bad_configuration_rejected(self, monitored_scenario):
        with pytest.raises(ConfigurationError):
            ProcessMonitor(monitored_scenario.controller, suppression_threshold=0)
        monitor = ProcessMonitor(monitored_scenario.controller)
        with pytest.raises(ConfigurationError):
            monitor.volume_report(bucket_seconds=0)

    def test_monitor_never_touches_detail_payloads(self, monitored_scenario):
        """The monitor runs entirely on metadata: no gateway calls happen."""
        controller = monitored_scenario.controller
        before = {
            name: controller.endpoints.get(name).stats.calls
            for name in controller.endpoints.names() if name.startswith("gateway.")
        }
        monitor = ProcessMonitor(controller)
        monitor.class_breakdown()
        monitor.producer_breakdown()
        monitor.volume_report(bucket_seconds=DAY)
        monitor.distinct_citizens_served()
        monitor.access_latency_report()
        after = {
            name: controller.endpoints.get(name).stats.calls
            for name in controller.endpoints.names() if name.startswith("gateway.")
        }
        assert before == after
