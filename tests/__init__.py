"""Test suite for the CSS reproduction (importable as the ``tests`` package)."""
