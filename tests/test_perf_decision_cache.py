"""The versioned PDP decision cache (``repro.perf.decision_cache``).

Unit coverage of the epoch-vector guard, then the three end-to-end
invalidation triggers of the ISSUE: a policy revocation, a consent
opt-out and an endpoint withdrawal each bump their monotonic epoch, and
a previously-permitted cached decision is evicted and re-evaluated —
deny-by-default can never be outlived by a stale fast path.
"""

import pytest

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig
from repro.core.consent import ConsentScope
from repro.core.enforcement import DetailRequest
from repro.exceptions import AccessDeniedError
from repro.perf.decision_cache import CachedDecision, DecisionCache
from tests.conftest import blood_test_schema


class TestDecisionCacheUnit:
    def test_lookup_returns_only_same_epoch_entries(self):
        cache = DecisionCache()
        decision = CachedDecision(permitted=True,
                                  released_fields=frozenset({"Hemoglobin"}))
        cache.store("k1", (1, 0, 2), decision)
        assert cache.lookup("k1", (1, 0, 2)) is decision
        assert cache.lookup("missing", (1, 0, 2)) is None

    def test_stale_entries_are_evicted_on_sight(self):
        cache = DecisionCache()
        cache.store("k1", (1, 0, 2), CachedDecision(permitted=True))
        assert cache.lookup("k1", (2, 0, 2)) is None
        assert cache.stats.evicted_stale == 1
        # Evicted for good: even the original vector no longer finds it.
        assert cache.lookup("k1", (1, 0, 2)) is None
        assert len(cache) == 0

    def test_capacity_reset_keeps_the_cache_bounded(self):
        cache = DecisionCache(max_entries=4)
        for index in range(4):
            cache.store(f"k{index}", (0,), CachedDecision(permitted=False))
        assert len(cache) == 4
        cache.store("overflow", (0,), CachedDecision(permitted=False))
        assert len(cache) == 1
        assert cache.lookup("overflow", (0,)) is not None

    def test_invalidate_all_drops_everything(self):
        cache = DecisionCache()
        cache.store("k1", (0,), CachedDecision(permitted=True))
        cache.store("k2", (0,), CachedDecision(permitted=True))
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 1


def build_world():
    controller = DataController(
        seed="perf-cache", runtime=RuntimeConfig(perf="indexed"))
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    result = hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"])
    notification = hospital.publish(
        blood, subject_id="pat-1", subject_name="Mario Bianchi",
        summary="done",
        details={"PatientId": "pat-1", "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})
    return controller, hospital, doctor, notification, result


class TestEndToEndInvalidation:
    def request(self, doctor, notification):
        return doctor.request_details(notification, "healthcare-treatment")

    def test_repeated_requests_hit_the_cache(self):
        controller, hospital, doctor, notification, _ = build_world()
        self.request(doctor, notification)
        hits_before = controller.perf.stats.hits.get("decision", 0)
        self.request(doctor, notification)
        assert controller.perf.stats.hits.get("decision", 0) == hits_before + 1
        assert len(controller.perf.decisions) > 0

    def test_policy_revocation_flips_a_cached_permit_to_deny(self):
        controller, hospital, doctor, notification, result = build_world()
        detail = self.request(doctor, notification)
        assert detail.exposed_values()
        evicted_before = controller.perf.decisions.stats.evicted_stale

        for policy in result.policies:
            controller.policies.revoke(policy.policy_id)

        with pytest.raises(AccessDeniedError,
                           match="no matching policy"):
            self.request(doctor, notification)
        assert controller.perf.decisions.stats.evicted_stale \
            == evicted_before + 1

    def test_consent_opt_out_bumps_the_version_and_denies(self):
        controller, hospital, doctor, notification, _ = build_world()
        self.request(doctor, notification)
        version_before = hospital.consent.version
        evicted_before = controller.perf.decisions.stats.evicted_stale

        hospital.record_opt_out("pat-1", ConsentScope.DETAILS, "BloodTest")

        assert hospital.consent.version > version_before
        # The consent interceptor denies upstream of the decide stage —
        # the cached policy permit cannot bypass a withdrawn consent.
        with pytest.raises(AccessDeniedError):
            self.request(doctor, notification)
        # And the decide-stage cache itself is versioned against the
        # consent registry: the next PDP lookup evicts the stale entry.
        request = DetailRequest(
            actor=doctor.actor, event_type="BloodTest",
            event_id=notification.event_id, purpose="healthcare-treatment",
        )
        controller.enforcer.decide(request)
        assert controller.perf.decisions.stats.evicted_stale \
            == evicted_before + 1

    def test_endpoint_withdrawal_bumps_the_epoch_and_evicts(self):
        controller, hospital, doctor, notification, _ = build_world()
        self.request(doctor, notification)
        epoch_before = controller.endpoints.epoch
        misses_before = controller.perf.stats.misses.get("decision", 0)
        evicted_before = controller.perf.decisions.stats.evicted_stale

        controller.endpoints.expose("transient-gateway", lambda request: request)
        controller.endpoints.withdraw("transient-gateway")

        assert controller.endpoints.epoch == epoch_before + 2
        # The cached decision was versioned against the old epoch: the
        # next request evicts it and re-evaluates from the repository.
        self.request(doctor, notification)
        assert controller.perf.decisions.stats.evicted_stale \
            == evicted_before + 1
        assert controller.perf.stats.misses.get("decision", 0) \
            == misses_before + 1

    def test_cached_and_fresh_decisions_agree(self):
        controller, hospital, doctor, notification, _ = build_world()
        first = self.request(doctor, notification)
        second = self.request(doctor, notification)
        assert first.released_fields == second.released_fields
        assert first.exposed_values() == second.exposed_values()
