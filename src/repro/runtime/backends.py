"""Durable backend implementations of the runtime interfaces.

The in-memory classes (:class:`~repro.core.index.EventsIndex`,
:class:`~repro.audit.log.AuditLog`) are the reference implementations; the
JSONL-backed pair here proves the multi-backend seam: both write through to
append-only JSON-lines files (:mod:`repro.storage.jsonl`) and replay them
on start, so a platform restarted over the same data directory sees its
indexed notifications (identity slots still sealed — the files never hold
plaintext identities) and its hash-chained audit trail.

Select them through the kernel::

    RuntimeConfig(index_store="jsonl", audit_sink="jsonl", data_dir="...")
"""

from __future__ import annotations

from pathlib import Path

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.core.index import EventsIndex, SealedIdentity
from repro.core.messages import NotificationMessage
from repro.exceptions import TamperedLogError
from repro.registry.objects import LifecycleStatus, RegistryObject, Slot
from repro.storage.jsonl import JsonlFile


class JsonlAuditSink:
    """Hash-chained audit log with JSONL write-through persistence.

    Every appended record lands in ``audit.jsonl`` together with its chain
    digest.  On construction an existing file is replayed into a fresh
    chain and the stored head digest re-verified, so tampering with the
    file is detected at load time, not at the next guarantor review.
    """

    def __init__(self, path: str | Path) -> None:
        self._log = AuditLog()
        self._file = JsonlFile(path)
        self._replay()

    @property
    def path(self) -> Path:
        """The backing JSONL file."""
        return self._file.path

    def _replay(self) -> None:
        rows = self._file.read_all()
        for row in rows:
            digest = self._log.append(AuditRecord(
                record_id=row["record_id"],
                timestamp=row["timestamp"],
                actor=row["actor"],
                action=AuditAction(row["action"]),
                outcome=AuditOutcome(row["outcome"]),
                event_id=row["event_id"],
                event_type=row["event_type"],
                subject_ref=row["subject_ref"],
                purpose=row["purpose"],
                detail=row["detail"],
            ))
            if row.get("digest") not in (None, digest):
                raise TamperedLogError(
                    f"{self.path}: stored digest of record "
                    f"{row['record_id']!r} does not replay"
                )

    # -- AuditSink ---------------------------------------------------------

    def append(self, record: AuditRecord) -> str:
        """Append ``record``, write it through to disk, return its digest."""
        digest = self._log.append(record)
        self._file.append({**record.to_payload(), "digest": digest})
        return digest

    def records(self) -> tuple[AuditRecord, ...]:
        """A snapshot of all records, oldest first."""
        return self._log.records()

    def record_at(self, index: int) -> AuditRecord:
        """The record at position ``index`` (0-based)."""
        return self._log.record_at(index)

    @property
    def head_digest(self) -> str:
        """Digest of the latest chain link."""
        return self._log.head_digest

    def verify_integrity(self) -> None:
        """Re-hash every record against the chain."""
        self._log.verify_integrity()

    def __len__(self) -> int:
        return len(self._log)


class JsonlIndexStore:
    """Events index with JSONL write-through persistence.

    Wraps the in-memory :class:`EventsIndex` (queries, decryption and the
    nonce sequence behave identically) and appends every stored registry
    object — identity slots sealed — to ``index.jsonl``.  On construction
    an existing file is replayed via the raw-restore path, and the nonce
    sequence fast-forwarded so no keystream is reused after a restart.
    """

    def __init__(self, path: str | Path, keystore, encrypt_identity: bool = True) -> None:
        self._inner = EventsIndex(keystore, encrypt_identity=encrypt_identity)
        self._file = JsonlFile(path)
        self._replay()

    @property
    def path(self) -> Path:
        """The backing JSONL file."""
        return self._file.path

    def _replay(self) -> None:
        sequence = 0
        for row in self._file.read_all():
            obj = RegistryObject(
                object_id=row["object_id"], object_type=row["object_type"],
                name=row["name"], description=row["description"],
            )
            for classification in row["classifications"]:
                obj.classify(classification["scheme"], classification["node"])
            for slot_name, values in row["slots"].items():
                obj.slots[slot_name] = Slot(slot_name, tuple(values))
            self._inner.restore_raw(obj)
            obj.status = LifecycleStatus(row["status"])
            sequence = max(sequence, int(row.get("sequence", 0)))
        if sequence:
            self._inner.restore_sequence(sequence)

    # -- IndexStore --------------------------------------------------------

    def seal_identity(self, notification: NotificationMessage) -> SealedIdentity:
        """Seal the identifying slots (crypto stage pass-through)."""
        return self._inner.seal_identity(notification)

    def store(self, notification: NotificationMessage,
              sealed: SealedIdentity | None = None) -> RegistryObject:
        """Index a notification and append its sealed row to disk."""
        obj = self._inner.store(notification, sealed=sealed)
        self._file.append({
            "object_id": obj.object_id, "object_type": obj.object_type,
            "name": obj.name, "description": obj.description,
            "status": obj.status.value,
            "classifications": [
                {"scheme": c.scheme, "node": c.node} for c in obj.classifications
            ],
            "slots": {name: list(slot.values) for name, slot in obj.slots.items()},
            "sequence": self._inner.sequence,
        })
        return obj

    def restore_raw(self, obj: RegistryObject) -> None:
        """Re-insert an archived registry object (archive-restore path)."""
        self._inner.restore_raw(obj)

    def get(self, event_id: str) -> NotificationMessage:
        """Rebuild the notification stored under ``event_id``."""
        return self._inner.get(event_id)

    def inquire(self, event_types, since=None, until=None, producer_id=None):
        """Query notifications of the authorized ``event_types``."""
        return self._inner.inquire(event_types, since=since, until=until,
                                   producer_id=producer_id)

    def count_for_type(self, event_type: str) -> int:
        """Number of indexed notifications of one class."""
        return self._inner.count_for_type(event_type)

    def restore_sequence(self, value: int) -> None:
        """Fast-forward the nonce counter (archive-restore path)."""
        self._inner.restore_sequence(value)

    @property
    def encrypt_identity(self) -> bool:
        """Whether identity slots are sealed (ablation A2 switch)."""
        return self._inner.encrypt_identity

    @property
    def registry(self):
        """The underlying ebXML-style registry (read-mostly)."""
        return self._inner.registry

    @property
    def sequence(self) -> int:
        """The nonce sequence counter."""
        return self._inner.sequence

    @property
    def stats(self):
        """The inner index's instrumentation counters."""
        return self._inner.stats

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, event_id: str) -> bool:
        return event_id in self._inner
