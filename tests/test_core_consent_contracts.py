"""Unit tests for repro.core.consent and repro.core.contracts."""

import pytest

from repro.core.actors import ActorKind
from repro.core.consent import ConsentDecision, ConsentRegistry, ConsentScope
from repro.core.contracts import Contract, ContractRegistry, ContractStatus
from repro.exceptions import (
    AlreadyRegisteredError,
    ConsentError,
    ContractInactiveError,
    NotRegisteredError,
)


class TestConsentRegistry:
    def test_default_opt_out_regime_grants(self):
        registry = ConsentRegistry("Hospital", default_granted=True)
        assert registry.allows_notification("p1", "BloodTest")
        assert registry.allows_details("p1", "BloodTest")

    def test_default_opt_in_regime_denies(self):
        registry = ConsentRegistry("Hospital", default_granted=False)
        assert not registry.allows_notification("p1", "BloodTest")

    def test_opt_out_of_all_classes(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.NOTIFICATIONS)
        assert not registry.allows_notification("p1", "BloodTest")
        assert not registry.allows_notification("p1", "Anything")
        assert registry.allows_notification("p2", "BloodTest")

    def test_class_specific_opt_out(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.NOTIFICATIONS, "BloodTest")
        assert not registry.allows_notification("p1", "BloodTest")
        assert registry.allows_notification("p1", "HomeCare")

    def test_specific_decision_overrides_general(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.NOTIFICATIONS)           # general out
        registry.opt_in("p1", ConsentScope.NOTIFICATIONS, "BloodTest")  # specific in
        assert registry.allows_notification("p1", "BloodTest")
        assert not registry.allows_notification("p1", "HomeCare")

    def test_later_decision_wins_at_same_specificity(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.DETAILS, "BloodTest", at=1.0)
        registry.opt_in("p1", ConsentScope.DETAILS, "BloodTest", at=2.0)
        assert registry.allows_details("p1", "BloodTest")

    def test_details_opt_out_keeps_notifications(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.DETAILS, "BloodTest")
        assert registry.allows_notification("p1", "BloodTest")
        assert not registry.allows_details("p1", "BloodTest")

    def test_notification_opt_out_implies_details_opt_out(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.NOTIFICATIONS, "BloodTest")
        assert not registry.allows_details("p1", "BloodTest")

    def test_decision_history_kept(self):
        registry = ConsentRegistry("Hospital")
        registry.opt_out("p1", ConsentScope.DETAILS)
        registry.opt_in("p1", ConsentScope.DETAILS)
        assert len(registry.decisions_of("p1")) == 2
        assert len(registry) == 2

    def test_empty_subject_rejected(self):
        registry = ConsentRegistry("Hospital")
        with pytest.raises(ConsentError):
            registry.record(ConsentDecision("", ConsentScope.DETAILS, True))


class TestContracts:
    def contract(self, kind: ActorKind = ActorKind.PRODUCER,
                 valid_until: float | None = None) -> Contract:
        return Contract(party_id="Hospital", kind=kind, signed_at=0.0,
                        valid_until=valid_until)

    def test_sign_and_get(self):
        registry = ContractRegistry()
        registry.sign(self.contract())
        assert "Hospital" in registry
        assert registry.get("Hospital").kind is ActorKind.PRODUCER

    def test_double_sign_rejected(self):
        registry = ContractRegistry()
        registry.sign(self.contract())
        with pytest.raises(AlreadyRegisteredError):
            registry.sign(self.contract())

    def test_unknown_party_rejected(self):
        with pytest.raises(NotRegisteredError):
            ContractRegistry().get("nobody")

    def test_active_window(self):
        contract = self.contract(valid_until=100.0)
        assert contract.is_active_at(50.0)
        assert contract.is_active_at(100.0)
        assert not contract.is_active_at(101.0)

    def test_suspend_and_reinstate(self):
        registry = ContractRegistry()
        registry.sign(self.contract())
        registry.suspend("Hospital")
        assert not registry.get("Hospital").is_active_at(0.0)
        registry.reinstate("Hospital")
        assert registry.get("Hospital").is_active_at(0.0)

    def test_terminate_is_permanent(self):
        registry = ContractRegistry()
        registry.sign(self.contract())
        registry.terminate("Hospital")
        with pytest.raises(ContractInactiveError):
            registry.reinstate("Hospital")

    def test_require_active_checks_expiry(self):
        registry = ContractRegistry()
        registry.sign(self.contract(valid_until=10.0))
        registry.require_active("Hospital", 5.0)
        with pytest.raises(ContractInactiveError):
            registry.require_active("Hospital", 20.0)

    def test_require_active_checks_kind(self):
        registry = ContractRegistry()
        registry.sign(self.contract(kind=ActorKind.PRODUCER))
        registry.require_active("Hospital", 0.0, must_produce=True)
        with pytest.raises(ContractInactiveError):
            registry.require_active("Hospital", 0.0, must_consume=True)

    def test_both_kind_satisfies_either(self):
        registry = ContractRegistry()
        registry.sign(Contract(party_id="B", kind=ActorKind.BOTH, signed_at=0.0))
        registry.require_active("B", 0.0, must_produce=True, must_consume=True)

    def test_status_enum(self):
        assert ContractStatus.ACTIVE.value == "active"
