"""Stitching per-node span exports into federated traces.

Each federation node exports its own JSONL span trace (one canonical-JSON
line per finished span).  Because every tracer mints ids under its
guard-hashed site prefix and remote spans adopt the caller's trace id via
:class:`~repro.obs.context.TraceContext`, the union of all exports
already forms coherent trees — this module just merges them, the same
total-ordering discipline the federated guarantor inquiry applies to
audit records: deterministic sort keys, no wall clock, byte-identical
output for byte-identical inputs.

Spans inside a trace are ordered by ``(start, span_id)``; traces by the
earliest span's start, then trace id.  A parent referenced by a span but
missing from the merged set (a node's export was not collected) makes
the span an *orphan* — counted, never dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.crypto.hashing import canonical_json


def _site_of(span_id: str) -> str:
    """The site prefix a tracer stamped into an id ('' when unprefixed)."""
    head, sep, _ = span_id.rpartition("/")
    return head if sep else ""


@dataclass(frozen=True)
class StitchedTrace:
    """One federated trace: every node's spans, totally ordered."""

    trace_id: str
    spans: tuple[dict, ...]

    @property
    def root(self) -> dict | None:
        """The span every other span (transitively) parents into, if present."""
        known = {span["span_id"] for span in self.spans}
        for span in self.spans:
            if span["parent_id"] is None or span["parent_id"] not in known:
                return span
        return None

    @property
    def sites(self) -> tuple[str, ...]:
        """Distinct (hashed) site prefixes contributing spans, sorted."""
        return tuple(sorted({_site_of(span["span_id"]) for span in self.spans}))

    @property
    def is_cross_node(self) -> bool:
        """Whether spans from more than one site joined this trace."""
        return len(self.sites) > 1

    def orphan_spans(self) -> tuple[dict, ...]:
        """Spans whose parent is named but absent from the merged set."""
        known = {span["span_id"] for span in self.spans}
        return tuple(
            span for span in self.spans
            if span["parent_id"] is not None and span["parent_id"] not in known
        )

    def span_named(self, name: str) -> dict | None:
        """The first span with the given name, in trace order."""
        for span in self.spans:
            if span["name"] == name:
                return span
        return None


def parse_span_lines(lines: Iterable[str]) -> list[dict]:
    """JSONL span-export lines back into span dicts."""
    return [json.loads(line) for line in lines if line.strip()]


def stitch(
    exports: Mapping[str, Iterable[str]] | Iterable[str],
) -> list[StitchedTrace]:
    """Merge span exports into total-ordered federated traces.

    ``exports`` is either one JSONL export or a mapping of node id →
    export (the shape :meth:`FederatedPlatform.trace_exports` returns);
    the mapping keys only scope iteration — ordering and identity come
    entirely from the span ids, so collection order cannot change the
    result.
    """
    if isinstance(exports, Mapping):
        spans = [
            span
            for key in sorted(exports)
            for span in parse_span_lines(exports[key])
        ]
    else:
        spans = parse_span_lines(exports)

    by_trace: dict[str, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)

    traces = []
    for trace_id, members in by_trace.items():
        members.sort(key=lambda span: (span["start"], span["span_id"]))
        traces.append(StitchedTrace(trace_id=trace_id, spans=tuple(members)))
    traces.sort(key=lambda trace: (trace.spans[0]["start"], trace.trace_id))
    return traces


def stitched_lines(traces: Iterable[StitchedTrace]) -> list[str]:
    """One canonical-JSON line per span, grouped in stitched trace order."""
    return [
        canonical_json(span) for trace in traces for span in trace.spans
    ]


def stitch_summary(traces: list[StitchedTrace]) -> dict:
    """The ``stitched_trace`` section of a BENCH_obs summary."""
    return {
        "traces": len(traces),
        "spans": sum(len(trace.spans) for trace in traces),
        "cross_node_traces": sum(1 for trace in traces if trace.is_cross_node),
        "orphan_spans": sum(len(trace.orphan_spans()) for trace in traces),
    }


def render_stitch_table(traces: list[StitchedTrace], limit: int = 10) -> str:
    """Console summary of the largest stitched traces."""
    if not traces:
        return "(no spans to stitch)"
    summary = stitch_summary(traces)
    rendered = [
        f"stitched {summary['traces']} traces / {summary['spans']} spans "
        f"({summary['cross_node_traces']} cross-node, "
        f"{summary['orphan_spans']} orphan spans)",
        f"  {'trace':<24} {'spans':>5} {'sites':>5}  root",
    ]
    largest = sorted(traces, key=lambda t: (-len(t.spans), t.trace_id))[:limit]
    for trace in largest:
        root = trace.root
        rendered.append(
            f"  {trace.trace_id:<24} {len(trace.spans):>5} "
            f"{len(trace.sites):>5}  {root['name'] if root else '?'}"
        )
    return "\n".join(rendered)
