"""Tests for the segmented storage engine.

Segment framing and crash repair, sparse-index seeks, point-in-time
truncation, compaction (and the audit-immutability rule), snapshots with
corruption detection and restore-to-sequence, the kernel ``store`` kind,
privacy-guarded storage telemetry, and the ``repro store`` CLI.
"""

import io
import json

import pytest

from repro.exceptions import (
    ConfigurationError,
    CorruptRecordError,
    RecoveryError,
    SnapshotError,
    StorageError,
)
from repro.storage import (
    JsonlStore,
    SegmentedLog,
    SegmentedStore,
    SnapshotManager,
    StorageEngine,
    compact,
)
from repro.storage.segment import decode_frame, encode_frame


def small_log(directory, n=40, segment_bytes=512):
    log = SegmentedLog(directory, segment_bytes=segment_bytes, sparse_every=4)
    for i in range(n):
        log.append({"object_id": f"ev-{i % 5}", "status": "submitted", "n": i})
    return log


class TestSegmentFraming:
    def test_frame_round_trips(self):
        frame = encode_frame(7, {"b": 2, "a": 1})
        sequence, record = decode_frame(frame.rstrip(b"\n"))
        assert sequence == 7
        assert record == {"a": 1, "b": 2}

    def test_bad_checksum_rejected(self):
        frame = encode_frame(7, {"a": 1}).rstrip(b"\n")
        tampered = (b"0" * 8) + frame[8:]
        with pytest.raises(ValueError):
            decode_frame(tampered)


class TestSegmentedLog:
    def test_append_iterate_round_trip(self, tmp_path):
        log = small_log(tmp_path / "log")
        assert len(log) == 40
        assert log.sequence == 40
        entries = list(log.iter_entries())
        assert [sequence for sequence, _ in entries] == list(range(1, 41))
        assert entries[0][1]["n"] == 0

    def test_size_bound_rolls_segments(self, tmp_path):
        log = small_log(tmp_path / "log")
        assert len(log.segments()) > 1
        assert sum(info.records for info in log.segments()) == 40

    def test_reopen_replays_identically(self, tmp_path):
        log = small_log(tmp_path / "log")
        reopened = SegmentedLog(tmp_path / "log", segment_bytes=512,
                                sparse_every=4)
        assert reopened.read_all() == log.read_all()
        assert reopened.sequence == 40
        assert reopened.last_replay.truncated_bytes == 0

    def test_sparse_seek_skips_earlier_records(self, tmp_path):
        log = small_log(tmp_path / "log")
        assert [s for s, _ in log.iter_entries(start=37)] == [37, 38, 39, 40]
        # A start that is not a sparse-index point still lands exactly.
        assert next(log.iter_entries(start=6))[0] == 6

    def test_torn_tail_is_truncated_on_replay(self, tmp_path):
        small_log(tmp_path / "log")
        last = sorted((tmp_path / "log").glob("*.seg"))[-1]
        with last.open("ab") as handle:
            handle.write(b'00000000 41 {"torn": tr')  # no newline: uncommitted
        reopened = SegmentedLog(tmp_path / "log", segment_bytes=512,
                                sparse_every=4)
        assert len(reopened) == 40
        assert reopened.last_replay.truncated_bytes > 0
        # The repaired log accepts new appends at the next sequence.
        assert reopened.append({"after": "repair"}) == 41

    def test_mid_log_damage_is_corruption_not_torn_tail(self, tmp_path):
        small_log(tmp_path / "log")
        first = sorted((tmp_path / "log").glob("*.seg"))[0]
        data = bytearray(first.read_bytes())
        data[12] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(CorruptRecordError):
            SegmentedLog(tmp_path / "log", segment_bytes=512, sparse_every=4)

    def test_truncate_to_removes_later_records(self, tmp_path):
        log = small_log(tmp_path / "log")
        removed = log.truncate_to(25)
        assert removed == 15
        assert log.sequence == 25
        assert [s for s, _ in log.iter_entries()][-1] == 25
        # And the truncation is durable.
        reopened = SegmentedLog(tmp_path / "log", segment_bytes=512,
                                sparse_every=4)
        assert reopened.sequence == 25

    def test_truncate_above_high_water_is_a_no_op(self, tmp_path):
        log = small_log(tmp_path / "log")
        assert log.truncate_to(99) == 0
        assert log.sequence == 40


class TestCompaction:
    def test_superseded_and_withdrawn_rows_reclaimed(self, tmp_path):
        log = small_log(tmp_path / "log")  # 40 rows over 5 object ids
        report = compact(log)
        assert report.records_after == 5
        assert report.records_dropped == 35
        assert report.bytes_reclaimed > 0
        # Survivors keep their original sequence numbers (the latest rows).
        assert [s for s, _ in log.iter_entries()] == [36, 37, 38, 39, 40]

    def test_tombstone_reclaims_object_and_itself(self, tmp_path):
        log = SegmentedLog(tmp_path / "log", segment_bytes=512, sparse_every=4)
        log.append({"object_id": "keep", "status": "submitted"})
        log.append({"object_id": "gone", "status": "submitted"})
        log.append({"tombstone": True, "object_id": "gone"})
        compact(log)
        records = log.read_all()
        assert records == [{"object_id": "keep", "status": "submitted"}]

    def test_sequence_counter_never_rewinds(self, tmp_path):
        log = small_log(tmp_path / "log")
        compact(log)
        assert log.append({"object_id": "new", "status": "submitted"}) == 41

    def test_rows_without_object_id_always_survive(self, tmp_path):
        log = SegmentedLog(tmp_path / "log")
        log.append({"marker": "not an index row"})
        log.append({"object_id": "a", "status": "withdrawn"})
        report = compact(log)
        assert report.records_after == 1
        assert log.read_all() == [{"marker": "not an index row"}]

    def test_audit_log_is_immutable(self, tmp_path):
        engine = StorageEngine(tmp_path)
        engine.log("audit").append({"record_id": "aud-1"})
        with pytest.raises(StorageError, match="immutable"):
            engine.compact("audit")


class TestSnapshots:
    def make_engine(self, tmp_path):
        engine = StorageEngine(tmp_path / "data", segment_bytes=512)
        log = engine.log("index")
        for i in range(30):
            log.append({"object_id": f"ev-{i}", "status": "submitted"})
        return engine

    def test_create_verify_list(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        assert info.snapshot_id == "snap-0001"
        assert info.sequences == {"index": 30}
        manager = SnapshotManager(tmp_path / "snaps")
        assert manager.verify(info.snapshot_id) == []
        assert [s.snapshot_id for s in manager.list()] == ["snap-0001"]

    def test_corrupted_live_segment_detected(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        manager = SnapshotManager(tmp_path / "snaps")
        segment = sorted((tmp_path / "data" / "index").glob("*.seg"))[0]
        data = bytearray(segment.read_bytes())
        data[3] ^= 0xFF
        segment.write_bytes(bytes(data))
        problems = manager.verify_against(info.snapshot_id, tmp_path / "data")
        assert problems and "sha256 mismatch" in problems[0]

    def test_appends_after_snapshot_are_not_corruption(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        engine.log("index").append({"object_id": "later", "status": "submitted"})
        manager = SnapshotManager(tmp_path / "snaps")
        assert manager.verify_against(info.snapshot_id, tmp_path / "data") == []

    def test_tampered_payload_fails_verify(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        manifest_path = info.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        first = sorted(manifest["files"])[0]
        manifest["files"][first]["sha256"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        manager = SnapshotManager(tmp_path / "snaps")
        assert manager.verify(info.snapshot_id)

    def test_restore_into_nonempty_target_refused(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        target = tmp_path / "restore"
        target.mkdir()
        (target / "leftover.txt").write_text("x")
        manager = SnapshotManager(tmp_path / "snaps")
        with pytest.raises(SnapshotError, match="not empty"):
            manager.restore(info.snapshot_id, target)

    def test_point_in_time_restore(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        manager = SnapshotManager(tmp_path / "snaps")
        report = manager.restore(info.snapshot_id, tmp_path / "restore",
                                 to_sequence=12)
        assert report.sequences == {"index": 12}
        assert report.truncated_records == 18
        restored = SegmentedLog(tmp_path / "restore" / "index")
        assert len(restored) == 12
        assert restored.sequence == 12

    def test_restore_beyond_committed_sequence_fails(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        manager = SnapshotManager(tmp_path / "snaps")
        with pytest.raises(RecoveryError, match="never committed"):
            manager.restore(info.snapshot_id, tmp_path / "restore",
                            to_sequence=99)

    def test_full_restore_is_byte_identical(self, tmp_path):
        engine = self.make_engine(tmp_path)
        info = engine.snapshot(tmp_path / "snaps")
        manager = SnapshotManager(tmp_path / "snaps")
        manager.restore(info.snapshot_id, tmp_path / "restore")
        for segment in sorted((tmp_path / "data" / "index").glob("*.seg")):
            twin = tmp_path / "restore" / "index" / segment.name
            assert twin.read_bytes() == segment.read_bytes()


class TestStoreKind:
    def test_kernel_registers_both_store_kinds(self):
        from repro.runtime.kernel import KIND_STORE, default_kernel

        kernel = default_kernel()
        assert kernel.implementations(KIND_STORE) == ("jsonl", "segmented")
        assert isinstance(kernel.create(KIND_STORE, "jsonl"), JsonlStore)
        assert isinstance(kernel.create(KIND_STORE, "segmented"),
                          SegmentedStore)

    def test_store_without_data_dir_fails_fast_on_first_log(self):
        with pytest.raises(ConfigurationError, match="data_dir"):
            JsonlStore().log("index")
        with pytest.raises(ConfigurationError, match="data_dir"):
            SegmentedStore().log("index")

    def test_controller_exposes_its_store(self, tmp_path):
        from repro import DataController
        from repro.runtime.kernel import RuntimeConfig

        controller = DataController(runtime=RuntimeConfig(
            index_store="jsonl", audit_sink="jsonl",
            store="segmented", data_dir=tmp_path))
        assert isinstance(controller.store, SegmentedStore)
        assert (tmp_path / "index").is_dir()
        assert (tmp_path / "audit").is_dir()

    def test_unknown_store_name_suggests(self, tmp_path):
        from repro import DataController
        from repro.runtime.kernel import RuntimeConfig

        with pytest.raises(ConfigurationError, match="segmented"):
            DataController(runtime=RuntimeConfig(
                store="segmnted", data_dir=tmp_path))


class TestStorageTelemetry:
    def reject_telemetry(self):
        from repro.clock import Clock
        from repro.obs.telemetry import InMemoryTelemetry

        return InMemoryTelemetry(clock=Clock(), guard_mode="reject",
                                 secret="storage-test")

    def test_engine_metrics_pass_the_reject_guard(self, tmp_path):
        telemetry = self.reject_telemetry()
        engine = StorageEngine(tmp_path, segment_bytes=512,
                               telemetry=telemetry)
        log = engine.log("index")
        for i in range(20):
            log.append({"object_id": f"ev-{i % 3}", "status": "submitted"})
        engine.compact("index")
        StorageEngine(tmp_path, segment_bytes=512,
                      telemetry=telemetry).log("index")
        export = "\n".join(telemetry.metrics_export())
        assert "storage.segments_total" in export
        assert "storage.compaction.reclaimed" in export
        assert "storage.recovery.ms" in export

    def test_labels_never_carry_identifiers(self, tmp_path):
        telemetry = self.reject_telemetry()
        engine = StorageEngine(tmp_path, telemetry=telemetry)
        log = engine.log("index")
        log.append({"object_id": "ev-secret-1", "subjectRef": "sealed",
                    "status": "submitted"})
        engine.compact("index")
        for line in telemetry.metrics_export():
            entry = json.loads(line)
            if not entry["name"].startswith("storage."):
                continue
            assert set(entry["labels"]) <= {"store", "log"}
            assert entry["labels"]["store"] == "segmented"
            assert entry["labels"]["log"] in {"index", "audit"}
            assert "ev-secret" not in line


class TestStoreCli:
    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def seeded_data(self, tmp_path):
        engine = StorageEngine(tmp_path / "data", segment_bytes=512)
        log = engine.log("index")
        for i in range(25):
            log.append({"object_id": f"ev-{i % 4}", "status": "submitted"})
        return tmp_path / "data"

    def test_unknown_action_did_you_mean(self):
        with pytest.raises(SystemExit) as excinfo:
            self.run_cli("store", "snapsot")
        message = str(excinfo.value)
        assert "unknown action" in message
        assert "did you mean 'snapshot'?" in message
        assert "available:" in message

    def test_stats(self, tmp_path):
        data = self.seeded_data(tmp_path)
        code, output = self.run_cli("store", "stats", "--data", str(data))
        assert code == 0
        assert "index" in output and "records=25" in output

    def test_snapshot_verify_restore_roundtrip(self, tmp_path):
        data = self.seeded_data(tmp_path)
        snaps = tmp_path / "snaps"
        code, output = self.run_cli(
            "store", "snapshot", "--data", str(data),
            "--snapshots", str(snaps))
        assert code == 0 and "snap-0001" in output

        code, output = self.run_cli(
            "store", "verify", "--data", str(data), "--snapshots", str(snaps))
        assert code == 0 and "verified" in output

        code, output = self.run_cli(
            "store", "restore", "--snapshots", str(snaps),
            "--target", str(tmp_path / "restored"), "--to-sequence", "10")
        assert code == 0 and "truncated 15 records" in output
        assert SegmentedLog(tmp_path / "restored" / "index").sequence == 10

    def test_verify_reports_corruption_nonzero(self, tmp_path):
        data = self.seeded_data(tmp_path)
        snaps = tmp_path / "snaps"
        self.run_cli("store", "snapshot", "--data", str(data),
                     "--snapshots", str(snaps))
        segment = sorted((data / "index").glob("*.seg"))[0]
        raw = bytearray(segment.read_bytes())
        raw[2] ^= 0xFF
        segment.write_bytes(bytes(raw))
        code, output = self.run_cli(
            "store", "verify", "--data", str(data), "--snapshots", str(snaps))
        assert code == 1
        assert "sha256 mismatch" in output

    def test_compact_reports_and_audit_refuses(self, tmp_path):
        data = self.seeded_data(tmp_path)
        code, output = self.run_cli("store", "compact", "--data", str(data))
        assert code == 0 and "reclaimed" in output
        StorageEngine(data).log("audit").append({"record_id": "aud-1"})
        with pytest.raises(SystemExit, match="immutable"):
            self.run_cli("store", "compact", "--data", str(data),
                         "--log", "audit")

    def test_missing_data_dir_is_an_error(self):
        with pytest.raises(SystemExit, match="--data"):
            self.run_cli("store", "stats")
