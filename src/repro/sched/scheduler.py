"""Fair multi-tenant scheduling of broker and detail work.

The platform is shared by many consumer organizations (tenants); the
broker is the contention point.  :class:`TenantScheduler` is the kernel's
``sched`` kind: it meters every unit of tenant-attributable work —
publishes, per-subscription fan-out, requests for details — into
per-tenant queues and *serves* them with a fluid-model virtual server
driven by the simulated clock (capacity accrues at ``service_rate``
work-seconds per simulated second; the policy decides who spends it):

* policy ``fifo`` (kernel name ``none``) serves strictly in arrival
  order — exactly the dispatch behaviour the bus has always had, now
  with per-tenant accounting (shares, waits, starvation);
* policy ``drr`` (kernel name ``fair``) serves tenant queues
  deficit-round-robin with per-tenant weights, token-bucket admission at
  ingress and an abusive-tenant penalty box
  (:mod:`repro.sched.tokens`).

The scheduler **shapes and accounts — it never changes decisions**.
Admission refusals are counted (and demote the abuser's weight), work is
re-ordered only inside the virtual server's cost model, and the actual
side-effect execution order on the bus stays arrival-ordered — which is
why two same-seed runs under ``none`` and ``fair`` produce *identical*
audit chains while reporting very different fairness figures.  The only
real intervention is backpressure: when a tenant's real bus backlog
exceeds ``max_pending`` under ``fair``, new fan-out for that tenant is
shed to the dead-letter queue (tagged with its subscription id, so
:meth:`~repro.bus.broker.ServiceBus.replay_all_dead_letters` can drain
it back after the episode).

Tenant identity derives from the existing sender/consumer organization
ids; every label leaving the scheduler is privacy-guard hashed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.guard import PrivacyGuard
from repro.sched.tokens import PenaltyBox, TokenBucket

#: Work kinds the scheduler meters (costs mirror the federation's
#: simulated service times, see :mod:`repro.federation.node`).
WORK_PUBLISH = "publish"
WORK_FANOUT = "fanout"
WORK_DETAILS = "details"

DEFAULT_COSTS = {
    WORK_PUBLISH: 0.004,
    WORK_FANOUT: 0.001,
    WORK_DETAILS: 0.003,
}

#: Serving policies.
POLICY_FIFO = "fifo"
POLICY_DRR = "drr"

#: The pseudo-tenant platform-internal work is attributed to (federation
#: relays, platform services).  Never throttled, shed or reported.
SYSTEM_TENANT = "platform"

#: Sender/subscriber prefixes that mark platform-internal traffic.
_SYSTEM_PREFIXES = ("federation:", "federation-relay:", "platform.")

#: Fairness metric names (gauges, labels guard-hashed).
TENANT_SHARE = "sched.tenant.share"
TENANT_STARVATION = "sched.tenant.starvation_seconds"
TENANT_THROTTLED = "sched.tenant.throttled"
TENANT_SHED = "sched.tenant.shed"
THROTTLED_TOTAL = "sched.throttled_total"
SHED_TOTAL = "sched.shed_total"


def tenant_of(actor_id: str) -> str:
    """The tenant a sender/consumer id is billed to.

    Organization ids are their own tenant; federation relay and
    platform-internal senders collapse onto :data:`SYSTEM_TENANT`.
    """
    if not actor_id:
        return SYSTEM_TENANT
    for prefix in _SYSTEM_PREFIXES:
        if actor_id.startswith(prefix):
            return SYSTEM_TENANT
    return actor_id


def jain_index(values: list[float]) -> float:
    """Jain's fairness index over per-tenant (weighted) service.

    ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly fair, ``1/n`` is one tenant
    taking everything.  Defined as 1.0 for an empty or all-zero vector.
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class SchedConfig:
    """Tuning knobs of one scheduler instance (all simulated-time units)."""

    #: Work-seconds the virtual server completes per simulated second.
    service_rate: float = 1.0
    #: DRR quantum: deficit credited per rotation visit, scaled by weight.
    quantum: float = 0.004
    #: Token-bucket sustained admissions/second per tenant.
    bucket_rate: float = 20.0
    #: Token-bucket burst capacity per tenant.
    bucket_burst: float = 40.0
    #: Real per-tenant bus backlog beyond which fan-out is shed (``fair``).
    max_pending: int = 256
    #: Penalty box: strikes before demotion, forgiveness and cool-down
    #: windows, and the demoted weight multiplier.
    strike_limit: int = 8
    forgive_seconds: float = 5.0
    cooldown_seconds: float = 30.0
    penalty_weight: float = 0.1
    #: Per-tenant wait samples retained for percentile reporting.
    wait_samples: int = 8192

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ConfigurationError("service_rate must be positive")
        if self.quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be at least 1")
        if self.wait_samples < 1:
            raise ConfigurationError("wait_samples must be at least 1")


@dataclass
class _WorkItem:
    arrival: float
    cost: float
    kind: str


@dataclass
class _TenantState:
    """One tenant's queue plus its admission and accounting state."""

    tenant: str
    weight: float = 1.0
    queue: deque = field(default_factory=deque)
    deficit: float = 0.0
    arrived: int = 0
    arrived_work: float = 0.0
    served: int = 0
    served_work: float = 0.0
    throttled: int = 0
    shed: int = 0
    max_wait: float = 0.0
    waits: list = field(default_factory=list)
    bucket: TokenBucket | None = None
    penalty: PenaltyBox | None = None

    def starvation(self, now: float) -> float:
        """Worst wait seen, including the still-waiting head of queue."""
        worst = self.max_wait
        if self.queue:
            worst = max(worst, now - self.queue[0].arrival)
        return worst


class TenantScheduler:
    """Per-tenant admission, fair queueing and fairness accounting.

    One instance per controller node (each federation node schedules its
    own ingress).  ``policy`` picks the serving discipline; everything
    else — metering, accounting, reporting — is identical across
    policies, so ``none`` vs ``fair`` comparisons measure the scheduler,
    not the instrumentation.
    """

    #: The kernel-kind convention: a constructed service is always "on";
    #: ``shapes_ingress`` distinguishes the fair scheduler's active
    #: admission from the fifo baseline's pure accounting.
    enabled = True
    #: Work metering is active under both policies.
    meters = True

    def __init__(
        self,
        clock,
        policy: str = POLICY_FIFO,
        config: SchedConfig | None = None,
        telemetry=None,
        secret: str = "css-sched",
        recorder=None,
    ) -> None:
        if policy not in (POLICY_FIFO, POLICY_DRR):
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; "
                f"use {POLICY_FIFO!r} or {POLICY_DRR!r}"
            )
        self.clock = clock
        self.policy = policy
        self.config = config or SchedConfig()
        self._guard = PrivacyGuard(mode="hash", secret=secret)
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._tenants: dict[str, _TenantState] = {}
        #: FIFO: global arrival order (tenant ids, one per queued item).
        self._order: deque = deque()
        #: DRR: the active-tenant rotation.
        self._active: deque = deque()
        self._in_active: set[str] = set()
        #: Whether the front tenant's current visit already received its
        #: quantum (a budget-stalled visit resumes without re-crediting).
        self._visit_credited = False
        #: The fluid server: capacity accrues with simulated time at
        #: ``service_rate`` work-seconds per second; serving spends it.
        self._budget = 0.0
        self._last_drain = 0.0
        self.throttled_total = 0
        self.shed_total = 0
        # The flight recorder (duck-typed, like telemetry): penalty-box
        # transitions — demotion into the box, recovery out of it — leave
        # a trail in its ring with guard-hashed tenant labels.
        self._recorder = (
            recorder if recorder is not None and recorder.enabled else None
        )
        #: Last (demotions, recoveries) observed per tenant, so the
        #: recorder sees each transition exactly once.
        self._penalty_seen: dict[str, tuple[int, int]] = {}

    @property
    def shapes_ingress(self) -> bool:
        """Whether admission/backpressure actively shape traffic (``fair``)."""
        return self.policy == POLICY_DRR

    # -- tenant state ------------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            config = self.config
            state = _TenantState(
                tenant=tenant,
                bucket=TokenBucket(config.bucket_rate, config.bucket_burst),
                penalty=PenaltyBox(
                    strike_limit=config.strike_limit,
                    forgive_seconds=config.forgive_seconds,
                    cooldown_seconds=config.cooldown_seconds,
                    penalty_weight=config.penalty_weight,
                ),
            )
            self._tenants[tenant] = state
        return state

    def set_weight(self, tenant: str, weight: float) -> None:
        """Assign a tenant's fair-share weight (default 1.0)."""
        if weight <= 0:
            raise ConfigurationError("tenant weight must be positive")
        self._state(tenant_of(tenant)).weight = weight

    # -- ingress -----------------------------------------------------------

    def submit(self, actor_id: str, kind: str, now: float) -> None:
        """Meter one unit of work arriving for ``actor_id``'s tenant."""
        tenant = tenant_of(actor_id)
        state = self._state(tenant)
        cost = DEFAULT_COSTS[kind]
        state.arrived += 1
        state.arrived_work += cost
        state.queue.append(_WorkItem(arrival=now, cost=cost, kind=kind))
        if self.policy == POLICY_FIFO:
            self._order.append(tenant)
        elif tenant not in self._in_active:
            self._active.append(tenant)
            self._in_active.add(tenant)

    def admit(self, actor_id: str, kind: str, now: float) -> bool:
        """Token-bucket admission verdict (pure accounting under fifo).

        Never raises and never blocks the caller — a refusal is counted,
        feeds the penalty box, and shapes the tenant's *future* share;
        the triggering operation itself proceeds unchanged, which is what
        keeps decisions and audit trails scheduler-invariant.
        """
        if not self.shapes_ingress:
            return True
        tenant = tenant_of(actor_id)
        if tenant == SYSTEM_TENANT:
            return True
        state = self._state(tenant)
        admitted = state.bucket.take(now)
        state.penalty.record(admitted, now)
        if not admitted:
            state.throttled += 1
            self.throttled_total += 1
        if self._recorder is not None:
            self._note_penalty_transitions(tenant, state, now)
        return admitted

    def _note_penalty_transitions(self, tenant: str, state: _TenantState,
                                  now: float) -> None:
        """Record demotion/recovery transitions seen since the last look."""
        if state.penalty is None:
            return
        # Poke the lazy recovery check so a cooled-down tenant's exit from
        # the box is surfaced now, not on its next weight lookup (the
        # check is a pure function of ``now``, so this changes nothing
        # about scheduling outcomes).
        state.penalty.is_penalized(now)
        seen = self._penalty_seen.get(tenant, (0, 0))
        current = (state.penalty.demotions, state.penalty.recoveries)
        if current == seen:
            return
        label = self._guard.hash_value(tenant)
        for _ in range(current[0] - seen[0]):
            self._recorder.record("sched.penalty_demotion", tenant=label,
                                  demotions=current[0])
        for _ in range(current[1] - seen[1]):
            self._recorder.record("sched.penalty_recovery", tenant=label,
                                  recoveries=current[1])
        self._penalty_seen[tenant] = current

    def ingress(self, actor_id: str, kind: str, now: float) -> bool:
        """Meter + admit in one step (the node/edge ingress hook)."""
        self.submit(actor_id, kind, now)
        return self.admit(actor_id, kind, now)

    # -- backpressure ------------------------------------------------------

    def should_shed(self, subscriber: str, pending: int) -> bool:
        """Whether new fan-out for ``subscriber`` must overflow to the DLQ.

        ``pending`` is the subscriber's *real* queue depth on the bus —
        shedding bounds actual memory, not the virtual server's model.
        Only the fair policy sheds, and never the system tenant.
        """
        if not self.shapes_ingress:
            return False
        if tenant_of(subscriber) == SYSTEM_TENANT:
            return False
        return pending >= self.config.max_pending

    def note_shed(self, subscriber: str) -> None:
        """Count one shed fan-out against ``subscriber``'s tenant."""
        state = self._state(tenant_of(subscriber))
        state.shed += 1
        self.shed_total += 1

    # -- bus-facing metering (no constant imports in the bus layer) --------

    def note_publish(self, sender: str, now: float) -> None:
        """Meter one publish against its sender's tenant."""
        self.submit(sender, WORK_PUBLISH, now)

    def note_fanout(self, subscriber: str, now: float) -> None:
        """Meter one fan-out delivery against its subscriber's tenant."""
        self.submit(subscriber, WORK_FANOUT, now)

    def note_publish_many(self, sender: str, count: int, now: float) -> None:
        """Meter a tenant-batch of publishes in one call.

        Equivalent to ``count`` sequential :meth:`note_publish` calls at
        the same instant — accounting is bitwise-identical; the batch
        only saves the per-call bus crossings.
        """
        for _ in range(count):
            self.submit(sender, WORK_PUBLISH, now)

    def note_fanout_many(self, subscriber: str, count: int, now: float) -> None:
        """Meter a tenant-batch of fan-out deliveries in one call."""
        for _ in range(count):
            self.submit(subscriber, WORK_FANOUT, now)

    # -- the fluid server --------------------------------------------------

    def drain(self, now: float) -> None:
        """Advance the server to ``now``, serving what the capacity allows.

        The server is a fluid model: each drain banks the simulated span
        since the last one as ``service_rate`` work-seconds of capacity,
        and the policy — global arrival order under fifo, weighted
        deficit rounds under drr — decides whose queued work spends it.
        """
        if now > self._last_drain:
            self._budget += (now - self._last_drain) * self.config.service_rate
            self._last_drain = now
        if self.policy == POLICY_FIFO:
            self._advance_fifo(now)
        else:
            self._advance_drr(now)
        if self._recorder is not None:
            # Recoveries happen lazily as weights are looked up during the
            # rotation; sweep after the advance so they hit the ring at
            # the drain that exposed them.
            for tenant, state in self._tenants.items():
                self._note_penalty_transitions(tenant, state, now)

    def _serve(self, state: _TenantState, item: _WorkItem, now: float) -> None:
        self._budget -= item.cost
        wait = now - item.arrival
        state.served += 1
        state.served_work += item.cost
        if wait > state.max_wait:
            state.max_wait = wait
        if len(state.waits) < self.config.wait_samples:
            state.waits.append(wait)

    def _advance_fifo(self, now: float) -> None:
        while self._order:
            state = self._tenants[self._order[0]]
            item = state.queue[0]
            if self._budget < item.cost:
                return
            self._order.popleft()
            state.queue.popleft()
            self._serve(state, item, now)

    def _effective_weight(self, state: _TenantState, now: float) -> float:
        factor = state.penalty.weight_factor(now) if state.penalty else 1.0
        return state.weight * factor

    def _deactivate(self, tenant: str, state: _TenantState) -> None:
        state.deficit = 0.0
        self._active.popleft()
        self._in_active.discard(tenant)

    def _advance_drr(self, now: float) -> None:
        # The rotation position must survive across drain() calls: a
        # bounded full-deque sweep is a cyclic identity, so restarting
        # it would hand the front tenant first claim on every drain and
        # let it monopolize a saturated server one item at a time.
        # Likewise, when the budget runs out mid-visit the drain stops
        # dead rather than rotating on — rotating would hand the next
        # tenant the capacity trickle the stalled tenant's unspent
        # deficit entitles it to, decoupling long-run service from the
        # weights.  A stalled visit resumes on the next drain *without*
        # a fresh quantum (``_visit_credited``), so stalling can't be
        # farmed for extra credit either.
        quantum = self.config.quantum
        while self._active:
            tenant = self._active[0]
            state = self._tenants[tenant]
            if not state.queue:
                self._deactivate(tenant, state)
                continue
            if self._budget < state.queue[0].cost:
                return
            # Credit this visit's deficit (weighted, penalty-demoted),
            # once per rotation visit.  A demoted tenant may need
            # several visits before its deficit affords one item.
            if not self._visit_credited:
                state.deficit += quantum * self._effective_weight(state, now)
                self._visit_credited = True
            while state.queue:
                head = state.queue[0]
                if self._budget < head.cost:
                    return
                if state.deficit < head.cost:
                    break
                state.queue.popleft()
                state.deficit -= head.cost
                self._serve(state, head, now)
            self._visit_credited = False
            if state.queue:
                self._active.rotate(-1)
            else:
                self._deactivate(tenant, state)

    # -- reporting ---------------------------------------------------------

    def pending(self, tenant: str | None = None) -> int:
        """Virtual-server backlog — one tenant's, or everything queued."""
        if tenant is not None:
            state = self._tenants.get(tenant_of(tenant))
            return len(state.queue) if state is not None else 0
        return sum(len(state.queue) for state in self._tenants.values())

    @property
    def demotions_total(self) -> int:
        """Penalty-box demotions across all tenants (cheap watchdog read)."""
        return sum(
            state.penalty.demotions
            for state in self._tenants.values() if state.penalty is not None
        )

    def is_penalized(self, tenant: str, now: float) -> bool:
        """Whether a tenant currently sits in the penalty box."""
        state = self._tenants.get(tenant_of(tenant))
        if state is None or state.penalty is None:
            return False
        return state.penalty.is_penalized(now)

    def tenant_report(self, now: float) -> dict[str, dict]:
        """Per-tenant accounting (raw tenant ids — in-process use only).

        Callers exporting any of this (telemetry, benchmark payloads)
        must hash the tenant keys; :meth:`record_fairness` and the
        fairness harness both do.
        """
        report: dict[str, dict] = {}
        for tenant, state in self._tenants.items():
            report[tenant] = {
                "weight": state.weight,
                "arrived": state.arrived,
                "arrived_work": state.arrived_work,
                "served": state.served,
                "served_work": state.served_work,
                "pending": len(state.queue),
                "throttled": state.throttled,
                "shed": state.shed,
                "max_wait_seconds": state.max_wait,
                "wait_seconds": list(state.waits),
                "starvation_seconds": state.starvation(now),
                "penalized": bool(
                    state.penalty and state.penalty.is_penalized(now)
                ),
                "demotions": state.penalty.demotions if state.penalty else 0,
                "recoveries": state.penalty.recoveries if state.penalty else 0,
            }
        return report

    def shares(self) -> dict[str, float]:
        """Each non-system tenant's share of all served tenant work."""
        states = [
            state for tenant, state in self._tenants.items()
            if tenant != SYSTEM_TENANT
        ]
        total = sum(state.served_work for state in states)
        if total <= 0.0:
            return {state.tenant: 0.0 for state in states}
        return {state.tenant: state.served_work / total for state in states}

    def record_fairness(self, telemetry=None, now: float | None = None) -> None:
        """Publish fairness gauges (guard-hashed tenant labels only)."""
        telemetry = telemetry if telemetry is not None else self._telemetry
        if telemetry is None or not getattr(telemetry, "enabled", False):
            return
        now = now if now is not None else self.clock.now()
        self.drain(now)
        shares = self.shares()
        for tenant, state in sorted(self._tenants.items()):
            if tenant == SYSTEM_TENANT:
                continue
            label = self._guard.hash_value(tenant)
            telemetry.gauge(TENANT_SHARE, shares.get(tenant, 0.0),
                            tenant=label)
            telemetry.gauge(TENANT_STARVATION, state.starvation(now),
                            tenant=label)
            telemetry.gauge(TENANT_THROTTLED, state.throttled, tenant=label)
            telemetry.gauge(TENANT_SHED, state.shed, tenant=label)
        telemetry.gauge(THROTTLED_TOTAL, self.throttled_total)
        telemetry.gauge(SHED_TOTAL, self.shed_total)
