"""Persistence substrate: durable logs, snapshots, and platform archives.

The deployed CSS platform is long-lived infrastructure: contracts,
policies, the events index, gateway-held details and — crucially — the
audit trail must survive restarts, and a privacy guarantor must be able to
verify that a restored audit log is the one that was saved.

* :mod:`~repro.storage.jsonl` — append-only JSON-lines files (the
  ``jsonl`` store kind: the ablation baseline);
* :mod:`~repro.storage.segment` — size-segmented, checksum-framed
  append logs with sparse offset indexes and torn-tail crash repair;
* :mod:`~repro.storage.compaction` — space reclamation that preserves
  sequence identities and never touches the audit chain;
* :mod:`~repro.storage.snapshot` — sha256-manifested tar snapshots with
  verification and point-in-time restore;
* :mod:`~repro.storage.engine` — :class:`~repro.storage.engine.StorageEngine`
  and the kernel ``store`` providers (``jsonl``/``segmented``);
* :mod:`~repro.storage.schemas` — (de)serialization of message schemas
  and simple types;
* :mod:`~repro.storage.archive` — :class:`~repro.storage.archive.PlatformArchive`:
  ``save(controller)`` writes a directory snapshot,
  ``restore(master_secret)`` rebuilds an equivalent controller.

What is archived: clock, actors, contracts, event-class versions,
policies (with their generated XACML), the events index (identity slots
stay *sealed* on disk), the id map, gateway detail stores, consent
decisions, and the full audit log (whose hash chain is re-verified against
the manifest's head digest on restore).  Live bus subscriptions are *not*
archived — they hold callbacks into consumer processes; consumers
re-subscribe after a restart, exactly as they would against a restarted
broker.
"""

from repro.storage.archive import PlatformArchive
from repro.storage.compaction import CompactionReport, compact, index_keep_predicate
from repro.storage.engine import (
    JsonlRecordLog,
    JsonlStore,
    RecordLog,
    SegmentedStore,
    StorageEngine,
)
from repro.storage.jsonl import JsonlFile
from repro.storage.segment import SegmentedLog
from repro.storage.snapshot import SnapshotManager

__all__ = [
    "CompactionReport",
    "JsonlFile",
    "JsonlRecordLog",
    "JsonlStore",
    "PlatformArchive",
    "RecordLog",
    "SegmentedLog",
    "SegmentedStore",
    "SnapshotManager",
    "StorageEngine",
    "compact",
    "index_keep_predicate",
]
