"""XSD-style message schemas.

A :class:`MessageSchema` stands in for the XML Schema the paper says each
producer "installs" in the event catalog to declare the structure of its
event details (§5).  A schema is a named sequence of element declarations,
each with a simple type and occurrence bounds.  Flat field lists are exactly
what the paper's privacy-policy model operates on (``e = {f1, ..., fk}``,
Def. 1), so the schema model is deliberately one level deep, with an
extension hook for nested groups used by richer payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SchemaError
from repro.xmlmsg.types import SimpleType


class Occurs(enum.Enum):
    """Occurrence bounds for an element (the XSD min/maxOccurs shapes we use)."""

    REQUIRED = "required"       # minOccurs=1 maxOccurs=1
    OPTIONAL = "optional"       # minOccurs=0 maxOccurs=1
    REPEATED = "repeated"       # minOccurs=0 maxOccurs=unbounded

    @property
    def min_occurs(self) -> int:
        """The XSD ``minOccurs`` value."""
        return 1 if self is Occurs.REQUIRED else 0

    @property
    def allows_many(self) -> bool:
        """Whether more than one occurrence is allowed."""
        return self is Occurs.REPEATED


@dataclass(frozen=True)
class ElementDecl:
    """Declaration of one element (field) in a message schema.

    ``sensitive`` marks fields whose values are personal/clinical data; the
    elicitation tool uses it to warn when a policy releases sensitive fields,
    and the simulator uses it to count exposure.  ``identifying`` marks
    fields that identify the data subject (name, ssn); the events index
    encrypts those.
    """

    name: str
    type_: SimpleType
    occurs: Occurs = Occurs.REQUIRED
    sensitive: bool = False
    identifying: bool = False
    documentation: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"illegal element name {self.name!r}")
        if not isinstance(self.type_, SimpleType):
            raise SchemaError(f"element {self.name!r} needs a SimpleType")


@dataclass
class MessageSchema:
    """A named, ordered collection of element declarations.

    ``name`` doubles as the XML root element name of conforming documents.
    ``target_namespace`` mimics the XSD targetNamespace and is stamped on
    serialized documents.
    """

    name: str
    elements: list[ElementDecl] = field(default_factory=list)
    target_namespace: str = "urn:css:events"
    documentation: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise SchemaError(f"illegal schema name {self.name!r}")
        seen: set[str] = set()
        for decl in self.elements:
            if decl.name in seen:
                raise SchemaError(f"duplicate element {decl.name!r} in schema {self.name!r}")
            seen.add(decl.name)

    # -- lookup ------------------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        """Names of all declared fields, in declaration order."""
        return tuple(decl.name for decl in self.elements)

    @property
    def sensitive_fields(self) -> tuple[str, ...]:
        """Names of the fields flagged sensitive."""
        return tuple(decl.name for decl in self.elements if decl.sensitive)

    @property
    def identifying_fields(self) -> tuple[str, ...]:
        """Names of the fields flagged identifying."""
        return tuple(decl.name for decl in self.elements if decl.identifying)

    @property
    def required_fields(self) -> tuple[str, ...]:
        """Names of the mandatory fields."""
        return tuple(decl.name for decl in self.elements if decl.occurs is Occurs.REQUIRED)

    def element(self, name: str) -> ElementDecl:
        """Return the declaration of element ``name``.

        Raises :class:`~repro.exceptions.SchemaError` if not declared.
        """
        for decl in self.elements:
            if decl.name == name:
                return decl
        raise SchemaError(f"schema {self.name!r} declares no element {name!r}")

    def has_element(self, name: str) -> bool:
        """Whether the schema declares element ``name``."""
        return any(decl.name == name for decl in self.elements)

    # -- construction helpers ------------------------------------------------

    def add(self, decl: ElementDecl) -> "MessageSchema":
        """Append a declaration (fluent; raises on duplicates)."""
        if self.has_element(decl.name):
            raise SchemaError(f"duplicate element {decl.name!r} in schema {self.name!r}")
        self.elements.append(decl)
        return self

    # -- XSD-ish rendering ----------------------------------------------------

    def to_xsd_text(self) -> str:
        """Render an XSD-flavoured textual description of the schema.

        This is what a candidate consumer browsing the event catalog sees
        (paper §5: "the event catalog, as the structure of its events, is
        visible to any candidate data consumer").
        """
        lines = [
            f'<xs:schema targetNamespace="{self.target_namespace}">',
            f'  <xs:element name="{self.name}">',
            "    <xs:complexType><xs:sequence>",
        ]
        for decl in self.elements:
            attrs = [
                f'name="{decl.name}"',
                f'type="xs:{decl.type_.name}"',
                f'minOccurs="{decl.occurs.min_occurs}"',
                f'maxOccurs="{"unbounded" if decl.occurs.allows_many else 1}"',
            ]
            if decl.sensitive:
                attrs.append('css:sensitive="true"')
            if decl.identifying:
                attrs.append('css:identifying="true"')
            lines.append(f"      <xs:element {' '.join(attrs)}/>")
        lines.extend(["    </xs:sequence></xs:complexType>", "  </xs:element>", "</xs:schema>"])
        return "\n".join(lines)
