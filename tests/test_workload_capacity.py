"""Tests for the capacity harness, its schema gate, CLI, and privacy.

The acceptance criteria of the workload engine land here: a real (small)
run at several node counts validates against ``css-bench-capacity/1``,
two same-seed runs reproduce identical payloads *and* identical audit
digests, and neither the payload nor the run's telemetry exports carry a
plaintext assisted-person identifier.
"""

import io
import json
import re

import pytest
from benchmarks.check_capacity_schema import SCHEMA_ID, main, validate

from repro.cli import main as cli_main
from repro.clock import Clock
from repro.obs.telemetry import InMemoryTelemetry
from repro.workload import (
    CapacityConfig,
    WorkloadEngine,
    run_capacity,
    run_point,
    workload_config,
    write_payload,
)

SUBJECT_ID = re.compile(r"ap-\d{8}")


def small_config(**overrides):
    defaults = dict(population=300, ops=120, seed=9)
    defaults.update(overrides)
    scenario = defaults.pop("scenario", "steady")
    return workload_config(scenario, **defaults)


@pytest.fixture(scope="module")
def trajectory():
    config = CapacityConfig(workload=small_config(), node_counts=(1, 2, 4))
    return run_capacity(config, source="pytest")


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCapacityHarness:
    def test_payload_passes_the_schema_gate(self, trajectory):
        assert validate(trajectory) == []
        assert trajectory["schema"] == SCHEMA_ID

    def test_points_cover_the_requested_node_counts(self, trajectory):
        assert [point["nodes"] for point in trajectory["nodes"]] == [1, 2, 4]

    def test_work_actually_flowed(self, trajectory):
        for point in trajectory["nodes"]:
            assert point["published"] > 0
            assert point["detail_permits"] > 0
            assert point["events_per_second"] > 0
            assert point["audit_records"] > 0
        single, multi = trajectory["nodes"][0], trajectory["nodes"][-1]
        assert single["cross_node_hops"] == 0
        assert multi["cross_node_hops"] > 0

    def test_latency_read_from_pipeline_histograms(self, trajectory):
        multi = trajectory["nodes"][-1]
        publish = multi["latency_seconds"]["publish"]
        assert publish["p95"] > 0  # cross-node links cost simulated time
        assert publish["p50"] <= publish["p95"] <= publish["p99"]

    def test_saturation_marks_are_reported(self, trajectory):
        for point in trajectory["nodes"]:
            assert point["queue_depth_high_water"] > 0  # fanout queued
            assert point["dead_letter_high_water"] == 0  # nothing poisoned


class TestReproducibility:
    def test_same_seed_runs_are_identical(self):
        config = CapacityConfig(workload=small_config(), node_counts=(1, 2))
        first = run_capacity(config, source="pytest")
        second = run_capacity(config, source="pytest")
        assert first == second

    def test_same_seed_audit_trails_are_identical(self):
        workload = small_config()
        first = run_point(workload, nodes=2)
        second = run_point(workload, nodes=2)
        assert first["audit_digest"] == second["audit_digest"]
        assert first["audit_records"] == second["audit_records"]

    def test_different_seeds_diverge(self):
        first = run_point(small_config(seed=1), nodes=2)
        second = run_point(small_config(seed=2), nodes=2)
        assert first["audit_digest"] != second["audit_digest"]


class TestPrivacyInvariants:
    def test_payload_carries_no_subject_identifier(self, trajectory):
        serialized = json.dumps(trajectory, sort_keys=True)
        assert not SUBJECT_ID.search(serialized)

    def test_payload_carries_no_subject_name(self, trajectory):
        names = {
            op.subject_name
            for op in WorkloadEngine(small_config()).plan()
            if op.subject_name
        }
        serialized = json.dumps(trajectory, sort_keys=True)
        assert names
        assert all(name not in serialized for name in names)

    def test_telemetry_exports_carry_no_subject_identifier(self):
        telemetry = InMemoryTelemetry(
            clock=Clock(), guard_mode="hash", secret="pytest-workload"
        )
        run_point(small_config(), nodes=2, telemetry=telemetry)
        exported = "\n".join(
            telemetry.trace_export() + telemetry.metrics_export()
        )
        assert exported
        assert not SUBJECT_ID.search(exported)


class TestSchemaChecker:
    def test_rejects_wrong_schema_id(self, trajectory):
        broken = dict(trajectory, schema="css-bench-capacity/0")
        assert any("schema" in problem for problem in validate(broken))

    def test_rejects_leaked_subject_id(self, trajectory):
        leaked = json.loads(json.dumps(trajectory))
        leaked["nodes"][0]["hot_subject"] = "ap-00000017"
        assert any("privacy" in problem for problem in validate(leaked))

    def test_rejects_missing_points_and_bad_ordering(self, trajectory):
        assert any("nodes" in p for p in validate(dict(trajectory, nodes=[])))
        reordered = json.loads(json.dumps(trajectory))
        reordered["nodes"].reverse()
        assert any("ascending" in p for p in validate(reordered))

    def test_rejects_unverified_audit_digest(self, trajectory):
        broken = json.loads(json.dumps(trajectory))
        del broken["nodes"][0]["audit_digest"]
        assert any("audit_digest" in p for p in validate(broken))

    def test_not_a_dict(self):
        assert validate([]) == ["top level must be a JSON object"]

    def test_cli_entrypoint(self, tmp_path, trajectory):
        target = tmp_path / "BENCH_capacity.json"
        write_payload(target, trajectory)
        assert main(["check_capacity_schema.py", str(target)]) == 0
        assert main(["check_capacity_schema.py",
                     str(tmp_path / "missing.json")]) == 1
        assert main(["check_capacity_schema.py"]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["check_capacity_schema.py", str(bad)]) == 1


class TestWorkloadCli:
    def test_runs_and_writes_schema_valid_payload(self, tmp_path):
        target = tmp_path / "BENCH_capacity.json"
        code, output = run_cli(
            "workload", "--scenario", "steady", "--population", "200",
            "--ops", "60", "--nodes", "1,2", "--seed", "4",
            "--out", str(target),
        )
        assert code == 0
        assert "capacity trajectory" in output
        assert "nodes=1" in output and "nodes=2" in output
        payload = json.loads(target.read_text())
        assert validate(payload) == []
        assert payload["seed"] == 4

    def test_list_scenarios(self):
        code, output = run_cli("workload", "--list")
        assert code == 0
        for name in ("steady", "stress", "surge", "anomaly"):
            assert name in output

    def test_unknown_scenario_suggests(self):
        with pytest.raises(SystemExit, match="steady"):
            run_cli("workload", "--scenario", "stedy")

    def test_bad_node_list_rejected(self):
        with pytest.raises(SystemExit, match="node count"):
            run_cli("workload", "--nodes", "0,2")
        with pytest.raises(SystemExit, match="comma-separated"):
            run_cli("workload", "--nodes", "two")

    def test_batched_run_carries_the_knob_in_the_payload(self, tmp_path):
        target = tmp_path / "BENCH_capacity.json"
        code, output = run_cli(
            "workload", "--scenario", "steady", "--population", "200",
            "--ops", "60", "--nodes", "1", "--batch", "on",
            "--batch-size", "64", "--out", str(target),
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["batch"] == "on"
        assert payload["batch_size"] == 64
        assert "--batch on --batch-size 64" in payload["source"]

    def test_unknown_batch_name_suggests_the_nearest(self):
        with pytest.raises(SystemExit, match="did you mean 'off'"):
            run_cli("workload", "--batch", "of")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(SystemExit, match="batch_size"):
            run_cli("workload", "--batch", "on", "--batch-size", "0")
