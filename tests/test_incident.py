"""Incident capture: watchdogs, bundle determinism, privacy, the checker.

The PR's acceptance criteria land here: the anomaly workload run under
watchdogs emits a ``css-incident/1`` bundle that passes
``check_incident_schema`` and is byte-identical across same-seed runs,
carries a windowed burn-rate series for the trigger's objective, and
never leaks an assisted-person id or plaintext tenant id.
"""

import json
import re
from pathlib import Path

import pytest
from benchmarks.check_incident_schema import (
    main as check_main,
    validate,
    validate_bundle_dir,
)

from repro.cli import main as cli_main
from repro.clock import Clock
from repro.crypto.hashing import canonical_json
from repro.obs.guard import PrivacyGuard
from repro.obs.incident import (
    INCIDENT_SCHEMA,
    TRIGGER_DEADLETTER_SPIKE,
    TRIGGER_DEMOTION,
    TRIGGER_QUEUE_CEILING,
    IncidentMonitor,
    WatchdogConfig,
    merge_events,
    write_bundle,
)
from repro.obs.recorder import EVENT_DEADLETTER, FlightRecorder
from repro.workload import workload_config
from repro.workload.incidents import run_incident_capture

SUBJECT_ID = re.compile(r"ap-\d{8}")
TENANT_FRAGMENTS = ("Province-Trentino", "Municipality-Trento",
                    "FamilyDoctors", "Hospital-S-Maria", "HomeAssist-Coop",
                    "Org-0", "Org-1")


def quick_workload(**overrides):
    defaults = dict(population=4000, ops=600)
    defaults.update(overrides)
    return workload_config("anomaly", **defaults)


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    out = tmp_path_factory.mktemp("bundles")
    payload = run_incident_capture(
        quick_workload(), source="pytest", out_dir=out
    )
    return payload, out


# -- the real anomaly run ---------------------------------------------------


class TestAnomalyRun:
    def test_watchdogs_capture_at_least_one_bundle(self, capture):
        payload, _ = capture
        assert len(payload["incidents"]) >= 1
        assert payload["ticks"] > 0

    def test_bundle_passes_the_schema_checker(self, capture):
        payload, out = capture
        for bundle in payload["incidents"]:
            assert validate(bundle) == []
        for path in payload["bundle_paths"]:
            assert validate_bundle_dir(Path(path)) == []
        assert check_main(["check_incident_schema.py", str(out)]) == 0

    def test_bundle_explains_trigger_with_burn_series(self, capture):
        payload, _ = capture
        [bundle] = payload["incidents"]
        trigger = bundle["trigger"]["kind"]
        assert bundle["burn_rates"], "every bundle carries burn-rate series"
        for windows in bundle["burn_rates"].values():
            for window in ("short", "long"):
                assert windows[window], "burn series must carry points"
                for point in windows[window]:
                    assert 0.0 <= point["attainment"] <= 1.0
        assert trigger in ("slo-breach", TRIGGER_DEMOTION,
                           TRIGGER_DEADLETTER_SPIKE, TRIGGER_QUEUE_CEILING)

    def test_same_seed_runs_write_byte_identical_bundles(self, capture,
                                                         tmp_path):
        _, first_out = capture
        rerun = run_incident_capture(
            quick_workload(), source="pytest", out_dir=tmp_path
        )
        assert rerun["bundle_paths"]
        for fresh in map(Path, rerun["bundle_paths"]):
            original = first_out / fresh.name
            for name in ("incident.json", "events.jsonl", "series.jsonl",
                         "manifest.json"):
                assert (original / name).read_bytes() \
                    == (fresh / name).read_bytes()

    def test_no_identifier_leaks_in_bundle_or_timeline(self, capture):
        payload, _ = capture
        serialized = json.dumps(payload["incidents"], sort_keys=True)
        timeline = "\n".join(canonical_json(row)
                             for row in payload["timeline"])
        for text in (serialized, timeline):
            assert not SUBJECT_ID.search(text)
            for fragment in TENANT_FRAGMENTS:
                assert fragment not in text

    def test_noop_arm_records_nothing(self):
        payload = run_incident_capture(
            quick_workload(), recorder="noop", source="pytest"
        )
        assert payload["incidents"] == []
        assert payload["timeline"] == []
        assert payload["ticks"] == 0

    def test_tampered_bundle_fails_the_checker(self, capture, tmp_path):
        payload = run_incident_capture(
            quick_workload(), source="pytest", out_dir=tmp_path
        )
        bundle_dir = Path(payload["bundle_paths"][0])
        events = bundle_dir / "events.jsonl"
        events.write_text(events.read_text() + "{}\n")
        assert check_main(["check_incident_schema.py", str(bundle_dir)]) == 1


# -- schema mutation tests --------------------------------------------------


@pytest.fixture()
def bundle(capture):
    payload, _ = capture
    return json.loads(json.dumps(payload["incidents"][0]))


class TestSchemaMutations:
    def test_valid_bundle_is_clean(self, bundle):
        assert validate(bundle) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda b: b.update(schema="css-incident/0"), "schema"),
        (lambda b: b.update(incident_id="oops"), "incident_id"),
        (lambda b: b.update(captured_at=-1.0), "captured_at"),
        (lambda b: b["trigger"].update(kind="volcano"), "trigger.kind"),
        (lambda b: b.update(burn_rates={}), "burn_rates"),
        (lambda b: b.update(events="nope"), "events"),
        (lambda b: b["queues"].pop("totals"), "queues"),
        (lambda b: b.update(recorder={}), "recorder"),
    ])
    def test_mutations_are_flagged(self, bundle, mutate, fragment):
        mutate(bundle)
        problems = validate(bundle)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_plaintext_tenant_key_is_flagged(self, bundle):
        for row in bundle["scheduler"].values():
            row["tenants"]["Org-0"] = next(iter(row["tenants"].values()))
            break
        problems = validate(bundle)
        assert any("privacy-guard hashes" in p for p in problems)
        assert any("privacy" in p and "Org-0" in p for p in problems)

    def test_subject_id_leak_is_flagged(self, bundle):
        bundle["series"].append({
            "type": "gauge", "name": "x", "labels": {"subject": "ap-12345678"},
            "points": [[0.0, 1.0]],
        })
        problems = validate(bundle)
        assert any("assisted-person id" in p for p in problems)

    def test_unsorted_events_are_flagged(self, bundle):
        events = bundle["events"]
        if len(events) < 2:
            pytest.skip("bundle retained fewer than 2 events")
        events[0], events[-1] = events[-1], events[0]
        problems = validate(bundle)
        assert any("merge order" in p for p in problems)

    def test_missing_trigger_objective_series_is_flagged(self, bundle):
        kind = bundle["trigger"]["kind"]
        if kind == "slo-breach":
            bundle["trigger"]["detail"]["objectives"] = ["ghost-objective"]
        else:
            bundle["trigger"]["kind"] = TRIGGER_DEMOTION
            bundle["burn_rates"] = {"unrelated": bundle["burn_rates"].popitem()[1]}
        problems = validate(bundle)
        assert any("trigger's objective" in p for p in problems)


# -- the monitor against a minimal fake platform ----------------------------


class FakeBus:
    def __init__(self, depth=0, dead=0):
        self.queue_depth = depth
        self.dead_letter_depth = dead
        self.dead_letter_high_water = dead

    def queue_high_water(self):
        return self.queue_depth


class FakeController:
    def __init__(self, bus, recorder):
        self.bus = bus
        self.sched = None
        self.recorder = recorder


class FakeNode:
    def __init__(self, node_id, bus, recorder):
        self.node_id = node_id
        self.controller = FakeController(bus, recorder)


class FakePlatform:
    def __init__(self, nodes, clock):
        self._nodes = nodes
        self.clock = clock

    def nodes(self):
        return self._nodes

    def flight_recorders(self):
        return {node.node_id: node.controller.recorder
                for node in self._nodes}


def fake_platform(clock, depth=0, dead=0):
    recorder = FlightRecorder(clock=clock, guard=PrivacyGuard(secret="s"))
    node = FakeNode("node-0", FakeBus(depth=depth, dead=dead), recorder)
    return FakePlatform([node], clock), recorder


class TestIncidentMonitor:
    def test_healthy_platform_never_triggers(self):
        clock = Clock()
        platform, recorder = fake_platform(clock)
        monitor = IncidentMonitor(platform, clock=clock, source="pytest")
        assert monitor.poll() is None
        assert monitor.incidents == []
        assert recorder.frozen is False

    def test_dead_letter_spike_freezes_and_captures(self):
        clock = Clock()
        platform, recorder = fake_platform(clock, dead=20)
        recorder.record(EVENT_DEADLETTER, count=20, depth=20)
        monitor = IncidentMonitor(platform, clock=clock, source="pytest")
        bundle = monitor.poll()
        assert bundle is not None
        assert bundle["trigger"]["kind"] == TRIGGER_DEADLETTER_SPIKE
        assert bundle["trigger"]["detail"]["dead_letters"] == 20
        assert recorder.frozen is True
        assert bundle["events"][0]["node"] == "node-0"

    def test_queue_ceiling_triggers(self):
        clock = Clock()
        platform, _ = fake_platform(clock, depth=600)
        monitor = IncidentMonitor(platform, clock=clock, source="pytest")
        bundle = monitor.poll()
        assert bundle["trigger"]["kind"] == TRIGGER_QUEUE_CEILING

    def test_monitor_is_one_shot(self):
        clock = Clock()
        platform, _ = fake_platform(clock, dead=20)
        monitor = IncidentMonitor(platform, clock=clock, source="pytest")
        assert monitor.poll() is not None
        clock.advance(10.0)
        assert monitor.poll() is None
        assert len(monitor.incidents) == 1

    def test_thresholds_are_configurable(self):
        clock = Clock()
        platform, _ = fake_platform(clock, dead=20, depth=600)
        monitor = IncidentMonitor(
            platform, clock=clock,
            config=WatchdogConfig(dead_letter_spike=2**31,
                                  queue_depth_ceiling=2**31),
            source="pytest",
        )
        assert monitor.poll() is None

    def test_merge_events_is_deterministic(self):
        per_node = {
            "node-1": [{"seq": 1, "at": 2.0, "kind": "a"}],
            "node-0": [{"seq": 2, "at": 2.0, "kind": "b"},
                       {"seq": 1, "at": 1.0, "kind": "c"}],
        }
        merged = merge_events(per_node)
        assert [(row["at"], row["node"], row["seq"]) for row in merged] \
            == [(1.0, "node-0", 1), (2.0, "node-0", 2), (2.0, "node-1", 1)]

    def test_write_bundle_rejects_nothing_and_is_rereadable(self, tmp_path):
        clock = Clock()
        platform, recorder = fake_platform(clock, dead=20)
        monitor = IncidentMonitor(platform, clock=clock, source="pytest")
        bundle = monitor.poll()
        root = write_bundle(tmp_path, bundle)
        reread = json.loads((root / "incident.json").read_text())
        assert reread["schema"] == INCIDENT_SCHEMA
        manifest = json.loads((root / "manifest.json").read_text())
        assert set(manifest["files"]) == {"incident.json", "events.jsonl",
                                          "series.jsonl"}


# -- CLI --------------------------------------------------------------------


class TestCli:
    def test_incident_cli_smoke(self, tmp_path, capsys):
        out = tmp_path / "incidents"
        code = cli_main(["incident", "--scenario", "federated",
                         "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "incident-0001" in captured
        assert check_main(["check_incident_schema.py", str(out)]) == 0

    def test_incident_cli_lists_scenarios(self, capsys):
        assert cli_main(["incident", "--list"]) == 0
        assert "anomaly" in capsys.readouterr().out

    def test_timeline_cli_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "timeline.jsonl"
        code = cli_main(["timeline", "--ops", "200", "--population", "2000",
                         "--out", str(target), "--limit", "5"])
        assert code == 0
        lines = target.read_text().splitlines()
        assert lines
        for line in lines:
            row = json.loads(line)
            assert row["entry"] in ("event", "span")
        text = capsys.readouterr().out
        assert "flight-recorder timeline" in text
        assert not SUBJECT_ID.search(target.read_text())
