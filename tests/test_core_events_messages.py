"""Unit tests for repro.core.events, repro.core.messages, repro.core.catalog,
and repro.core.idmap."""

import pytest

from repro.core.catalog import EventCatalog
from repro.core.events import EventClass, EventOccurrence
from repro.core.idmap import EventIdEntry, EventIdMap
from repro.core.messages import DetailMessage, NotificationMessage
from repro.exceptions import (
    DuplicateEventClassError,
    MessageError,
    SchemaError,
    UnknownEventClassError,
    UnknownEventError,
    ValidationError,
)
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType


def blood_schema() -> MessageSchema:
    return MessageSchema("BloodTest", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Hemoglobin", IntegerType(0, 30), sensitive=True),
        ElementDecl("Notes", StringType(), occurs=Occurs.OPTIONAL),
    ])


def blood_class(producer: str = "Hospital") -> EventClass:
    return EventClass(name="BloodTest", producer_id=producer, schema=blood_schema())


def occurrence(details: dict | None = None) -> EventOccurrence:
    payload = details or {"PatientId": "p1", "Hemoglobin": 14, "Notes": None}
    return EventOccurrence(
        event_class=blood_class(),
        src_event_id="src-1",
        subject_id="p1",
        subject_name="Mario Bianchi",
        occurred_at=10.0,
        summary="blood test done",
        details=XmlDocument("BloodTest", payload),
    )


class TestEventClass:
    def test_fields_and_flags(self):
        cls = blood_class()
        assert cls.fields == ("PatientId", "Hemoglobin", "Notes")
        assert cls.sensitive_fields == ("Hemoglobin",)

    def test_topic_derivation(self):
        assert blood_class().topic == "events.health.BloodTest"

    def test_qualified_name(self):
        assert blood_class().qualified_name == "Hospital.BloodTest"

    def test_schema_name_must_match(self):
        with pytest.raises(SchemaError):
            EventClass(name="Other", producer_id="H", schema=blood_schema())

    def test_needs_producer(self):
        with pytest.raises(SchemaError):
            EventClass(name="BloodTest", producer_id="", schema=blood_schema())


class TestEventOccurrence:
    def test_valid_occurrence(self):
        occurrence().validate()

    def test_detail_schema_mismatch_rejected(self):
        with pytest.raises(MessageError):
            EventOccurrence(
                event_class=blood_class(),
                src_event_id="s",
                subject_id="p",
                subject_name="n",
                occurred_at=0.0,
                summary="x",
                details=XmlDocument("Other", {}),
            )

    def test_validate_catches_bad_payload(self):
        bad = occurrence({"PatientId": "p1", "Hemoglobin": 99})
        with pytest.raises(ValidationError):
            bad.validate()

    def test_requires_ids(self):
        with pytest.raises(MessageError):
            EventOccurrence(
                event_class=blood_class(), src_event_id="", subject_id="p",
                subject_name="n", occurred_at=0.0, summary="x",
                details=XmlDocument("BloodTest", {}),
            )


class TestNotificationMessage:
    def notification(self) -> NotificationMessage:
        return NotificationMessage(
            event_id="evt-1", event_type="BloodTest", producer_id="Hospital",
            occurred_at=12.5, summary="blood test done",
            subject_ref="p1", subject_display="Mario Bianchi",
        )

    def test_xml_round_trip(self):
        original = self.notification()
        parsed = NotificationMessage.from_xml(original.to_xml())
        assert parsed == original

    def test_round_trip_without_display(self):
        original = NotificationMessage(
            event_id="e", event_type="T", producer_id="P",
            occurred_at=0.0, summary="s", subject_ref="r",
        )
        assert NotificationMessage.from_xml(original.to_xml()) == original

    def test_wrong_document_rejected(self):
        with pytest.raises(MessageError):
            NotificationMessage.from_xml("<Other/>")

    def test_required_fields(self):
        with pytest.raises(MessageError):
            NotificationMessage(event_id="", event_type="T", producer_id="P",
                                occurred_at=0.0, summary="s", subject_ref="r")


class TestDetailMessage:
    def test_is_filtered(self):
        payload = XmlDocument("BloodTest", {"PatientId": "p", "Hemoglobin": None, "Notes": None})
        message = DetailMessage(
            event_id="e", event_type="BloodTest", producer_id="H",
            payload=payload, released_fields=("PatientId",),
        )
        assert message.is_filtered
        assert message.exposed_values() == {"PatientId": "p"}

    def test_unfiltered_message(self):
        payload = XmlDocument("BloodTest", {"PatientId": "p"})
        message = DetailMessage(
            event_id="e", event_type="BloodTest", producer_id="H",
            payload=payload, released_fields=("PatientId",),
        )
        assert not message.is_filtered

    def test_schema_mismatch_rejected(self):
        with pytest.raises(MessageError):
            DetailMessage(event_id="e", event_type="BloodTest", producer_id="H",
                          payload=XmlDocument("Other", {}))

    def test_to_xml_includes_blanked_fields(self):
        payload = XmlDocument("BloodTest", {"PatientId": "p", "Hemoglobin": None})
        message = DetailMessage(event_id="e", event_type="BloodTest",
                                producer_id="H", payload=payload)
        xml = message.to_xml()
        assert "Hemoglobin" in xml and "PatientId" in xml


class TestEventCatalog:
    def test_install_and_get(self):
        catalog = EventCatalog()
        catalog.install(blood_class())
        assert "BloodTest" in catalog
        assert catalog.get("BloodTest").producer_id == "Hospital"
        assert catalog.producer_of("BloodTest") == "Hospital"
        assert catalog.topic_of("BloodTest") == "events.health.BloodTest"

    def test_duplicate_rejected(self):
        catalog = EventCatalog()
        catalog.install(blood_class())
        with pytest.raises(DuplicateEventClassError):
            catalog.install(blood_class(producer="Other"))

    def test_unknown_rejected(self):
        with pytest.raises(UnknownEventClassError):
            EventCatalog().get("nope")

    def test_classes_of_producer(self):
        catalog = EventCatalog()
        catalog.install(blood_class())
        assert [c.name for c in catalog.classes_of("Hospital")] == ["BloodTest"]
        assert catalog.classes_of("Other") == []

    def test_browse_shows_structure_and_flags(self):
        catalog = EventCatalog()
        catalog.install(blood_class())
        listing = catalog.browse()
        assert "BloodTest" in listing
        assert "Hemoglobin" in listing
        assert "sensitive" in listing
        assert "identifying" in listing


class TestEventIdMap:
    def entry(self, event_id: str = "evt-1") -> EventIdEntry:
        return EventIdEntry(
            event_id=event_id, producer_id="Hospital", src_event_id="src-9",
            event_type="BloodTest", subject_ref="p1", published_at=5.0,
        )

    def test_record_and_resolve(self):
        id_map = EventIdMap()
        id_map.record(self.entry())
        resolved = id_map.resolve("evt-1")
        assert resolved.src_event_id == "src-9"
        assert resolved.producer_id == "Hospital"
        assert "evt-1" in id_map and len(id_map) == 1

    def test_duplicate_global_id_rejected(self):
        id_map = EventIdMap()
        id_map.record(self.entry())
        with pytest.raises(UnknownEventError):
            id_map.record(self.entry())

    def test_resolve_unknown_rejected(self):
        with pytest.raises(UnknownEventError):
            EventIdMap().resolve("nope")

    def test_reverse_lookup(self):
        id_map = EventIdMap()
        id_map.record(self.entry())
        assert id_map.global_id_for("Hospital", "src-9") == "evt-1"
        with pytest.raises(UnknownEventError):
            id_map.global_id_for("Hospital", "missing")

    def test_entries_for_subject(self):
        id_map = EventIdMap()
        id_map.record(self.entry("evt-1"))
        assert len(id_map.entries_for_subject("p1")) == 1
        assert id_map.entries_for_subject("p2") == []
