"""Service interfaces of the data controller's collaborators.

The paper's data controller is a *mediator* composed of distinct roles —
broker, events index, policy enforcer (PEP/PIP/PDP), audit logger and the
producers' local cooperation gateways (§4, §5.2).  Each role is captured
here as a :class:`typing.Protocol` so implementations can be swapped,
sharded or distributed independently:

* :class:`IndexStore` — the events index (notification storage + inquiry);
* :class:`PolicyDecisionPoint` — Algorithm 1 resolution (decide + fetch);
* :class:`DetailFetcher` — the client side of the producers' local
  cooperation gateways (Algorithm 2 invocation);
* :class:`CooperationGateway` — the producer-side gateway itself;
* :class:`AuditSink` — the tamper-evident audit trail;
* :class:`CipherProvider` — named-key sealing of identifying information;
* :class:`NotificationTransport` — the pub/sub service bus.

Concrete implementations are registered by name in
:mod:`repro.runtime.kernel`; the :class:`~repro.core.controller.DataController`
resolves every collaborator through that kernel and only ever sees these
shapes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:  # imported for signatures only; protocols stay import-light
    from repro.core.events import EventClass, EventOccurrence
    from repro.core.messages import DetailMessage, NotificationMessage
    from repro.xmlmsg.document import XmlDocument


@runtime_checkable
class CipherProvider(Protocol):
    """Versioned named keys sealing/opening identifying tokens."""

    def create(self, name: str) -> None:
        """Create key ``name`` (idempotent)."""

    def rotate(self, name: str) -> int:
        """Advance ``name`` to its next version."""

    def current_version(self, name: str) -> int:
        """Current version number of key ``name``."""

    def seal(self, name: str, plaintext: str, sequence: int) -> str:
        """Seal ``plaintext`` under the current version of key ``name``."""

    def open_(self, name: str, token: str) -> str:
        """Open a token, resolving the key version from its prefix."""


@runtime_checkable
class IndexStore(Protocol):
    """The events index: sealed notification storage plus inquiry."""

    encrypt_identity: bool

    def store(self, notification: "NotificationMessage", sealed: Any | None = None) -> Any:
        """Index a published notification (identity slots sealed)."""

    def get(self, event_id: str) -> "NotificationMessage":
        """Rebuild the notification stored under ``event_id``."""

    def inquire(
        self,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
        producer_id: str | None = None,
    ) -> list["NotificationMessage"]:
        """Query notifications of the (already authorized) event types."""

    def seal_identity(self, notification: "NotificationMessage") -> Any:
        """Seal the identifying slots of ``notification`` (crypto stage)."""

    def count_for_type(self, event_type: str) -> int:
        """Number of indexed notifications of one class."""

    def __len__(self) -> int: ...

    def __contains__(self, event_id: str) -> bool: ...


@runtime_checkable
class AuditSink(Protocol):
    """Append-only, tamper-evident audit trail."""

    def append(self, record: Any) -> str:
        """Append a record; returns its chain digest."""

    def records(self) -> tuple[Any, ...]:
        """Snapshot of all records, oldest first."""

    def verify_integrity(self) -> None:
        """Re-verify the whole chain (raises on tampering)."""

    @property
    def head_digest(self) -> str:
        """Digest of the latest chain link."""

    def __len__(self) -> int: ...


@runtime_checkable
class NotificationTransport(Protocol):
    """The pub/sub fabric notifications fan out over."""

    def declare_topic(self, path: str) -> None: ...

    def subscribe(self, subscriber: str, pattern: str, handler: Callable) -> Any: ...

    def unsubscribe(self, subscription_id: str) -> None: ...

    def publish(
        self,
        topic: str,
        sender: str,
        body: object,
        correlation_id: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> Any: ...

    def dispatch(self) -> Any: ...


@runtime_checkable
class CooperationGateway(Protocol):
    """Producer-side detail store and Algorithm 2 endpoint."""

    producer_id: str

    def persist(self, occurrence: "EventOccurrence") -> None: ...

    def get_response(
        self,
        src_event_id: str,
        allowed_fields: frozenset[str] | set[str],
        event_id: str,
    ) -> "DetailMessage": ...

    def restore_detail(
        self, src_event_id: str, event_class: "EventClass", details: "XmlDocument"
    ) -> None: ...

    def stored_entries(self) -> list: ...


@runtime_checkable
class DetailFetcher(Protocol):
    """Client side of the gateways: fetch the allowed part of a detail.

    ``fetch`` runs Algorithm 2 remotely — the gateway filters before
    anything leaves the producer, so the fetcher only ever transports
    privacy-aware events.
    """

    def fetch(
        self,
        producer_id: str,
        src_event_id: str,
        allowed_fields: Iterable[str],
        event_id: str,
    ) -> "DetailMessage": ...


@runtime_checkable
class PolicyDecisionPoint(Protocol):
    """Algorithm 1: resolve a request for details through the policy stack."""

    def get_event_details(self, request: Any) -> "DetailMessage":
        """Resolve an authorization request; raises on deny."""

    def decide(self, request: Any) -> bool:
        """Policy decision only (no gateway call, no exception on deny)."""
