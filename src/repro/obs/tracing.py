"""Deterministic tracing: spans with parent/child context propagation.

One trace per pipeline execution (a publish, a request-for-details), one
child span per interceptor stage.  Timestamps come from the platform's
simulated :class:`~repro.clock.Clock` and span/trace ids from plain
counters, so the same seeded scenario always produces the same spans —
the trace-determinism tests diff the JSONL export byte for byte.

Span attributes pass through the :class:`~repro.obs.guard.PrivacyGuard`
exactly like metric labels: a span can say *which stage* denied *which
event type*, never *whose* event it was.

Federation support: a tracer built with a ``site`` prefix (the node's
guard-hashed label) mints globally unique ids, and ``span(...,
remote_parent=ctx)`` joins a trace started on another node — the wire
carries only a :class:`~repro.obs.context.TraceContext`, never content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock
from repro.obs.context import TraceContext
from repro.obs.guard import PrivacyGuard

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float | None = None
    status: str = STATUS_OK
    error: str = ""
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span duration in (simulated) seconds; 0.0 while still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, guard: PrivacyGuard, key: str, value: object) -> None:
        """Attach a guard-sanitised attribute."""
        self.attributes.update(dict(guard.sanitize({key: value})))

    def to_dict(self) -> dict:
        """Plain-dict rendering (JSONL export, assertions)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(sorted(self.attributes.items())),
        }


class _SpanContext:
    """Context manager closing a span (and popping the tracer stack)."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = STATUS_ERROR
            self.span.error = exc_type.__name__
        self._tracer._finish(self.span)
        return False  # never swallow — pipeline semantics stay intact


class Tracer:
    """Produces spans; propagates parent/child context via an open-span stack."""

    def __init__(self, clock: Clock, guard: PrivacyGuard | None = None,
                 site: str = "") -> None:
        self._clock = clock
        self.guard = guard or PrivacyGuard()
        #: Id prefix distinguishing this tracer's spans across a federation.
        #: Pass the node's guard-hashed label so exports stay pseudonymous.
        self.site = site
        #: Optional flight recorder mirroring finished spans into its ring.
        self.recorder = None
        self._finished: list[Span] = []
        self._stack: list[Span] = []
        self._trace_counter = 0
        self._span_counter = 0

    def _prefixed(self, body: str) -> str:
        return f"{self.site}/{body}" if self.site else body

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, remote_parent: TraceContext | None = None,
             **attributes: object) -> _SpanContext:
        """Open a span as a child of the innermost open span (or a new trace).

        With no open span, ``remote_parent`` — a context that crossed a
        federation link — adopts the caller's trace instead of starting a
        new one; the local stack always wins when non-empty.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif remote_parent is not None:
            trace_id = remote_parent.trace_id
            parent_id = remote_parent.span_id
        else:
            self._trace_counter += 1
            trace_id = self._prefixed(f"tr-{self._trace_counter:06d}")
            parent_id = None
        self._span_counter += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._prefixed(f"sp-{self._span_counter:06d}"),
            parent_id=parent_id,
            name=name,
            start=self._clock.now(),
            attributes=dict(self.guard.sanitize(attributes)),
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._clock.now()
        # The stack unwinds in LIFO order under the context-manager protocol.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self._finished.append(span)
        if self.recorder is not None:
            self.recorder.record_span(span)

    # -- inspection --------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> TraceContext | None:
        """The innermost open span as a wire-portable context."""
        span = self.current_span
        if span is None:
            return None
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    def finished_spans(self) -> tuple[Span, ...]:
        """Completed spans, in finish order (children before parents)."""
        return tuple(self._finished)

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [span for span in self._finished if span.name == name]

    def reset(self) -> None:
        """Forget finished spans (open spans are unaffected)."""
        self._finished.clear()
