"""Unit tests for repro.bus.envelope and repro.bus.queue."""

import pytest

from repro.bus.envelope import Envelope
from repro.bus.queue import MessageQueue
from repro.exceptions import BusError


def envelope(message_id: str = "m1", body: object = "payload") -> Envelope:
    return Envelope(message_id=message_id, topic="events.t", sender="s", body=body)


class TestEnvelope:
    def test_required_fields(self):
        with pytest.raises(BusError):
            Envelope(message_id="", topic="t", sender="s", body=1)
        with pytest.raises(BusError):
            Envelope(message_id="m", topic="", sender="s", body=1)
        with pytest.raises(BusError):
            Envelope(message_id="m", topic="t", sender="", body=1)

    def test_header_access(self):
        env = Envelope(message_id="m", topic="t", sender="s", body=1,
                       headers={"k": "v"})
        assert env.header("k") == "v"
        assert env.header("missing", "dflt") == "dflt"

    def test_with_topic_preserves_everything_else(self):
        env = envelope()
        moved = env.with_topic("events.other")
        assert moved.topic == "events.other"
        assert moved.message_id == env.message_id
        assert moved.body == env.body

    def test_size_estimate_scales_with_body(self):
        small = envelope(body="x").size_estimate()
        large = envelope(body="x" * 1000).size_estimate()
        assert large > small + 900

    def test_size_estimate_bytes_body(self):
        assert envelope(body=b"12345678").size_estimate() > 8


class TestMessageQueue:
    def test_enqueue_peek_ack(self):
        queue = MessageQueue("q")
        queue.enqueue(envelope("m1"))
        queue.enqueue(envelope("m2"))
        assert queue.depth == 2
        assert queue.peek().envelope.message_id == "m1"
        assert queue.ack().message_id == "m1"
        assert queue.depth == 1
        assert queue.stats.delivered == 1

    def test_empty_queue_operations_rejected(self):
        queue = MessageQueue("q")
        assert queue.peek() is None
        with pytest.raises(BusError):
            queue.ack()
        with pytest.raises(BusError):
            queue.nack()
        with pytest.raises(BusError):
            queue.evict_head()

    def test_nack_increments_attempts(self):
        queue = MessageQueue("q")
        queue.enqueue(envelope())
        assert queue.nack() == 1
        assert queue.nack() == 2
        assert queue.stats.redelivered == 2
        assert queue.depth == 1  # message stays at head

    def test_evict_head_counts_dead_letter(self):
        queue = MessageQueue("q")
        queue.enqueue(envelope("m1"))
        evicted = queue.evict_head()
        assert evicted.message_id == "m1"
        assert queue.stats.dead_lettered == 1
        assert queue.stats.delivered == 0

    def test_max_depth_enforced(self):
        queue = MessageQueue("q", max_depth=1)
        queue.enqueue(envelope("m1"))
        with pytest.raises(BusError):
            queue.enqueue(envelope("m2"))

    def test_bad_construction_rejected(self):
        with pytest.raises(BusError):
            MessageQueue("")
        with pytest.raises(BusError):
            MessageQueue("q", max_depth=0)

    def test_drain_returns_everything_in_order(self):
        queue = MessageQueue("q")
        for index in range(3):
            queue.enqueue(envelope(f"m{index}"))
        drained = queue.drain()
        assert [env.message_id for env in drained] == ["m0", "m1", "m2"]
        assert queue.depth == 0
