"""Ablation A3: deny-by-default and subscription gating under probing.

§5.1's semantics: "unless permitted by some privacy policy an Event
Details cannot be accessed by any subject."  We bombard a platform with
randomized unauthorized probes — wrong purposes, wrong actors, foreign
event ids, unauthorized subscriptions — and verify zero leaks and full
denial logging, at measured cost.

Expected shape: no probe ever yields a field value; every probe appends a
DENY audit record; the deny path stays cheap.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import build_micro_platform
from repro import AccessDeniedError, DataConsumer
from repro.audit.log import AuditAction, AuditOutcome
from repro.audit.query import AuditQuery

WRONG_PURPOSES = ["statistical-analysis", "administration", "reimbursement"]


def test_probing_storm_yields_zero_leaks(benchmark):
    """500 randomized unauthorized probes leak nothing."""
    platform = build_micro_platform(n_policies=5)
    intruders = [
        DataConsumer(platform.controller, f"Intruder-{i}", f"Intruder {i}")
        for i in range(5)
    ]
    rng = random.Random(99)

    def storm():
        leaks = 0
        for _ in range(100):
            intruder = rng.choice(intruders)
            purpose = rng.choice(WRONG_PURPOSES + ["healthcare-treatment"])
            try:
                detail = intruder.request_details_by_id(
                    "BloodTest", platform.notification.event_id, purpose)
                if detail.exposed_values():
                    leaks += 1
            except AccessDeniedError:
                pass
        return leaks

    leaks = benchmark.pedantic(storm, rounds=5, iterations=1)
    assert leaks == 0


def test_every_denied_probe_is_logged(benchmark):
    """Denials are not silent: each appends one DENY audit record."""
    platform = build_micro_platform()
    intruder = DataConsumer(platform.controller, "Intruder", "Intruder")

    def probe_and_count():
        before = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
                  .by_outcome(AuditOutcome.DENY).count(platform.controller.audit_log))
        for purpose in WRONG_PURPOSES:
            try:
                intruder.request_details_by_id(
                    "BloodTest", platform.notification.event_id, purpose)
            except AccessDeniedError:
                pass
        after = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
                 .by_outcome(AuditOutcome.DENY).count(platform.controller.audit_log))
        return after - before

    new_denials = benchmark.pedantic(probe_and_count, rounds=10, iterations=1)
    assert new_denials == len(WRONG_PURPOSES)
    platform.controller.audit_log.verify_integrity()


def test_unauthorized_subscription_gate(benchmark):
    """Subscription requests without a policy are rejected and queued."""
    platform = build_micro_platform()
    counter = {"n": 0}

    def attempt():
        counter["n"] += 1
        newcomer = DataConsumer(
            platform.controller, f"Newcomer-{counter['n']}", "Newcomer")
        try:
            newcomer.subscribe("BloodTest")
            return False
        except AccessDeniedError:
            return True

    rejected = benchmark.pedantic(attempt, rounds=30, iterations=1)
    assert rejected
    assert len(platform.controller.pending_requests) >= 1


@pytest.mark.parametrize("n_policies", [1, 50])
def test_deny_cost_scales_with_candidates(benchmark, n_policies):
    """Denies still walk the candidate set; measure that cost."""
    platform = build_micro_platform(n_policies=n_policies)

    def denied():
        try:
            platform.consumer.request_details(platform.notification, "reimbursement")
        except AccessDeniedError:
            return True
        return False

    assert benchmark(denied)
