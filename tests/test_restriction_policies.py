"""Tests for restriction (deny) policies — exceptions carved out of grants."""

import pytest

from repro import DataConsumer, DataController, DataProducer, PrivacyPolicy
from repro.core.policy import DetailRequestSpec, PolicyRepository
from repro.exceptions import AccessDeniedError, PolicyError
from tests.conftest import blood_test_schema


def restriction(actor_id: str = "Hospital/Psychiatry",
                purposes=frozenset({"healthcare-treatment"})) -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id="restrict-1", producer_id="Lab", event_type="BloodTest",
        fields=frozenset(), purposes=purposes, actor_id=actor_id, deny=True,
    )


def grant(actor_id: str = "Hospital") -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id="grant-1", producer_id="Lab", event_type="BloodTest",
        fields=frozenset({"PatientId", "Hemoglobin"}),
        purposes=frozenset({"healthcare-treatment"}), actor_id=actor_id,
    )


class TestRestrictionValidation:
    def test_restriction_carries_no_fields(self):
        with pytest.raises(PolicyError, match="releases no fields"):
            PrivacyPolicy(
                policy_id="bad", producer_id="Lab", event_type="BloodTest",
                fields=frozenset({"PatientId"}),
                purposes=frozenset({"healthcare-treatment"}),
                actor_id="X", deny=True,
            )

    def test_grant_still_needs_fields(self):
        with pytest.raises(PolicyError, match="accessible field"):
            PrivacyPolicy(
                policy_id="bad", producer_id="Lab", event_type="BloodTest",
                fields=frozenset(), purposes=frozenset({"healthcare-treatment"}),
                actor_id="X",
            )

    def test_restriction_compiles_to_deny_rule(self):
        from repro.xacml.model import Effect

        compiled = restriction().to_xacml()
        assert compiled.rules[0].effect is Effect.DENY
        assert compiled.obligations == ()


class TestRepositorySemantics:
    def test_matching_policy_vetoed_by_restriction(self):
        repo = PolicyRepository()
        repo.add(grant())
        repo.add(restriction())
        # Psychiatry sits under Hospital, so the grant matches — but the
        # restriction vetoes it.
        vetoed = DetailRequestSpec("Hospital/Psychiatry", "BloodTest",
                                   "healthcare-treatment")
        allowed = DetailRequestSpec("Hospital/Cardiology", "BloodTest",
                                    "healthcare-treatment")
        assert repo.matching_policy("Lab", vetoed) is None
        matched = repo.matching_policy("Lab", allowed)
        assert matched is not None and matched.policy_id == "grant-1"

    def test_has_policy_for_respects_restriction(self):
        repo = PolicyRepository()
        repo.add(grant())
        repo.add(restriction())
        assert repo.has_policy_for("Lab", "BloodTest", "Hospital/Cardiology")
        assert not repo.has_policy_for("Lab", "BloodTest", "Hospital/Psychiatry")

    def test_revoking_restriction_restores_grant(self):
        repo = PolicyRepository()
        repo.add(grant())
        repo.add(restriction())
        repo.revoke("restrict-1")
        assert repo.has_policy_for("Lab", "BloodTest", "Hospital/Psychiatry")


@pytest.fixture()
def platform():
    controller = DataController(seed="restrict")
    lab = DataProducer(controller, "Lab", "Laboratory")
    blood = lab.declare_event_class(blood_test_schema())
    cardiology = DataConsumer(controller, "Hospital/Cardiology", "Cardiology")
    psychiatry = DataConsumer(controller, "Hospital/Psychiatry", "Psychiatry")
    lab.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("Hospital", "unit")],       # hospital-wide grant
        purposes=["healthcare-treatment"],
    )
    lab.define_restriction(
        "BloodTest", consumer=("Hospital/Psychiatry", "unit"),
        purposes=["healthcare-treatment"],
        label="psychiatry excluded from lab results",
    )
    notification = lab.publish(
        blood, subject_id="p1", subject_name="Mario Bianchi", summary="done",
        details={"PatientId": "p1", "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})
    return controller, lab, cardiology, psychiatry, notification


class TestEndToEndRestriction:
    def test_unrestricted_unit_is_served(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        detail = cardiology.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14.0}

    def test_restricted_unit_is_denied(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        with pytest.raises(AccessDeniedError):
            psychiatry.request_details(notification, "healthcare-treatment")

    def test_restriction_blocks_subscription_too(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        cardiology.subscribe("BloodTest")
        with pytest.raises(AccessDeniedError):
            psychiatry.subscribe("BloodTest")

    def test_descendants_of_restricted_unit_also_denied(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        ward = DataConsumer(controller, "Hospital/Psychiatry/WardB", "Ward B")
        with pytest.raises(AccessDeniedError):
            ward.request_details_by_id("BloodTest", notification.event_id,
                                       "healthcare-treatment")

    def test_restriction_is_purpose_scoped(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        # Grant psychiatry a different purpose; the restriction only names
        # healthcare-treatment, so the new grant stands.
        lab.define_policy(
            "BloodTest", fields=["Hemoglobin"],
            consumers=[("Hospital/Psychiatry", "unit")],
            purposes=["statistical-analysis"],
        )
        detail = psychiatry.request_details(notification, "statistical-analysis")
        assert detail.exposed_values() == {"Hemoglobin": 14.0}

    def test_restriction_appears_on_dashboard(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        text = controller.dashboard.render("Lab")
        assert "restriction" in text.lower() or "Psychiatry" in text

    def test_restriction_generates_xacml(self, platform):
        controller, lab, cardiology, psychiatry, notification = platform
        restrictions = [p for p in controller.policies.policies_of_producer("Lab")
                        if p.deny]
        assert len(restrictions) == 1
        xacml = controller.policies.xacml_text(restrictions[0].policy_id)
        assert 'Effect="Deny"' in xacml
