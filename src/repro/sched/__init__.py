"""Fair multi-tenant admission control and scheduling (kernel kind ``sched``).

See :mod:`repro.sched.scheduler` for the policy engine and
``docs/SCHEDULING.md`` for the design.  The fairness benchmark harness
lives in :mod:`repro.sched.fairness` and is imported explicitly by its
consumers (it pulls in the workload engine, which must not load just
because the bus asked for a scheduler).
"""

from repro.sched.scheduler import (
    DEFAULT_COSTS,
    POLICY_DRR,
    POLICY_FIFO,
    SHED_TOTAL,
    SYSTEM_TENANT,
    TENANT_SHARE,
    TENANT_SHED,
    TENANT_STARVATION,
    TENANT_THROTTLED,
    THROTTLED_TOTAL,
    WORK_DETAILS,
    WORK_FANOUT,
    WORK_PUBLISH,
    SchedConfig,
    TenantScheduler,
    jain_index,
    tenant_of,
)
from repro.sched.tokens import PenaltyBox, TokenBucket

__all__ = [
    "DEFAULT_COSTS",
    "POLICY_DRR",
    "POLICY_FIFO",
    "SHED_TOTAL",
    "SYSTEM_TENANT",
    "TENANT_SHARE",
    "TENANT_SHED",
    "TENANT_STARVATION",
    "TENANT_THROTTLED",
    "THROTTLED_TOTAL",
    "WORK_DETAILS",
    "WORK_FANOUT",
    "WORK_PUBLISH",
    "PenaltyBox",
    "SchedConfig",
    "TenantScheduler",
    "TokenBucket",
    "jain_index",
    "tenant_of",
]
