#!/usr/bin/env python
"""Schema check for ``BENCH_batch.json`` (schema ``css-bench-batch/1``).

CI runs ``bench_batch.py --out BENCH_batch.json`` and then this script.
Beyond shape validation it enforces the two semantic gates of batched
execution:

* ``equivalence.identical`` must be ``true``, and every matrix cell must
  report identical audit and decision digests — batching may never
  change what the platform decides or what its audit trail says;
* the batched capacity path at ``batch_size=256`` must sustain at least
  ``1.3x`` the unbatched events/sec at every node count
  (``speedup.min_speedup_at_256 >= 1.3``).

Usage::

    python benchmarks/check_batch_schema.py BENCH_batch.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-batch/1"

#: Batch sizes the equivalence matrix must cover.
REQUIRED_BATCH_SIZES = (1, 16, 256)

#: Durable store kinds the matrix must cover.
REQUIRED_STORES = ("jsonl", "segmented")

#: CI floor for the batched/unbatched throughput ratio at size 256.
MIN_SPEEDUP = 1.3


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _positive_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


def _validate_check(entry: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    if not _positive_int(entry.get("nodes")):
        problems.append(f"{where}.nodes must be a positive integer")
    if entry.get("store") not in REQUIRED_STORES:
        problems.append(f"{where}.store must be one of "
                        f"{', '.join(REQUIRED_STORES)}")
    if not _positive_int(entry.get("batch_size")):
        problems.append(f"{where}.batch_size must be a positive integer")
    for flag in ("audit_identical", "decisions_identical"):
        if entry.get(flag) is not True:
            problems.append(
                f"{where}.{flag} must be true — batching changed this cell"
            )
    for digest in ("audit_digest", "decision_digest"):
        value = entry.get(digest)
        if not isinstance(value, str) or not value.startswith("sha256:"):
            problems.append(f"{where}.{digest} must be a sha256: digest string")
    return problems


def _validate_speedup_figure(entry: object, where: str,
                             keys: tuple[str, ...]) -> list[str]:
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    for key in keys:
        value = entry.get(key)
        if not _number(value) or value <= 0:
            problems.append(f"{where}.{key} must be a positive number")
    return problems


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    if not isinstance(payload.get("quick"), bool):
        problems.append("quick must be a boolean")

    equivalence = payload.get("equivalence")
    if not isinstance(equivalence, dict):
        problems.append("equivalence must be an object")
    else:
        if equivalence.get("identical") is not True:
            problems.append(
                "equivalence.identical must be true — a batched run "
                "produced a different audit digest or decision stream"
            )
        checks = equivalence.get("checks")
        if not isinstance(checks, list) or not checks:
            problems.append("equivalence.checks must be a non-empty list")
            checks = []
        covered_sizes: set[int] = set()
        covered_stores: set[str] = set()
        for index, entry in enumerate(checks):
            problems.extend(
                _validate_check(entry, f"equivalence.checks[{index}]")
            )
            if isinstance(entry, dict):
                if _positive_int(entry.get("batch_size")):
                    covered_sizes.add(entry["batch_size"])
                if isinstance(entry.get("store"), str):
                    covered_stores.add(entry["store"])
        for size in REQUIRED_BATCH_SIZES:
            if checks and size not in covered_sizes:
                problems.append(
                    f"equivalence matrix must cover batch_size={size}"
                )
        for store in REQUIRED_STORES:
            if checks and store not in covered_stores:
                problems.append(
                    f"equivalence matrix must cover the {store!r} store kind"
                )

    speedup = payload.get("speedup")
    if not isinstance(speedup, dict):
        problems.append("speedup must be an object")
        return problems
    figures = speedup.get("nodes")
    if not isinstance(figures, list) or not figures:
        problems.append("speedup.nodes must be a non-empty list")
        figures = []
    for index, figure in enumerate(figures):
        where = f"speedup.nodes[{index}]"
        problems.extend(_validate_speedup_figure(
            figure, where,
            ("baseline_events_per_second", "batched_events_per_second",
             "speedup"),
        ))
        if isinstance(figure, dict) and not _positive_int(figure.get("nodes")):
            problems.append(f"{where}.nodes must be a positive integer")
    sweep = speedup.get("batch_sweep")
    if not isinstance(sweep, list) or not sweep:
        problems.append("speedup.batch_sweep must be a non-empty list")
        sweep = []
    for index, figure in enumerate(sweep):
        problems.extend(_validate_speedup_figure(
            figure, f"speedup.batch_sweep[{index}]",
            ("events_per_second", "speedup"),
        ))
    minimum = speedup.get("min_speedup_at_256")
    if not _number(minimum) or minimum <= 0:
        problems.append("speedup.min_speedup_at_256 must be a positive number")
    elif minimum < MIN_SPEEDUP:
        problems.append(
            f"speedup.min_speedup_at_256 {minimum:.2f} is below the "
            f"{MIN_SPEEDUP:.1f}x floor — batching stopped paying for itself"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_batch_schema.py BENCH_batch.json", file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_batch_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_batch_schema: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_batch_schema: {problem}", file=sys.stderr)
        return 1
    cells = len(payload["equivalence"]["checks"])
    minimum = payload["speedup"]["min_speedup_at_256"]
    print(f"check_batch_schema: {path} ok ({cells} equivalence cells "
          f"identical, min speedup {minimum:.2f}x at batch_size=256)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
