"""XACML policy model.

Mirrors the XACML 2.0 structure the paper's Fig. 8 shows: a ``Policy`` has a
``Target`` (who/what it applies to), ``Rule``s with effects, and
``Obligation``s (CSS uses one obligation, ``css:release-fields``, whose
assignments list the releasable fields).  ``PolicySet`` groups policies
under a policy-combining algorithm — the policy repository of the data
controller is one big deny-overrides policy set per producer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import PolicyError
from repro.xacml.context import RequestContext
from repro.xacml.functions import resolve

#: Obligation id used by CSS field-release obligations.
OBLIGATION_RELEASE_FIELDS = "css:release-fields"
#: Obligation id used to demand an audit record on permit.
OBLIGATION_AUDIT = "css:audit-access"


class Effect(enum.Enum):
    """Rule effects."""

    PERMIT = "Permit"
    DENY = "Deny"


class CombiningAlgorithm(enum.Enum):
    """Rule/policy combining algorithms (the three the platform uses)."""

    DENY_OVERRIDES = "deny-overrides"
    PERMIT_OVERRIDES = "permit-overrides"
    FIRST_APPLICABLE = "first-applicable"


@dataclass(frozen=True)
class Match:
    """One attribute test inside a target."""

    attribute: str
    function_id: str
    literal: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise PolicyError("match needs an attribute designator")
        resolve(self.function_id)  # validates the function id eagerly

    def evaluate(self, request: RequestContext) -> bool:
        """True iff *any* value in the request's bag satisfies the function.

        An empty bag never matches (XACML's "no attribute value" case).
        """
        function = resolve(self.function_id)
        return any(function(value, self.literal) for value in request.bag(self.attribute))


@dataclass(frozen=True)
class Target:
    """A conjunction of match groups.

    ``all_of`` is a tuple of :class:`Match` — every match must hold
    (logical AND).  ``any_of`` is a tuple of alternative match tuples —
    at least one alternative must fully hold (OR of ANDs), mirroring
    XACML's AnyOf/AllOf nesting.  An empty target matches everything.
    """

    all_of: tuple[Match, ...] = ()
    any_of: tuple[tuple[Match, ...], ...] = ()

    def applies_to(self, request: RequestContext) -> bool:
        """Whether the target matches ``request``."""
        if not all(match.evaluate(request) for match in self.all_of):
            return False
        if self.any_of:
            return any(
                all(match.evaluate(request) for match in alternative)
                for alternative in self.any_of
            )
        return True


@dataclass(frozen=True)
class Obligation:
    """An operation the PEP must perform when the decision fires."""

    obligation_id: str
    fulfill_on: Effect
    assignments: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.obligation_id:
            raise PolicyError("obligation needs an id")

    def assignment_values(self, name: str) -> tuple[str, ...]:
        """All values assigned to parameter ``name``."""
        return tuple(value for key, value in self.assignments if key == name)


@dataclass(frozen=True)
class Rule:
    """A rule: a target plus an effect."""

    rule_id: str
    effect: Effect
    target: Target = field(default_factory=Target)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise PolicyError("rule needs an id")

    def evaluate(self, request: RequestContext) -> Effect | None:
        """The rule's effect if its target applies, else None."""
        return self.effect if self.target.applies_to(request) else None


@dataclass(frozen=True)
class Policy:
    """A policy: target, rules, combining algorithm, obligations."""

    policy_id: str
    target: Target
    rules: tuple[Rule, ...]
    combining: CombiningAlgorithm = CombiningAlgorithm.DENY_OVERRIDES
    obligations: tuple[Obligation, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.policy_id:
            raise PolicyError("policy needs an id")
        if not self.rules:
            raise PolicyError(f"policy {self.policy_id!r} needs at least one rule")
        rule_ids = [rule.rule_id for rule in self.rules]
        if len(set(rule_ids)) != len(rule_ids):
            raise PolicyError(f"policy {self.policy_id!r} has duplicate rule ids")

    def obligations_for(self, effect: Effect) -> tuple[Obligation, ...]:
        """Obligations to discharge when the policy decides ``effect``."""
        return tuple(ob for ob in self.obligations if ob.fulfill_on is effect)


@dataclass(frozen=True)
class PolicySet:
    """A set of policies under a policy-combining algorithm."""

    policy_set_id: str
    policies: tuple[Policy, ...]
    combining: CombiningAlgorithm = CombiningAlgorithm.DENY_OVERRIDES
    target: Target = field(default_factory=Target)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.policy_set_id:
            raise PolicyError("policy set needs an id")
        policy_ids = [policy.policy_id for policy in self.policies]
        if len(set(policy_ids)) != len(policy_ids):
            raise PolicyError(f"policy set {self.policy_set_id!r} has duplicate policy ids")
