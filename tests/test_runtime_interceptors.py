"""Interceptor-pipeline semantics: ordering, short-circuits, typed errors.

The service-kernel refactor routes both hot paths through
:mod:`repro.runtime.interceptors`; these tests pin the contract: stage
order is deterministic and inspectable, a deny short-circuits the chain
but the audit stage still records the attempt, and stage failures surface
as the platform's typed exceptions, never as pipeline-internal wrappers.
"""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.audit.log import AuditAction, AuditOutcome
from repro.core.consent import ConsentRegistry, ConsentScope
from repro.core.enforcement import DetailRequest
from repro.exceptions import (
    AccessDeniedError,
    PrivacyError,
    UnknownProducerError,
    ValidationError,
)
from repro.runtime.interceptors import Interceptor, InterceptorPipeline, Invocation
from tests.conftest import blood_test_schema


def build_world():
    controller = DataController(seed="pipe")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    return controller, hospital, blood, doctor


def publish(hospital, blood, subject="p1"):
    return hospital.publish(
        blood, subject_id=subject, subject_name="Mario Bianchi", summary="done",
        details={"PatientId": subject, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})


class Tag:
    """A stub stage that records its passage and forwards."""

    def __init__(self, name):
        self.name = name

    def intercept(self, invocation, proceed):
        invocation.context.setdefault("seen", []).append(self.name)
        return proceed(invocation)


class TestPipelineMachinery:
    def test_stages_execute_in_declared_order(self):
        pipeline = InterceptorPipeline(
            [Tag("a"), Tag("b"), Tag("c")],
            terminal=lambda inv: tuple(inv.context["seen"]),
            name="demo",
        )
        invocation = Invocation("demo")
        assert pipeline.execute(invocation) == ("a", "b", "c")
        assert invocation.trace == ["a", "b", "c"]
        assert pipeline.stage_names == ("a", "b", "c")

    def test_short_circuit_skips_downstream_stages(self):
        class Stop:
            name = "stop"

            def intercept(self, invocation, proceed):
                return "stopped"  # never calls proceed

        pipeline = InterceptorPipeline(
            [Tag("a"), Stop(), Tag("never")],
            terminal=lambda inv: "terminal",
        )
        invocation = Invocation("demo")
        assert pipeline.execute(invocation) == "stopped"
        assert invocation.trace == ["a", "stop"]
        assert invocation.context["seen"] == ["a"]

    def test_stage_exceptions_surface_unwrapped(self):
        class Boom:
            name = "boom"

            def intercept(self, invocation, proceed):
                raise ValidationError("malformed payload")

        pipeline = InterceptorPipeline([Tag("a"), Boom()], terminal=lambda inv: None)
        with pytest.raises(ValidationError, match="malformed payload"):
            pipeline.execute(Invocation("demo"))

    def test_stub_stages_satisfy_the_interceptor_protocol(self):
        assert isinstance(Tag("a"), Interceptor)


class TestControllerWiring:
    def test_publish_pipeline_stage_order_is_deterministic(self):
        controller = DataController(seed="wire")
        assert controller.publish_pipeline.stage_names == (
            "stats", "contract", "admission", "audit", "consent",
            "persist", "crypto", "index", "route",
        )

    def test_enforcement_pipeline_stage_order_is_deterministic(self):
        controller = DataController(seed="wire")
        assert controller.enforcer.pipeline.stage_names == (
            "stats", "audit", "resolve", "consent", "decide", "fetch", "filter",
        )

    def test_details_edge_pipeline_stage_order(self):
        controller = DataController(seed="wire")
        assert controller.details_pipeline.stage_names == (
            "contract", "authenticate",
        )


class TestDenyShortCircuits:
    def test_policy_deny_is_audited_and_gateway_never_called(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)
        intruder = DataConsumer(controller, "Mallory", "Mallory", role="clerk")
        with pytest.raises(AccessDeniedError):
            controller.request_details(
                "Mallory",
                DetailRequest(actor=intruder.actor, event_type="BloodTest",
                              event_id=notification.event_id,
                              purpose="healthcare-treatment"),
            )
        denies = [r for r in controller.audit_log.records()
                  if r.action is AuditAction.DETAIL_REQUEST
                  and r.outcome is AuditOutcome.DENY]
        assert len(denies) == 1
        assert denies[0].actor == "Mallory"
        # the fetch stage was short-circuited: nothing left the producer
        stats = hospital.gateway.stats
        assert stats.served_from_cache == 0 and stats.served_from_source == 0
        assert controller.enforcer.stats.denies == 1

    def test_consent_veto_on_publish_returns_none_but_is_audited(self):
        controller, hospital, blood, doctor = build_world()
        consent = ConsentRegistry("Hospital")
        consent.opt_out("p1", ConsentScope.NOTIFICATIONS)
        controller.attach_consent("Hospital", consent)
        assert publish(hospital, blood, "p1") is None
        assert len(controller.index) == 0  # nothing indexed or routed
        denies = [r for r in controller.audit_log.records()
                  if r.action is AuditAction.PUBLISH
                  and r.outcome is AuditOutcome.DENY]
        assert len(denies) == 1
        assert denies[0].detail == "data subject opted out of event sharing"
        assert controller.publish_stats.consent_blocked == 1
        # the veto fired before the persist stage: no event id was consumed
        ok = publish(hospital, blood, "p2")
        assert ok.event_id.startswith("evt-000001")

    def test_admission_failure_surfaces_as_typed_exception(self):
        controller, hospital, blood, doctor = build_world()
        rival = DataProducer(controller, "Rival", "Rival clinic")
        with pytest.raises(UnknownProducerError):
            publish(rival, blood)
        assert controller.publish_stats.failures == 1

    def test_field_filter_stage_blocks_overreleasing_gateway(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)

        real_fetch = controller.detail_fetcher.fetch

        class LeakyFetcher:
            def fetch(self, producer_id, src_event_id, allowed_fields, event_id):
                # a buggy/hostile gateway ignores the policy's field set
                return real_fetch(producer_id, src_event_id,
                                  ["PatientId", "Hemoglobin", "HivResult"],
                                  event_id)

        for stage in controller.enforcer.pipeline._interceptors:  # noqa: SLF001
            if stage.name == "fetch":
                stage._fetcher = LeakyFetcher()  # noqa: SLF001
        with pytest.raises(PrivacyError, match="outside the policy grant"):
            doctor.request_details(notification, "healthcare-treatment")
