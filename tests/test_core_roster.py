"""Unit and integration tests for patient-roster scoping."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.core.roster import PatientRoster
from repro.exceptions import ConfigurationError
from tests.conftest import blood_test_schema


class TestPatientRoster:
    def test_assign_and_check(self):
        roster = PatientRoster()
        roster.assign("Dr-Rossi", "p1")
        assert roster.is_assigned("Dr-Rossi", "p1")
        assert not roster.is_assigned("Dr-Rossi", "p2")
        assert not roster.is_assigned("Dr-Verdi", "p1")

    def test_assign_many(self):
        roster = PatientRoster()
        roster.assign_many("Dr-Rossi", ["p1", "p2", "p3"])
        assert roster.subjects_of("Dr-Rossi") == {"p1", "p2", "p3"}

    def test_unassign(self):
        roster = PatientRoster()
        roster.assign("Dr-Rossi", "p1")
        roster.unassign("Dr-Rossi", "p1")
        assert not roster.is_assigned("Dr-Rossi", "p1")
        roster.unassign("Dr-Rossi", "never-assigned")  # no-op

    def test_consumers_of(self):
        roster = PatientRoster()
        roster.assign("Dr-Rossi", "p1")
        roster.assign("SocialServices", "p1")
        roster.assign("Dr-Verdi", "p2")
        assert set(roster.consumers_of("p1")) == {"Dr-Rossi", "SocialServices"}
        assert roster.consumers_of("p9") == []

    def test_empty_ids_rejected(self):
        roster = PatientRoster()
        with pytest.raises(ConfigurationError):
            roster.assign("", "p1")
        with pytest.raises(ConfigurationError):
            roster.assign("Dr-Rossi", "")


@pytest.fixture()
def roster_world():
    controller = DataController(seed="roster")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    rossi = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    verdi = DataConsumer(controller, "Dr-Verdi", "Dr. Verdi", role="family-doctor")
    statistics = DataConsumer(controller, "Statistics", "Statistics",
                              role="statistician")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    hospital.define_policy(
        "BloodTest", fields=["Hemoglobin"],
        consumers=[("statistician", "role")], purposes=["statistical-analysis"])
    controller.roster.assign_many("Dr-Rossi", ["p1", "p2"])
    controller.roster.assign("Dr-Verdi", "p3")
    rossi.subscribe("BloodTest", roster_scoped=True)
    verdi.subscribe("BloodTest", roster_scoped=True)
    statistics.subscribe("BloodTest")  # class-wide: monitors everything

    def publish(subject):
        return hospital.publish(
            blood, subject_id=subject, subject_name=f"Patient {subject}",
            summary=f"blood test for {subject}",
            details={"PatientId": subject, "Name": f"Patient {subject}",
                     "Hemoglobin": 14.0, "Glucose": 90.0, "HivResult": "negative"})

    return controller, hospital, rossi, verdi, statistics, publish


class TestRosterScopedDelivery:
    def test_each_doctor_sees_only_own_patients(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        publish("p1")
        publish("p2")
        publish("p3")
        publish("p4")  # nobody's patient
        assert {n.subject_ref for n in rossi.inbox} == {"p1", "p2"}
        assert {n.subject_ref for n in verdi.inbox} == {"p3"}

    def test_class_wide_subscription_unaffected(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        for subject in ("p1", "p2", "p3", "p4"):
            publish(subject)
        assert len(statistics.inbox) == 4

    def test_roster_change_takes_effect_immediately(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        publish("p9")
        assert rossi.inbox == []
        controller.roster.assign("Dr-Rossi", "p9")
        publish("p9")
        assert len(rossi.inbox) == 1
        controller.roster.unassign("Dr-Rossi", "p9")
        publish("p9")
        assert len(rossi.inbox) == 1  # no new delivery

    def test_filtered_notifications_are_not_audited_as_delivered(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        publish("p4")  # reaches only the statistics office
        from repro.audit.log import AuditAction
        from repro.audit.query import AuditQuery

        notified = (AuditQuery().by_action(AuditAction.NOTIFY)
                    .run(controller.audit_log))
        assert {record.actor for record in notified} == {"Statistics"}

    def test_index_inquiry_scoped_for_rostered_consumers(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        for subject in ("p1", "p2", "p3", "p4"):
            publish(subject)
        rossi_view = rossi.inquire_index(["BloodTest"])
        assert {n.subject_ref for n in rossi_view} == {"p1", "p2"}
        # Consumers without a roster keep the class-wide view.
        stats_view = statistics.inquire_index(["BloodTest"])
        assert len(stats_view) == 4

    def test_catch_up_respects_roster(self, roster_world):
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        for subject in ("p1", "p3", "p4"):
            publish(subject)
        rossi.clear_inbox()
        assert rossi.catch_up("BloodTest") == 1
        assert rossi.inbox[0].subject_ref == "p1"

    def test_detail_requests_still_policy_gated(self, roster_world):
        """The roster scopes delivery; field access stays with policies."""
        controller, hospital, rossi, verdi, statistics, publish = roster_world
        publish("p1")
        detail = rossi.request_details(rossi.inbox[0], "healthcare-treatment")
        assert set(detail.exposed_values()) == {"PatientId", "Hemoglobin"}
