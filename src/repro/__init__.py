"""repro — reproduction of the CSS privacy-preserving event-driven platform.

Implements Armellin et al., *Privacy Preserving Event Driven Integration
for Interoperating Social and Health Systems* (SDM@VLDB 2010): an
event-driven SOA in which producers publish *notification messages*
(who/what/when/where) through a central data controller while sensitive
*detail messages* stay at the source, released field-by-field through a
purpose-based, deny-by-default privacy-policy enforcement pipeline
(XACML PEP/PIP/PDP + producer-side local cooperation gateways).

Quickstart::

    from repro import DataController, DataProducer, DataConsumer, ActorKind

    controller = DataController()
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    # declare classes, define policies, publish, subscribe, request details...

See README.md for the full tour and DESIGN.md for the architecture map.
"""

from repro.clock import Clock, WallClock
from repro.core.actors import Actor, ActorDirectory, ActorKind
from repro.core.consent import ConsentRegistry, ConsentScope
from repro.core.consumer import DataConsumer
from repro.core.controller import DataController
from repro.core.elicitation import ElicitationWizard, PolicyDashboard
from repro.core.enforcement import DetailRequest, PolicyEnforcer
from repro.core.events import EventClass, EventOccurrence
from repro.core.gateway import LocalCooperationGateway
from repro.core.messages import DetailMessage, NotificationMessage
from repro.core.policy import (
    DetailRequestSpec,
    PolicyRepository,
    PrivacyPolicy,
    is_privacy_safe,
)
from repro.core.producer import DataProducer
from repro.core.purposes import (
    ADMINISTRATION,
    HEALTHCARE_TREATMENT,
    REIMBURSEMENT,
    SERVICE_MONITORING,
    STATISTICAL_ANALYSIS,
    Purpose,
    PurposeRegistry,
)
from repro.exceptions import AccessDeniedError, CssError
from repro.federation import FederatedPlatform
from repro.runtime.kernel import RuntimeConfig, ServiceKernel, default_kernel
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import (
    BooleanType,
    DateType,
    DecimalType,
    EnumerationType,
    IntegerType,
    StringType,
)

__version__ = "1.0.0"

__all__ = [
    "ADMINISTRATION",
    "AccessDeniedError",
    "Actor",
    "ActorDirectory",
    "ActorKind",
    "BooleanType",
    "Clock",
    "ConsentRegistry",
    "ConsentScope",
    "CssError",
    "DataConsumer",
    "DataController",
    "DataProducer",
    "DateType",
    "DecimalType",
    "DetailMessage",
    "DetailRequest",
    "DetailRequestSpec",
    "ElementDecl",
    "ElicitationWizard",
    "EnumerationType",
    "EventClass",
    "EventOccurrence",
    "FederatedPlatform",
    "HEALTHCARE_TREATMENT",
    "IntegerType",
    "LocalCooperationGateway",
    "MessageSchema",
    "NotificationMessage",
    "Occurs",
    "PolicyDashboard",
    "PolicyEnforcer",
    "PolicyRepository",
    "PrivacyPolicy",
    "Purpose",
    "PurposeRegistry",
    "REIMBURSEMENT",
    "RuntimeConfig",
    "SERVICE_MONITORING",
    "STATISTICAL_ANALYSIS",
    "ServiceKernel",
    "StringType",
    "WallClock",
    "XmlDocument",
    "default_kernel",
    "is_privacy_safe",
]
