"""Citizen consent management.

The paper lists "patient/citizen empowerment by supporting consent
collection at data source level (opt-in, opt-out options to share the
events and their content)" among its challenges (§1) and notes the system
"can be used also directly by the citizens to specify and control their
consent on data exchanges" (§7).

Consent is held *at each producer* (data-source level) and consulted on the
two disclosure paths:

* :attr:`ConsentScope.NOTIFICATIONS` — whether events about the subject may
  be published (notification + index entry) at all;
* :attr:`ConsentScope.DETAILS` — whether detail requests may be resolved.

Opting out of notifications implies opting out of details (no notification
⇒ no detail request is possible anyway, but a late request against an
already-published notification must also be refused).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ConsentError


class ConsentScope(enum.Enum):
    """What a consent decision covers."""

    NOTIFICATIONS = "notifications"
    DETAILS = "details"


@dataclass(frozen=True)
class ConsentDecision:
    """One recorded decision of a data subject."""

    subject_id: str
    scope: ConsentScope
    granted: bool
    event_type: str | None = None  # None = all classes of this producer
    decided_at: float = 0.0


class ConsentRegistry:
    """Per-producer consent store with a configurable default.

    ``default_granted=True`` models the deployment's opt-out regime (events
    flow unless the citizen objects); pass ``False`` for a strict opt-in
    regime.  The most specific, most recent decision wins: a class-specific
    decision overrides an all-classes decision, and later decisions
    override earlier ones at the same specificity.
    """

    def __init__(self, producer_id: str, default_granted: bool = True) -> None:
        self.producer_id = producer_id
        self.default_granted = default_granted
        self._decisions: list[ConsentDecision] = []
        #: Monotonic decision counter — the perf layer's decision cache
        #: validates against it, so a revocation (opt-out) immediately
        #: invalidates every cached decision of this producer.
        self.version = 0

    def __len__(self) -> int:
        return len(self._decisions)

    def record(self, decision: ConsentDecision) -> None:
        """Append a consent decision (history is kept for audit)."""
        if not decision.subject_id:
            raise ConsentError("consent decision needs a subject id")
        self._decisions.append(decision)
        self.version += 1

    def opt_out(
        self,
        subject_id: str,
        scope: ConsentScope,
        event_type: str | None = None,
        at: float = 0.0,
    ) -> ConsentDecision:
        """Record an opt-out and return the decision."""
        decision = ConsentDecision(subject_id, scope, False, event_type, at)
        self.record(decision)
        return decision

    def opt_in(
        self,
        subject_id: str,
        scope: ConsentScope,
        event_type: str | None = None,
        at: float = 0.0,
    ) -> ConsentDecision:
        """Record an opt-in and return the decision."""
        decision = ConsentDecision(subject_id, scope, True, event_type, at)
        self.record(decision)
        return decision

    def _effective(self, subject_id: str, scope: ConsentScope, event_type: str) -> bool:
        specific: ConsentDecision | None = None
        general: ConsentDecision | None = None
        for decision in self._decisions:
            if decision.subject_id != subject_id or decision.scope is not scope:
                continue
            if decision.event_type == event_type:
                specific = decision  # later decisions overwrite earlier ones
            elif decision.event_type is None:
                general = decision
        if specific is not None:
            return specific.granted
        if general is not None:
            return general.granted
        return self.default_granted

    def allows_notification(self, subject_id: str, event_type: str) -> bool:
        """Whether events of ``event_type`` about the subject may be published."""
        return self._effective(subject_id, ConsentScope.NOTIFICATIONS, event_type)

    def allows_details(self, subject_id: str, event_type: str) -> bool:
        """Whether detail requests about the subject may be resolved.

        A notification opt-out implies a detail opt-out.
        """
        if not self.allows_notification(subject_id, event_type):
            return False
        return self._effective(subject_id, ConsentScope.DETAILS, event_type)

    def decisions_of(self, subject_id: str) -> list[ConsentDecision]:
        """The subject's full decision history (data-subject reports)."""
        return [d for d in self._decisions if d.subject_id == subject_id]
