"""Privacy-safe observability: metrics, tracing, guard and exporters.

See :mod:`repro.obs.telemetry` for the kernel-resolved facade,
:mod:`repro.obs.guard` for the privacy guard that keeps telemetry from
becoming a side channel, :mod:`repro.obs.context` /
:mod:`repro.obs.stitch` for cross-node trace propagation and stitching,
:mod:`repro.obs.slo` for the SLO engine, :mod:`repro.obs.profiling` for
the deterministic profiler, :mod:`repro.obs.timeseries` for the windowed
time-series store, :mod:`repro.obs.recorder` for the flight recorder,
:mod:`repro.obs.incident` for automatic incident capture, and
``docs/OBSERVABILITY.md`` for the naming scheme and exporter formats.
"""

from repro.obs.context import TraceContext
from repro.obs.exporters import (
    metric_lines,
    render_latency_table,
    render_metrics_table,
    span_lines,
    write_jsonl,
)
from repro.obs.guard import (
    MODE_HASH,
    MODE_REJECT,
    PrivacyGuard,
    TelemetryPrivacyError,
)
from repro.obs.incident import (
    INCIDENT_SCHEMA,
    IncidentMonitor,
    WatchdogConfig,
    build_bundle,
    merge_events,
    write_bundle,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiling import NoopProfiler, SamplingProfiler
from repro.obs.recorder import FlightRecorder, NoopFlightRecorder
from repro.obs.slo import (
    SLO_ALERT_TOPIC,
    NoopSLOEngine,
    SLObjective,
    SLOEngine,
    SLOReport,
    SLOStatus,
    default_objectives,
)
from repro.obs.stitch import (
    StitchedTrace,
    stitch,
    stitch_summary,
    stitched_lines,
)
from repro.obs.telemetry import (
    PIPELINE_DURATION,
    PIPELINE_OUTCOMES,
    STAGE_DURATION,
    InMemoryTelemetry,
    NoopTelemetry,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "INCIDENT_SCHEMA",
    "InMemoryTelemetry",
    "IncidentMonitor",
    "MODE_HASH",
    "MODE_REJECT",
    "MetricsRegistry",
    "NoopFlightRecorder",
    "NoopProfiler",
    "NoopSLOEngine",
    "NoopTelemetry",
    "PIPELINE_DURATION",
    "PIPELINE_OUTCOMES",
    "PrivacyGuard",
    "SLO_ALERT_TOPIC",
    "SLOEngine",
    "SLOReport",
    "SLOStatus",
    "SLObjective",
    "STAGE_DURATION",
    "SamplingProfiler",
    "Span",
    "StitchedTrace",
    "TelemetryPrivacyError",
    "TimeSeriesStore",
    "TraceContext",
    "Tracer",
    "WatchdogConfig",
    "build_bundle",
    "default_objectives",
    "merge_events",
    "metric_lines",
    "render_latency_table",
    "render_metrics_table",
    "span_lines",
    "stitch",
    "stitch_summary",
    "stitched_lines",
    "write_bundle",
    "write_jsonl",
]
