"""Policy Decision Point.

Evaluates a request against a policy or policy set and returns a
:class:`~repro.xacml.context.ResponseContext` with the decision and the
obligations of the deciding policies.  Deny-by-default is realised by the
caller wrapping the repository in a deny-overrides policy set whose
``NOT_APPLICABLE`` outcome the PEP maps to deny — exactly the semantics of
paper §5.1 ("unless permitted by some privacy policy an Event Details
cannot be accessed by any subject").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xacml.context import Decision, ObligationOutcome, RequestContext, ResponseContext
from repro.xacml.model import CombiningAlgorithm, Effect, Policy, PolicySet, Rule


@dataclass
class PdpStats:
    """Evaluation counters for the benchmarks."""

    requests: int = 0
    policies_evaluated: int = 0
    rules_evaluated: int = 0


class PolicyDecisionPoint:
    """Evaluates XACML policies and policy sets.

    ``telemetry`` (a :mod:`repro.obs.telemetry` backend) mirrors the
    :class:`PdpStats` counters into the metrics registry and labels every
    evaluation with its decision — the Fig. 4 deny-rate series operators
    watch, with nothing identifying in the labels.
    """

    def __init__(self, telemetry=None) -> None:
        self.stats = PdpStats()
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    # -- public API ----------------------------------------------------------

    def evaluate_policy(self, policy: Policy, request: RequestContext) -> ResponseContext:
        """Evaluate one policy against ``request``."""
        self.stats.requests += 1
        before = self.stats.policies_evaluated
        response = self._policy_decision(policy, request)
        self._record_evaluation(response, self.stats.policies_evaluated - before)
        return response

    def evaluate_policy_set(self, policy_set: PolicySet, request: RequestContext) -> ResponseContext:
        """Evaluate a policy set against ``request``."""
        self.stats.requests += 1
        before = self.stats.policies_evaluated
        if not policy_set.target.applies_to(request):
            response = ResponseContext(Decision.NOT_APPLICABLE)
            self._record_evaluation(response, 0)
            return response
        outcomes = []
        for policy in policy_set.policies:
            outcome = self._policy_decision(policy, request)
            outcomes.append(outcome)
            if self._can_short_circuit(policy_set.combining, outcome.decision):
                break
        response = self._combine(policy_set.combining, outcomes)
        self._record_evaluation(response, self.stats.policies_evaluated - before)
        return response

    def _record_evaluation(self, response: ResponseContext, policies_walked: int) -> None:
        if self._telemetry is None:
            return
        self._telemetry.count(
            "xacml.pdp.evaluations_total", decision=response.decision.name.lower()
        )
        self._telemetry.observe(
            "xacml.pdp.policies_per_request", policies_walked,
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0),
        )

    # -- policy evaluation -----------------------------------------------------

    def _policy_decision(self, policy: Policy, request: RequestContext) -> ResponseContext:
        self.stats.policies_evaluated += 1
        if not policy.target.applies_to(request):
            return ResponseContext(Decision.NOT_APPLICABLE)
        effects = []
        for rule in policy.rules:
            effect = self._rule_effect(rule, request)
            if effect is not None:
                effects.append(effect)
                if self._effect_short_circuits(policy.combining, effect):
                    break
        decision = self._combine_effects(policy.combining, effects)
        response = ResponseContext(decision)
        if decision in (Decision.PERMIT, Decision.DENY):
            firing = Effect.PERMIT if decision is Decision.PERMIT else Effect.DENY
            for obligation in policy.obligations_for(firing):
                response.obligations.append(
                    ObligationOutcome(
                        obligation.obligation_id,
                        _group_assignments(obligation.assignments),
                    )
                )
        return response

    def _rule_effect(self, rule: Rule, request: RequestContext) -> Effect | None:
        self.stats.rules_evaluated += 1
        return rule.evaluate(request)

    # -- combining ----------------------------------------------------------------

    @staticmethod
    def _effect_short_circuits(combining: CombiningAlgorithm, effect: Effect) -> bool:
        if combining is CombiningAlgorithm.DENY_OVERRIDES:
            return effect is Effect.DENY
        if combining is CombiningAlgorithm.PERMIT_OVERRIDES:
            return effect is Effect.PERMIT
        return True  # first-applicable: the first applicable rule decides

    @staticmethod
    def _combine_effects(combining: CombiningAlgorithm, effects: list[Effect]) -> Decision:
        if not effects:
            return Decision.NOT_APPLICABLE
        if combining is CombiningAlgorithm.DENY_OVERRIDES:
            if Effect.DENY in effects:
                return Decision.DENY
            return Decision.PERMIT
        if combining is CombiningAlgorithm.PERMIT_OVERRIDES:
            if Effect.PERMIT in effects:
                return Decision.PERMIT
            return Decision.DENY
        return Decision.PERMIT if effects[0] is Effect.PERMIT else Decision.DENY

    @staticmethod
    def _can_short_circuit(combining: CombiningAlgorithm, decision: Decision) -> bool:
        if decision is Decision.NOT_APPLICABLE:
            return False
        if combining is CombiningAlgorithm.DENY_OVERRIDES:
            return decision is Decision.DENY
        if combining is CombiningAlgorithm.PERMIT_OVERRIDES:
            return decision is Decision.PERMIT
        return True

    def _combine(self, combining: CombiningAlgorithm, outcomes: list[ResponseContext]) -> ResponseContext:
        applicable = [o for o in outcomes if o.decision is not Decision.NOT_APPLICABLE]
        if not applicable:
            return ResponseContext(Decision.NOT_APPLICABLE)
        if combining is CombiningAlgorithm.DENY_OVERRIDES:
            denies = [o for o in applicable if o.decision is Decision.DENY]
            chosen = denies if denies else applicable
            decision = Decision.DENY if denies else Decision.PERMIT
        elif combining is CombiningAlgorithm.PERMIT_OVERRIDES:
            permits = [o for o in applicable if o.decision is Decision.PERMIT]
            chosen = permits if permits else applicable
            decision = Decision.PERMIT if permits else Decision.DENY
        else:  # first-applicable
            chosen = [applicable[0]]
            decision = applicable[0].decision
        combined = ResponseContext(decision)
        for outcome in chosen:
            if outcome.decision is decision:
                combined.obligations.extend(outcome.obligations)
        return combined


def _group_assignments(assignments: tuple[tuple[str, str], ...]) -> dict[str, tuple[str, ...]]:
    grouped: dict[str, list[str]] = {}
    for name, value in assignments:
        grouped.setdefault(name, []).append(value)
    return {name: tuple(values) for name, values in grouped.items()}
