"""Actors and organizational units.

A *subject* in the paper's policies "is an actor reflecting the particular
hierarchical structure of the organization" (§5.1): a top-level body such as
*Hospital S. Maria* or a department inside it such as its *Laboratory*.
Actor ids are slash-separated paths encoding that hierarchy, so a policy
granted to ``Hospital-S-Maria`` also covers ``Hospital-S-Maria/Laboratory``
via the ``hierarchy-descendant`` match.  Actors also carry a functional
*role* (e.g. ``family-doctor``) — Fig. 8's policy targets the role rather
than a specific actor.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

_SEGMENT = re.compile(r"^[A-Za-z0-9_\-]+$")


class ActorKind(enum.Enum):
    """How a party participates in the platform."""

    PRODUCER = "producer"
    CONSUMER = "consumer"
    BOTH = "both"

    @property
    def produces(self) -> bool:
        """Whether this kind may declare and publish events."""
        return self in (ActorKind.PRODUCER, ActorKind.BOTH)

    @property
    def consumes(self) -> bool:
        """Whether this kind may subscribe and request details."""
        return self in (ActorKind.CONSUMER, ActorKind.BOTH)


@dataclass(frozen=True)
class Actor:
    """A participating organization, department, or professional."""

    actor_id: str
    name: str
    kind: ActorKind
    role: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        for segment in self.actor_id.split("/"):
            if not segment or not _SEGMENT.match(segment):
                raise ConfigurationError(f"illegal actor id {self.actor_id!r}")

    @property
    def path_segments(self) -> tuple[str, ...]:
        """The hierarchy segments of the actor id."""
        return tuple(self.actor_id.split("/"))

    @property
    def organization(self) -> str:
        """The top-level organization this actor belongs to."""
        return self.path_segments[0]

    @property
    def parent_id(self) -> str | None:
        """The id of the enclosing unit, or None for top-level actors."""
        segments = self.path_segments
        return "/".join(segments[:-1]) if len(segments) > 1 else None

    def is_within(self, ancestor_id: str) -> bool:
        """Whether this actor is ``ancestor_id`` or nested inside it."""
        return self.actor_id == ancestor_id or self.actor_id.startswith(ancestor_id + "/")


class ActorDirectory:
    """The data controller's directory of known parties."""

    def __init__(self) -> None:
        self._actors: dict[str, Actor] = {}

    def __len__(self) -> int:
        return len(self._actors)

    def __contains__(self, actor_id: str) -> bool:
        return actor_id in self._actors

    def add(self, actor: Actor) -> None:
        """Register an actor; duplicate ids are rejected."""
        if actor.actor_id in self._actors:
            raise ConfigurationError(f"actor {actor.actor_id!r} already registered")
        self._actors[actor.actor_id] = actor

    def get(self, actor_id: str) -> Actor:
        """Look up an actor by id."""
        try:
            return self._actors[actor_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown actor {actor_id!r}") from exc

    def all_actors(self) -> list[Actor]:
        """Every registered actor."""
        return list(self._actors.values())

    def producers(self) -> list[Actor]:
        """Actors that may produce events."""
        return [actor for actor in self._actors.values() if actor.kind.produces]

    def consumers(self) -> list[Actor]:
        """Actors that may consume events."""
        return [actor for actor in self._actors.values() if actor.kind.consumes]

    def with_role(self, role: str) -> list[Actor]:
        """Actors carrying functional ``role``."""
        return [actor for actor in self._actors.values() if actor.role == role]

    def descendants_of(self, ancestor_id: str) -> list[Actor]:
        """Actors at or below ``ancestor_id`` in the hierarchy."""
        return [actor for actor in self._actors.values() if actor.is_within(ancestor_id)]
