"""End-to-end CSS scenario runner.

Builds a full platform (controller, producers with gateways and consent,
consumers with role-appropriate policies and subscriptions), feeds it a
seeded workload, and collects the disclosure/traceability metrics the
Fig. 1 and ablation benchmarks compare against the legacy baselines.

Policy regime: every producer grants each consumer role **exactly the
fields that role needs** (the templates' ``needed_fields``), for the
purpose matching the role — the minimal-usage configuration the paper's
elicitation tool is designed to make easy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clock import Clock
from repro.core.consumer import DataConsumer
from repro.core.controller import DataController
from repro.core.events import EventClass
from repro.core.producer import DataProducer
from repro.exceptions import AccessDeniedError, ConfigurationError
from repro.runtime.kernel import RuntimeConfig
from repro.sim.domain import (
    ROLE_ADMINISTRATOR,
    ROLE_FAMILY_DOCTOR,
    ROLE_SOCIAL_WORKER,
    ROLE_STATISTICIAN,
)
from repro.sim.generators import (
    DEFAULT_SEED,
    SyntheticPopulation,
    WorkloadGenerator,
    WorkloadItem,
    standard_event_templates,
)
from repro.sim.metrics import DisclosureLedger, ExposureSummary

#: Which purpose each consumer role declares on its requests.
ROLE_PURPOSES: dict[str, str] = {
    ROLE_FAMILY_DOCTOR: "healthcare-treatment",
    ROLE_SOCIAL_WORKER: "healthcare-treatment",
    ROLE_STATISTICIAN: "statistical-analysis",
    ROLE_ADMINISTRATOR: "administration",
}

#: Default template → producer assignment of the synthetic deployment.
DEFAULT_PRODUCER_ASSIGNMENT: dict[str, str] = {
    "BloodTest": "Hospital-S-Maria/Laboratory",
    "HospitalDischarge": "Hospital-S-Maria",
    "SpecialistReferral": "Hospital-S-Maria",
    "HomeCareServiceEvent": "HomeAssist-Coop",
    "MealDelivery": "HomeAssist-Coop",
    "AutonomyAssessment": "Municipality-Trento/SocialServices",
    "TelecareAlarm": "TelecareSpA",
}

#: Default consumers (actor id, role) of the synthetic deployment.
DEFAULT_CONSUMERS: tuple[tuple[str, str], ...] = (
    ("FamilyDoctors/Dr-Rossi", ROLE_FAMILY_DOCTOR),
    ("Municipality-Trento/SocialWorkers", ROLE_SOCIAL_WORKER),
    ("Province-Trentino/Statistics", ROLE_STATISTICIAN),
    ("Province-Trentino/SocialWelfare", ROLE_ADMINISTRATOR),
)


@dataclass
class ScenarioConfig:
    """Knobs of one scenario run."""

    n_patients: int = 50
    n_events: int = 200
    detail_request_rate: float = 0.3
    seed: int = DEFAULT_SEED
    encrypt_identity: bool = True
    mean_interarrival: float = 60.0
    #: Kernel backend selection (None = in-memory defaults).
    runtime: "RuntimeConfig | None" = None
    consumers: tuple[tuple[str, str], ...] = DEFAULT_CONSUMERS
    producer_assignment: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_PRODUCER_ASSIGNMENT)
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.detail_request_rate <= 1.0:
            raise ConfigurationError("detail_request_rate must be within [0, 1]")


@dataclass
class ScenarioReport:
    """Outcome of one CSS scenario run."""

    exposure: ExposureSummary
    events_published: int = 0
    events_blocked_by_consent: int = 0
    notifications_delivered: int = 0
    detail_requests: int = 0
    detail_permits: int = 0
    detail_denies: int = 0
    endpoint_calls: int = 0
    subscriptions: int = 0
    audit_records: int = 0
    audit_chain_verified: bool = False

    def to_text(self) -> str:
        """Printable run summary."""
        lines = [
            "CSS SCENARIO REPORT",
            "===================",
            f"events published:        {self.events_published}",
            f"blocked by consent:      {self.events_blocked_by_consent}",
            f"notifications delivered: {self.notifications_delivered}",
            f"detail requests:         {self.detail_requests} "
            f"(permit {self.detail_permits} / deny {self.detail_denies})",
            f"endpoint calls:          {self.endpoint_calls}",
            f"subscriptions:           {self.subscriptions}",
            f"audit records:           {self.audit_records} "
            f"(chain verified: {self.audit_chain_verified})",
            self.exposure.to_row(),
        ]
        return "\n".join(lines)


class CssScenario:
    """Builds and drives one full CSS deployment."""

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        self.config = config or ScenarioConfig()
        self.clock = Clock()
        self.controller = DataController(
            clock=self.clock,
            seed=f"scenario-{self.config.seed}",
            encrypt_identity=self.config.encrypt_identity,
            runtime=self.config.runtime,
        )
        self.templates = standard_event_templates()
        self.population = SyntheticPopulation(self.config.n_patients, seed=self.config.seed)
        self.producers: dict[str, DataProducer] = {}
        self.consumers: dict[str, DataConsumer] = {}
        self.event_classes: dict[str, EventClass] = {}
        self._rng = random.Random(self.config.seed + 1)
        self._build()

    # -- setup ------------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        # Producers and their event classes.
        for template_name, producer_id in config.producer_assignment.items():
            template = self.templates[template_name]
            producer = self.producers.get(producer_id)
            if producer is None:
                producer = DataProducer(
                    self.controller, producer_id, producer_id.replace("-", " "),
                )
                self.producers[producer_id] = producer
            event_class = producer.declare_event_class(
                template.build_schema(),
                category=template.category,
                description=template.schema_factory().documentation,
            )
            self.event_classes[template_name] = event_class

        # Consumers, policies granting exactly the needed fields, and
        # subscriptions.
        for consumer_id, role in config.consumers:
            consumer = DataConsumer(
                self.controller, consumer_id, consumer_id.replace("-", " "), role=role,
            )
            self.consumers[consumer_id] = consumer
            purpose = ROLE_PURPOSES[role]
            for template_name, template in self.templates.items():
                needed = template.needed_fields.get(role)
                if not needed:
                    continue
                producer = self.producers[config.producer_assignment[template_name]]
                producer.define_policy(
                    event_type=template_name,
                    fields=list(needed),
                    consumers=[(consumer_id, "unit")],
                    purposes=[purpose],
                    label=f"{role} access to {template_name}",
                )
                consumer.subscribe(template_name)

    # -- run -----------------------------------------------------------------

    def generate_workload(self) -> list[WorkloadItem]:
        """The seeded workload for this configuration."""
        generator = WorkloadGenerator(seed=self.config.seed)
        return generator.generate(
            self.population,
            self.templates,
            self.config.n_events,
            mean_interarrival=self.config.mean_interarrival,
        )

    def run(self, workload: list[WorkloadItem] | None = None) -> ScenarioReport:
        """Publish the workload, issue detail requests, collect metrics."""
        config = self.config
        items = workload if workload is not None else self.generate_workload()
        ledger = DisclosureLedger("CSS (two-phase)")
        published = 0
        blocked = 0
        requests = permits = denies = 0

        for item in items:
            template = self.templates[item.template_name]
            producer = self.producers[config.producer_assignment[item.template_name]]
            if item.offset_seconds > self.clock.now():
                self.clock.set(item.offset_seconds)
            notification = producer.publish(
                self.event_classes[item.template_name],
                subject_id=item.patient.patient_id,
                subject_name=item.patient.name,
                summary=item.summary,
                details=dict(item.details),
            )
            ledger.record_event()
            if notification is None:
                blocked += 1
                continue
            published += 1
            ledger.add_bytes(len(notification.to_xml().encode()))

            sensitive = set(template.build_schema().sensitive_fields)
            for consumer in self.consumers.values():
                needed = template.needed_fields.get(consumer.actor.role)
                if not needed or not consumer.is_subscribed_to(item.template_name):
                    continue
                if self._rng.random() >= config.detail_request_rate:
                    continue
                requests += 1
                purpose = ROLE_PURPOSES[consumer.actor.role]
                try:
                    detail = consumer.request_details(notification, purpose)
                except AccessDeniedError:
                    denies += 1
                    continue
                permits += 1
                ledger.add_bytes(len(detail.to_xml().encode()))
                ledger.record_document(
                    receiver=consumer.actor_id,
                    receiver_role=consumer.actor.role,
                    event_type=item.template_name,
                    disclosed_fields=detail.exposed_values(),
                    sensitive_fields=sensitive,
                    needed_fields=set(needed),
                    traced=True,  # every request lands in the audit chain
                )

        self.controller.audit_log.verify_integrity()
        return ScenarioReport(
            exposure=ledger.summary(),
            events_published=published,
            events_blocked_by_consent=blocked,
            notifications_delivered=sum(
                len(consumer.inbox) for consumer in self.consumers.values()
            ),
            detail_requests=requests,
            detail_permits=permits,
            detail_denies=denies,
            endpoint_calls=self.controller.endpoints.total_calls(),
            subscriptions=self.controller.bus.subscription_count,
            audit_records=len(self.controller.audit_log),
            audit_chain_verified=True,
        )
