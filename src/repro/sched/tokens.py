"""Token-bucket admission and the abusive-tenant penalty box.

Both primitives run entirely on the simulated clock — refill and
cool-down are functions of ``now``, never of wall time — so admission
decisions are deterministic under seed like everything else in the
platform.

A :class:`TokenBucket` shapes a tenant's *sustained* ingress rate while
forgiving bursts up to its capacity; a :class:`PenaltyBox` watches the
bucket's verdicts and demotes a tenant that keeps arriving above its
sustained rate to a penalty weight for a cool-down period, after which
it recovers automatically (the scheduler multiplies the tenant's DRR
weight by :attr:`PenaltyBox.penalty_weight` while the tenant is boxed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass
class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    ``take`` refills lazily from the elapsed simulated time, then either
    consumes and admits or refuses without consuming.  A refusal means
    the caller's sustained arrival rate exceeds ``rate``.
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    updated_at: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("token-bucket rate must be positive")
        if self.burst <= 0:
            raise ConfigurationError("token-bucket burst must be positive")
        self.tokens = self.burst

    def refill(self, now: float) -> None:
        """Credit tokens for the simulated time elapsed since last seen."""
        if now > self.updated_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated_at) * self.rate
            )
            self.updated_at = now

    def take(self, now: float, amount: float = 1.0) -> bool:
        """Admit one arrival (consume ``amount`` tokens) or refuse."""
        self.refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


@dataclass
class PenaltyBox:
    """Demotes a tenant whose arrivals keep exceeding its bucket.

    Every bucket refusal is a *strike*; ``strike_limit`` strikes demote
    the tenant (its effective scheduling weight is multiplied by
    ``penalty_weight``) until ``cooldown_seconds`` of simulated time
    pass.  A conforming arrival after ``forgive_seconds`` of good
    behaviour clears accumulated strikes, so a short burst is not
    punished like sustained abuse.
    """

    strike_limit: int = 8
    forgive_seconds: float = 5.0
    cooldown_seconds: float = 30.0
    penalty_weight: float = 0.1
    strikes: int = field(init=False, default=0)
    last_strike_at: float = field(init=False, default=0.0)
    penalized_until: float = field(init=False, default=0.0)
    demotions: int = field(init=False, default=0)
    recoveries: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.strike_limit < 1:
            raise ConfigurationError("strike_limit must be at least 1")
        if not 0.0 < self.penalty_weight <= 1.0:
            raise ConfigurationError("penalty_weight must be in (0, 1]")

    def record(self, admitted: bool, now: float) -> None:
        """Feed one bucket verdict into the box's state machine."""
        self._maybe_recover(now)
        if admitted:
            if (
                self.strikes
                and now - self.last_strike_at >= self.forgive_seconds
            ):
                self.strikes = 0
            return
        self.strikes += 1
        self.last_strike_at = now
        if self.strikes >= self.strike_limit and not self.is_penalized(now):
            self.penalized_until = now + self.cooldown_seconds
            self.demotions += 1
            self.strikes = 0

    def is_penalized(self, now: float) -> bool:
        """Whether the tenant is currently demoted."""
        self._maybe_recover(now)
        return now < self.penalized_until

    def weight_factor(self, now: float) -> float:
        """The multiplier applied to the tenant's scheduling weight."""
        return self.penalty_weight if self.is_penalized(now) else 1.0

    def _maybe_recover(self, now: float) -> None:
        if self.penalized_until and now >= self.penalized_until:
            self.penalized_until = 0.0
            self.recoveries += 1
