"""The incident-capture harness: anomaly workload + watchdogs + bundles.

``run_incident_capture`` drives one workload scenario (the abusive-tenant
``anomaly`` preset by default) against a fresh federation with the flight
recorder on (``recorder="ring"``), a windowed time-series store ticking
on the simulated clock, the SLO engine evaluating with short/long burn
windows, and an :class:`~repro.obs.incident.IncidentMonitor` polling its
watchdogs after every clock advance.  The first trigger freezes every
node's recorder and produces a deterministic ``css-incident/1`` bundle;
same-seed runs write byte-identical bundle files.

The harness reuses the fairness benchmark's saturation configuration
(overloaded service rate, tight token buckets) so the anomaly scenario
reliably demotes the abusive tenant and burns SLO budget — exactly the
conditions an operator would want a flight-recorder trail for.
"""

from __future__ import annotations

from pathlib import Path

from repro.clock import Clock
from repro.obs.incident import (
    IncidentMonitor,
    WatchdogConfig,
    merged_timeline,
    write_bundle,
)
from repro.obs.slo import SLOEngine
from repro.obs.telemetry import InMemoryTelemetry
from repro.obs.timeseries import TimeSeriesStore
from repro.sched.fairness import (
    DEFAULT_DRAIN_SECONDS,
    DEFAULT_NODES,
    DEFAULT_SERVICE_RATE,
    bench_sched_config,
)
from repro.workload.capacity import (
    build_platform,
    deploy_workload,
    execute_workload,
)
from repro.workload.config import WorkloadConfig, workload_config
from repro.workload.engine import WorkloadEngine

#: Time-series snapshot cadence (simulated seconds).
DEFAULT_TICK_INTERVAL = 0.25
#: Short/long SLO burn windows, sized to the anomaly run's ~5 simulated
#: seconds of traffic (the stock 5 s / 60 s windows would both span the
#: whole run).
DEFAULT_SHORT_WINDOW = 1.0
DEFAULT_LONG_WINDOW = 5.0


def run_incident_capture(
    workload: WorkloadConfig | None = None,
    nodes: int = DEFAULT_NODES,
    recorder: str = "ring",
    sched: str = "fair",
    drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    service_rate: float = DEFAULT_SERVICE_RATE,
    watchdogs: WatchdogConfig | None = None,
    source: str = "repro.workload.incidents",
    out_dir: str | Path | None = None,
    tick_interval: float = DEFAULT_TICK_INTERVAL,
    short_window: float = DEFAULT_SHORT_WINDOW,
    long_window: float = DEFAULT_LONG_WINDOW,
) -> dict:
    """One watched workload run; returns the run payload.

    The payload carries the run counters, the captured incident bundles
    (plain data; written under ``out_dir`` when given) and the merged
    cross-node recorder timeline.  ``recorder="noop"`` runs the same
    workload with recording off — the overhead benchmark's baseline arm.
    """
    workload = workload or workload_config("anomaly")
    clock = Clock()
    telemetry = InMemoryTelemetry(
        clock=clock,
        guard_mode="hash",
        secret=f"css-workload-{workload.seed}",
    )
    platform = build_platform(
        workload, nodes, clock, telemetry,
        sched=sched, sched_config=bench_sched_config(service_rate),
        recorder=recorder,
    )
    engine = WorkloadEngine(workload)
    event_classes = deploy_workload(platform, engine, workload)
    for node in platform.nodes():
        for tenant in workload.tenants:
            node.controller.sched.set_weight(tenant.tenant_id, tenant.weight)

    watched = recorder != "noop"
    timeseries = slo = monitor = None
    on_advance = None
    if watched:
        timeseries = TimeSeriesStore(
            telemetry.metrics, clock, interval=tick_interval
        )
        recorders = platform.flight_recorders()
        first_recorder = (
            recorders[min(recorders)] if recorders else None
        )
        first_node = platform.nodes()[0]
        slo = SLOEngine(
            telemetry,
            timeseries=timeseries,
            recorder=first_recorder,
            short_window=short_window,
            long_window=long_window,
        )
        monitor = IncidentMonitor(
            platform,
            timeseries=timeseries,
            slo=slo,
            clock=clock,
            config=watchdogs,
            source=source,
            alert_bus=first_node.controller.bus,
        )
        refresh = {"due": 0.0}

        def on_advance() -> None:
            # The whole watched apparatus runs on the tick cadence, not
            # on every clock advance: refresh the fairness gauges (pure
            # accounting — decisions are untouched), snapshot the
            # registry, poll the watchdogs.  Detection latency is one
            # tick interval, and the per-advance cost is one float
            # compare — the overhead benchmark's <5 % gate depends on it.
            now = clock.now()
            if now >= refresh["due"]:
                refresh["due"] = now + tick_interval
                platform.record_fairness()
                timeseries.maybe_tick()
                monitor.poll()

    counters = execute_workload(
        platform, engine, event_classes, clock, on_advance=on_advance
    )
    platform.dispatch_all()
    clock.advance(drain_seconds)
    platform.record_fairness()
    platform.record_queue_depths()
    if watched:
        timeseries.tick()
        monitor.poll()

    bundle_paths: list[str] = []
    incidents = monitor.incidents if monitor is not None else []
    if out_dir is not None:
        for bundle in incidents:
            bundle_paths.append(str(write_bundle(out_dir, bundle)))
    return {
        "scenario": workload.scenario,
        "seed": workload.seed,
        "nodes": nodes,
        "ops": workload.ops,
        "recorder": recorder,
        "sched": sched,
        **counters,
        "simulated_seconds": clock.now(),
        "ticks": timeseries.ticks if timeseries is not None else 0,
        "incidents": incidents,
        "bundle_paths": bundle_paths,
        "timeline": merged_timeline(platform),
    }
