"""Tests for care-pathway mining."""

import pytest

from repro import DataController, DataProducer
from repro.analytics.pathways import END, START, PathwayMiner
from repro.clock import DAY
from repro.exceptions import ConfigurationError
from repro.sim.generators import standard_event_templates


@pytest.fixture()
def pathway_world():
    """Three citizens with known pathways:

    * p1, p2: Discharge -> HomeCare -> HomeCare
    * p3:     Alarm -> Discharge
    """
    controller = DataController(seed="paths")
    templates = standard_event_templates()
    hospital = DataProducer(controller, "Hospital", "Hospital")
    coop = DataProducer(controller, "Coop", "Coop")
    telecare = DataProducer(controller, "Telecare", "Telecare")
    discharge = hospital.declare_event_class(templates["HospitalDischarge"].build_schema())
    home_care = coop.declare_event_class(
        templates["HomeCareServiceEvent"].build_schema(), category="social")
    alarm = telecare.declare_event_class(
        templates["TelecareAlarm"].build_schema(), category="social")

    import random

    rng = random.Random(0)

    def publish(producer, event_class, template_name, subject):
        template = templates[template_name]
        patient_stub = type("P", (), {
            "patient_id": subject, "name": f"Pat {subject}",
            "age_at": lambda self, year=2010: 80,
        })()
        producer.publish(
            event_class, subject_id=subject, subject_name=f"Pat {subject}",
            summary="event",
            details=template.build_details(rng, patient_stub))
        controller.clock.advance(DAY)

    for subject in ("p1", "p2"):
        publish(hospital, discharge, "HospitalDischarge", subject)
        publish(coop, home_care, "HomeCareServiceEvent", subject)
        publish(coop, home_care, "HomeCareServiceEvent", subject)
    publish(telecare, alarm, "TelecareAlarm", "p3")
    publish(hospital, discharge, "HospitalDischarge", "p3")
    return controller


class TestSequences:
    def test_sequences_grouped_and_ordered(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=1)
        sequences = miner.sequences()
        assert [t for t, _ in sequences["p1"]] == [
            "HospitalDischarge", "HomeCareServiceEvent", "HomeCareServiceEvent"]
        assert [t for t, _ in sequences["p3"]] == [
            "TelecareAlarm", "HospitalDischarge"]


class TestTransitionGraph:
    def test_edge_counts(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=1)
        graph = miner.transition_graph()
        assert graph["HospitalDischarge"]["HomeCareServiceEvent"]["count"] == 2
        assert graph["HomeCareServiceEvent"]["HomeCareServiceEvent"]["count"] == 2
        assert graph["TelecareAlarm"]["HospitalDischarge"]["count"] == 1
        assert graph[START]["HospitalDischarge"]["count"] == 2
        assert graph[START]["TelecareAlarm"]["count"] == 1
        assert graph["HomeCareServiceEvent"][END]["count"] == 2

    def test_transition_gaps_recorded(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=1)
        transitions = {(t.source, t.target): t for t in miner.transitions()}
        edge = transitions[("HospitalDischarge", "HomeCareServiceEvent")]
        assert edge.median_gap_seconds == DAY

    def test_suppression_hides_rare_transitions(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=2)
        transitions = {(t.source, t.target): t for t in miner.transitions()}
        rare = transitions[("TelecareAlarm", "HospitalDischarge")]
        assert rare.count.suppressed
        assert rare.median_gap_seconds is None  # timing hidden too
        common = transitions[("HospitalDischarge", "HomeCareServiceEvent")]
        assert not common.count.suppressed


class TestDerivedViews:
    def test_common_pathways(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=2)
        pathways = miner.common_pathways(length=3)
        assert (("HospitalDischarge", "HomeCareServiceEvent",
                 "HomeCareServiceEvent"), 2) in pathways

    def test_common_pathways_respect_threshold(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=3)
        assert miner.common_pathways(length=3) == []

    def test_bad_length_rejected(self, pathway_world):
        with pytest.raises(ConfigurationError):
            PathwayMiner(pathway_world).common_pathways(length=1)

    def test_entry_points(self, pathway_world):
        miner = PathwayMiner(pathway_world, suppression_threshold=1)
        entries = miner.entry_points()
        assert entries["HospitalDischarge"].value == 2
        assert entries["TelecareAlarm"].value == 1

    def test_hub_classes(self, pathway_world):
        # HomeCare's self-transition gives it the highest degree centrality.
        miner = PathwayMiner(pathway_world, suppression_threshold=1)
        assert miner.hub_classes(top=1) == ["HomeCareServiceEvent"]
        assert miner.hub_classes(top=2)[1] == "HospitalDischarge"

    def test_render(self, pathway_world):
        text = PathwayMiner(pathway_world, suppression_threshold=1).render()
        assert "CARE-PATHWAY REPORT" in text
        assert "HospitalDischarge" in text
        assert "entry points:" in text

    def test_threshold_validation(self, pathway_world):
        with pytest.raises(ConfigurationError):
            PathwayMiner(pathway_world, suppression_threshold=0)

    def test_empty_platform(self):
        controller = DataController(seed="empty")
        miner = PathwayMiner(controller)
        assert miner.sequences() == {}
        assert miner.transitions() == []
        assert miner.entry_points() == {}
        assert miner.hub_classes() == []
