"""Service adapters binding the runtime interfaces to concrete transports.

The :class:`~repro.runtime.interfaces.DetailFetcher` implementations live
here: the SOA-endpoint fetcher the controller uses in production wiring
(every detail retrieval is a web-service invocation in the paper's
architecture) and a direct in-process fetcher for hand-wired enforcement
stacks (tests, benchmarks).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import EndpointError, SourceUnavailableError


def gateway_endpoint_name(producer_id: str) -> str:
    """The SOA endpoint a producer's cooperation gateway is exposed under."""
    return f"gateway.{producer_id}.getResponse"


class EndpointDetailFetcher:
    """Fetches details through the SOA endpoint layer (Algorithm 2 client).

    Keeps the endpoint call accounting honest and converts endpoint-level
    unavailability into the gateway's failure type.  ``require_producer``
    fails fast (with the controller's unknown-producer error) before any
    endpoint is invoked.
    """

    def __init__(self, endpoints, require_producer: Callable[[str], object]) -> None:
        self._endpoints = endpoints
        self._require_producer = require_producer

    def fetch(self, producer_id: str, src_event_id: str,
              allowed_fields: Iterable[str], event_id: str):
        self._require_producer(producer_id)
        try:
            return self._endpoints.call(
                gateway_endpoint_name(producer_id),
                (src_event_id, frozenset(allowed_fields), event_id),
            )
        except EndpointError as exc:
            raise SourceUnavailableError(str(exc)) from exc


class DirectDetailFetcher:
    """Fetches details straight from a resolved gateway (no endpoint hop)."""

    def __init__(self, gateway_resolver: Callable[[str], object]) -> None:
        self._resolve = gateway_resolver

    def fetch(self, producer_id: str, src_event_id: str,
              allowed_fields: Iterable[str], event_id: str):
        gateway = self._resolve(producer_id)
        return gateway.get_response(
            src_event_id, frozenset(allowed_fields), event_id=event_id
        )
