"""Append-only JSON-lines files.

One record per line.  This is the storage engine's *ablation baseline*
(kernel store kind ``jsonl``): no framing, no segments, no recovery
beyond all-or-nothing — exactly what the segmented engine is measured
against.  Readers get plain dictionaries back.

Reading is **streaming**: :meth:`JsonlFile.iter_records` yields one
record at a time, so replaying a multi-gigabyte file holds one line in
memory, never the file.  :meth:`JsonlFile.read_all` stays for small
files and tests.  A malformed line — including a torn trailing write,
which this format cannot distinguish from corruption — raises the typed
:class:`~repro.exceptions.CorruptRecordError` (a
:class:`~repro.exceptions.StorageError`), never a bare
``json.JSONDecodeError``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.exceptions import CorruptRecordError


class JsonlFile:
    """An append-only JSON-lines file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """Whether the file exists on disk."""
        return self.path.exists()

    def append(self, record: dict) -> None:
        """Append one record."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")

    def append_many(self, records: list[dict]) -> None:
        """Append several records in one write."""
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True, default=str))
                handle.write("\n")

    def iter_records(self) -> Iterator[dict]:
        """Stream records oldest first, one line in memory at a time.

        Raises :class:`~repro.exceptions.CorruptRecordError` on any
        malformed line (a plain JSONL file has no commit framing, so a
        torn trailing write is indistinguishable from corruption — the
        segmented store kind exists to do better).
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CorruptRecordError(
                        f"{self.path}:{line_number}: corrupt JSONL record"
                    ) from exc

    def read_all(self) -> list[dict]:
        """Every record, oldest first (empty list if the file is absent)."""
        return list(self.iter_records())

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())
