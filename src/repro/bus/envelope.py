"""Message envelopes.

Every payload crossing the bus travels inside an :class:`Envelope` carrying
routing and provenance headers: message id, topic, sender, creation time,
correlation id (ties a detail response back to its request), content type,
and free-form headers.  Envelopes are immutable; redelivery metadata lives
in the queues, not the envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import BusError


@dataclass(frozen=True)
class Envelope:
    """An immutable bus message."""

    message_id: str
    topic: str
    sender: str
    body: object
    created_at: float = 0.0
    correlation_id: str | None = None
    content_type: str = "application/xml"
    headers: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.message_id:
            raise BusError("envelope needs a message id")
        if not self.topic:
            raise BusError("envelope needs a topic")
        if not self.sender:
            raise BusError("envelope needs a sender")

    def header(self, name: str, default: str | None = None) -> str | None:
        """Return header ``name`` or ``default``."""
        return self.headers.get(name, default)

    def with_topic(self, topic: str) -> "Envelope":
        """Copy of this envelope re-addressed to ``topic`` (for re-routing)."""
        return Envelope(
            message_id=self.message_id,
            topic=topic,
            sender=self.sender,
            body=self.body,
            created_at=self.created_at,
            correlation_id=self.correlation_id,
            content_type=self.content_type,
            headers=dict(self.headers),
        )

    def size_estimate(self) -> int:
        """Rough wire-size of the envelope in bytes.

        Used by the benchmarks to compare bytes-on-the-wire between the
        two-phase protocol and the full-push baseline; precision is not the
        point, proportionality is.
        """
        body = self.body
        if isinstance(body, (bytes, bytearray)):
            body_size = len(body)
        elif isinstance(body, str):
            body_size = len(body.encode())
        else:
            body_size = len(repr(body).encode())
        header_size = sum(len(k) + len(v) for k, v in self.headers.items())
        return body_size + header_size + len(self.topic) + len(self.sender) + 64
