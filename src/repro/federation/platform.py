"""The N-node deployment facade.

:class:`FederatedPlatform` assembles ``shards`` complete
:class:`~repro.core.controller.DataController` instances — each with its
own catalog, policy repository, PDP, gateways and audit chain — into one
logical CSS platform:

* all nodes share one simulated clock, one master secret (so sealed
  identity tokens and channel keys interoperate) and, optionally, one
  telemetry backend;
* every producer and consumer is **homed** on exactly one node; an event
  class lives on its producer's home node, and so do the policies its
  producer defines — which is what makes home-node enforcement possible;
* the events index is partitioned across nodes by the consistent-hash
  ring over keyed subject digests (kernel kind ``index: federated``);
* cross-node subscriptions and requests-for-details go through each
  node's :class:`~repro.federation.router.FederationRouter`; decisions
  always run on the producer's home node;
* :meth:`add_node` grows the ring at runtime and re-homes the index
  entries whose ownership moved.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path

from repro.audit.log import AuditAction, AuditOutcome
from repro.bus.delivery import DeliveryPolicy
from repro.clock import Clock
from repro.core.consumer import DataConsumer
from repro.core.controller import DataController
from repro.core.enforcement import DetailRequest
from repro.core.events import EventClass
from repro.core.messages import DetailMessage, NotificationMessage
from repro.core.producer import DataProducer
from repro.exceptions import AccessDeniedError, FederationError
from repro.federation.audit import FederatedAuditTrail, guarantor_inquiry
from repro.federation.node import (
    INDEX_COST,
    INDEX_UNIT_COST,
    PUBLISH_COST,
    PUBLISH_UNIT_COST,
    FederationNode,
)
from repro.federation.router import FederationRouter
from repro.obs.guard import PrivacyGuard
from repro.obs.stitch import StitchedTrace, stitch
from repro.obs.telemetry import InMemoryTelemetry, NoopTelemetry
from repro.runtime.kernel import (
    KIND_FEDERATION,
    RuntimeConfig,
    ServiceKernel,
    default_kernel,
)
from repro.xmlmsg.schema import MessageSchema


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`FederatedPlatform.add_node` rebalance."""

    node_id: str
    entries_moved: int


class FederatedPlatform:
    """N sharded data controllers operating as one logical platform."""

    def __init__(
        self,
        shards: int = 2,
        master_secret: str = "css-platform-secret",
        seed: str = "fed",
        encrypt_identity: bool = True,
        clock: Clock | None = None,
        runtime: RuntimeConfig | None = None,
        kernel: ServiceKernel | None = None,
        telemetry=None,
        link_latency: float = 0.005,
        link_policy: DeliveryPolicy | None = None,
        per_node_telemetry: bool = False,
        telemetry_guard: str = "hash",
        sched_config=None,
    ) -> None:
        self.clock = clock or Clock()
        self.kernel = kernel or default_kernel()
        self.telemetry = telemetry if telemetry is not None else NoopTelemetry()
        self._master_secret = master_secret
        self._seed = seed
        self._encrypt_identity = encrypt_identity
        self._base_runtime = runtime or RuntimeConfig()
        # Optional repro.sched.SchedConfig every node's scheduler is built
        # with (service rate, buckets, penalty box); None keeps defaults.
        self._sched_config = sched_config
        # Per-node telemetry: each node controller records into its own
        # backend (site-prefixed span ids), all sharing one clock and one
        # privacy guard so labels hash identically federation-wide; the
        # platform-level ``telemetry`` then stays a noop and the stitch
        # module reassembles the distributed trace from the per-node
        # exports.
        self.per_node_telemetry = per_node_telemetry
        self.node_telemetry: dict[str, InMemoryTelemetry] = {}
        self._node_guard = (
            PrivacyGuard(mode=telemetry_guard, secret=master_secret)
            if per_node_telemetry else getattr(self.telemetry, "guard", None)
        )
        self.membership = self.kernel.create(
            KIND_FEDERATION, "static",
            shards=shards, clock=self.clock, master_secret=master_secret,
            link_latency=link_latency, link_policy=link_policy,
            telemetry=self.telemetry,
            label_guard=self._node_guard if per_node_telemetry else None,
        )
        # Batched execution (kernel kind ``batch``): group-commit work
        # amortization.  The first operation of every batch_size-long run
        # pays the fixed service cost, later ones the marginal unit cost.
        self._batching = getattr(self._base_runtime, "batch", "off") == "on"
        self._batch_size = max(1, getattr(self._base_runtime, "batch_size", 256))
        self._publish_seq: dict[str, int] = {}
        self._index_seq: dict[str, int] = {}
        self._routers: dict[str, FederationRouter] = {}
        self._producers: dict[str, DataProducer] = {}
        self._consumers: dict[str, DataConsumer] = {}
        self._producer_home: dict[str, str] = {}
        self._consumer_home: dict[str, str] = {}
        self._class_home: dict[str, str] = {}
        self._round_robin = 0
        for node_id in self.membership.planned_nodes:
            self._build_node(node_id)

    # -- topology ----------------------------------------------------------

    def _build_node(self, node_id: str) -> FederationNode:
        # Each node gets its own data subdirectory: durable stores must
        # never interleave two nodes' logs in one file or segment dir.
        data_dir = self._base_runtime.data_dir
        if data_dir is not None:
            data_dir = Path(data_dir) / node_id
        node_runtime = replace(
            self._base_runtime,
            index_store="federated",
            telemetry="shared",
            federation="static",
            shards=self.membership.shards,
            data_dir=data_dir,
        )
        if self.per_node_telemetry:
            # One backend per node, sharing the federation clock and guard;
            # the site prefix keeps span ids globally unique so stitched
            # traces can attribute each span to its node.
            node_telemetry = InMemoryTelemetry(
                clock=self.clock,
                guard=self._node_guard,
                site=self.membership.node_label(node_id),
            )
            self.node_telemetry[node_id] = node_telemetry
        else:
            node_telemetry = self.telemetry
        controller = DataController(
            clock=self.clock,
            master_secret=self._master_secret,
            # Per-node seeds keep ids (events, audit records, subscriptions)
            # collision-free across the federation.
            seed=f"{self._seed}-{node_id}",
            encrypt_identity=self._encrypt_identity,
            runtime=node_runtime,
            kernel=self.kernel,
            services_context={
                "membership": self.membership,
                "node_id": node_id,
                "shared_telemetry": node_telemetry,
                "sched_config": self._sched_config,
            },
        )
        node = FederationNode(node_id, controller, self.membership)
        self._routers[node_id] = FederationRouter(node)
        return node

    def nodes(self) -> tuple[FederationNode, ...]:
        """Every node, ordered by node id."""
        return self.membership.nodes()

    def node(self, node_id: str) -> FederationNode:
        """One node by id."""
        return self.membership.node(node_id)

    def controller_of(self, node_id: str) -> DataController:
        """The data controller behind one node."""
        return self.membership.node(node_id).controller

    def _node_telemetry(self, node_id: str):
        """The enabled telemetry a node records into, or ``None``."""
        telemetry = self.controller_of(node_id).telemetry
        if telemetry is not None and getattr(telemetry, "enabled", False):
            return telemetry
        return None

    def _federation_span(self, node_id: str, name: str, home: str):
        """A consumer-side root span for one cross-node operation.

        Opened on the *origin* node's telemetry so everything downstream —
        the link hop, the home node's server span, its PDP pipeline —
        parents under it, labelled only with guard-hashed node ids.
        """
        telemetry = self._node_telemetry(node_id)
        if telemetry is None:
            return nullcontext()
        return telemetry.span(
            name,
            origin=self.membership.node_label(node_id),
            home=self.membership.node_label(home),
        )

    def _next_home(self, node_id: str | None) -> str:
        if node_id is not None:
            if node_id not in self.membership.node_ids:
                raise FederationError(f"unknown node {node_id!r}")
            return node_id
        node_ids = self.membership.node_ids
        home = node_ids[self._round_robin % len(node_ids)]
        self._round_robin += 1
        return home

    # -- party management (homing) -----------------------------------------

    def add_producer(
        self, actor_id: str, name: str, role: str = "",
        node_id: str | None = None, **kwargs,
    ) -> DataProducer:
        """Join a producer on its home node (round-robin when unspecified)."""
        if actor_id in self._producer_home:
            raise FederationError(f"producer {actor_id!r} already homed")
        home = self._next_home(node_id)
        producer = DataProducer(
            self.controller_of(home), actor_id, name, role=role, **kwargs
        )
        self._producers[actor_id] = producer
        self._producer_home[actor_id] = home
        return producer

    def add_consumer(
        self, actor_id: str, name: str, role: str = "",
        node_id: str | None = None, **kwargs,
    ) -> DataConsumer:
        """Join a consumer on its home node (round-robin when unspecified)."""
        if actor_id in self._consumer_home:
            raise FederationError(f"consumer {actor_id!r} already homed")
        home = self._next_home(node_id)
        consumer = DataConsumer(
            self.controller_of(home), actor_id, name, role=role, **kwargs
        )
        self._consumers[actor_id] = consumer
        self._consumer_home[actor_id] = home
        return consumer

    def producer(self, actor_id: str) -> DataProducer:
        """A homed producer client."""
        return self._producers[actor_id]

    def consumer(self, actor_id: str) -> DataConsumer:
        """A homed consumer client."""
        return self._consumers[actor_id]

    def home_of_producer(self, actor_id: str) -> str:
        """The node a producer is homed on."""
        return self._producer_home[actor_id]

    def home_of_consumer(self, actor_id: str) -> str:
        """The node a consumer is homed on."""
        return self._consumer_home[actor_id]

    def home_of_class(self, event_type: str) -> str:
        """The node an event class (and its policies) lives on."""
        try:
            return self._class_home[event_type]
        except KeyError as exc:
            raise FederationError(
                f"event class {event_type!r} is not declared anywhere in "
                "this federation"
            ) from exc

    # -- catalog ------------------------------------------------------------

    def declare_event_class(
        self, producer_id: str, schema: MessageSchema,
        category: str = "health", description: str = "",
    ) -> EventClass:
        """Declare a class on its producer's home node."""
        producer = self._producers[producer_id]
        event_class = producer.declare_event_class(
            schema, category=category, description=description
        )
        self._class_home[event_class.name] = self._producer_home[producer_id]
        return event_class

    # -- publish ------------------------------------------------------------

    def publish(
        self,
        producer_id: str,
        event_class: EventClass,
        subject_id: str,
        subject_name: str,
        summary: str,
        details: dict[str, object],
        occurred_at: float | None = None,
    ) -> NotificationMessage | None:
        """Publish on the producer's home node; the index entry lands on
        the subject's owner shard (possibly another node)."""
        home = self._producer_home[producer_id]
        node = self.membership.node(home)
        node.work.add(self._amortized(self._publish_seq, home,
                                      PUBLISH_COST, PUBLISH_UNIT_COST))
        notification = self._producers[producer_id].publish(
            event_class, subject_id, subject_name, summary, details,
            occurred_at=occurred_at,
        )
        if notification is not None:
            owner = self.membership.owner_of_subject(notification.subject_ref)
            if owner == home:
                # Remote stores charge the owner through the link handler;
                # local stores are charged here.
                node.work.add(self._amortized(self._index_seq, home,
                                              INDEX_COST, INDEX_UNIT_COST))
        node.record_queue_depth()
        return notification

    def _amortized(self, counters: dict[str, int], home: str,
                   fixed: float, unit: float) -> float:
        """The simulated service cost of one operation on ``home``.

        Unbatched: always the fixed cost.  Batched: the first operation
        of each ``batch_size``-long run pays the fixed cost (the write
        and flush of the group commit), the rest the marginal unit cost.
        A batch size of 1 therefore costs exactly the unbatched figure.
        """
        if not self._batching:
            return fixed
        position = counters.get(home, 0)
        counters[home] = (position + 1) % self._batch_size
        return fixed if position == 0 else unit

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, consumer_id: str, event_type: str, handler=None) -> str:
        """Subscribe a consumer to a class anywhere in the federation.

        Local classes go through the consumer's own controller; remote
        ones are authorized by the class's home node (its policy
        repository, deny-by-default) and relayed over the link.  Either
        way notifications land in the consumer's inbox.
        """
        consumer = self._consumers[consumer_id]
        consumer_home = self._consumer_home[consumer_id]
        class_home = self.home_of_class(event_type)
        if class_home == consumer_home:
            return consumer.subscribe(event_type, handler)

        controller = self.controller_of(consumer_home)
        controller.contracts.require_active(
            consumer_id, self.clock.now(), must_consume=True
        )

        def deliver(envelope) -> None:
            notification = NotificationMessage.from_xml(str(envelope.body))
            controller._record(  # noqa: SLF001 - platform acts as the controller's edge
                consumer_id, AuditAction.NOTIFY, AuditOutcome.PERMIT,
                event_id=notification.event_id,
                event_type=notification.event_type,
                subject_ref=notification.subject_ref,
            )
            consumer.inbox.append(notification)
            if handler is not None:
                handler(notification)

        with self._federation_span(
            consumer_home, "federation.subscribe", class_home
        ):
            subscription_id = self._routers[consumer_home].subscribe_remote(
                class_home, consumer.actor, event_type, deliver
            )
        consumer._subscription_ids[event_type] = subscription_id  # noqa: SLF001
        return subscription_id

    # -- requests for details -------------------------------------------------

    def request_details(
        self, consumer_id: str, event_type: str, event_id: str, purpose: str
    ) -> DetailMessage:
        """Resolve a request for details wherever the producer is homed.

        The invariant of the subsystem: the decision is ALWAYS made by the
        producing gateway's home node — its PDP, its consent registry, its
        local cooperation gateway.  The consumer's node only forwards,
        audits the forwarding, and unseals the already-filtered response.
        """
        consumer = self._consumers[consumer_id]
        consumer_home = self._consumer_home[consumer_id]
        class_home = self.home_of_class(event_type)
        if class_home == consumer_home:
            return consumer.request_details_by_id(event_type, event_id, purpose)

        controller = self.controller_of(consumer_home)
        controller.contracts.require_active(
            consumer_id, self.clock.now(), must_consume=True
        )
        request = DetailRequest(
            actor=consumer.actor,
            event_type=event_type,
            event_id=event_id,
            purpose=purpose,
        )
        try:
            with self._federation_span(
                consumer_home, "federation.request_details", class_home
            ):
                detail = self._routers[consumer_home].request_remote_details(
                    class_home, request
                )
        except AccessDeniedError:
            controller._record(  # noqa: SLF001
                consumer_id, AuditAction.DETAIL_REQUEST, AuditOutcome.DENY,
                event_id=event_id, event_type=event_type, purpose=purpose,
                detail=f"denied by home node {class_home}",
            )
            raise
        controller._record(  # noqa: SLF001
            consumer_id, AuditAction.DETAIL_REQUEST, AuditOutcome.PERMIT,
            event_id=event_id, event_type=event_type, purpose=purpose,
            detail=f"resolved by home node {class_home}",
        )
        return detail

    # -- dispatch ------------------------------------------------------------

    def dispatch_all(self) -> None:
        """Run dispatch rounds on every node until all queues drain."""
        for _ in range(64):  # relays can cascade across nodes
            pending = False
            for node in self.nodes():
                if node.controller.bus.pending_messages():
                    node.controller.bus.dispatch()
                    pending = True
            if not pending:
                return
        raise FederationError("dispatch did not converge after 64 rounds")

    # -- rebalance -----------------------------------------------------------

    def add_node(self) -> RebalanceReport:
        """Grow the federation by one node and re-home moved index entries.

        Ring ownership changes first, then the node comes up, then every
        pre-existing node ships the (still-sealed) entries it no longer
        owns; finally any in-flight queues are replayed to drain.
        """
        existing = self.nodes()
        node_id = self.membership.add_shard()
        self._build_node(node_id)
        moved = sum(node.controller.index.rehome() for node in existing)
        self.dispatch_all()
        return RebalanceReport(node_id=node_id, entries_moved=moved)

    # -- federated audit -------------------------------------------------------

    def guarantor_inquiry(
        self,
        coordinator_id: str | None = None,
        event_type: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> FederatedAuditTrail:
        """A guarantor's audit inquiry fanned out across every node.

        Runs behind the group-commit barrier: every coalesced shard frame
        and buffered durable row is flushed first, so the verified trails
        cover everything published before the inquiry.
        """
        self.flush_batches()
        node_ids = self.membership.node_ids
        coordinator = self.membership.node(coordinator_id or node_ids[0])
        return guarantor_inquiry(
            coordinator, event_type=event_type, since=since, until=until
        )

    # -- batching barriers -----------------------------------------------------

    def flush_batches(self) -> None:
        """Platform-wide group-commit barrier.

        Ships every pending coalesced shard frame (cluster-wide) and then
        drains every node's buffered durable writes.  A no-op with the
        batch kind off; call it before snapshotting data directories,
        verifying on-disk trails, or handing the platform to a guarantor.
        """
        flush_shippers = getattr(self.membership, "flush_shippers", None)
        if flush_shippers is not None:
            flush_shippers()
        for node in self.nodes():
            node.controller.flush_storage()

    # -- instrumentation -------------------------------------------------------

    def total_hops(self) -> int:
        """Cross-node calls delivered over all links so far."""
        return sum(link.stats.delivered for link in self.membership.links())

    def link_transcripts(self) -> list[str]:
        """Every wire message that crossed any link (privacy-test surface)."""
        lines: list[str] = []
        for link in self.membership.links():
            lines.extend(link.transcript)
        return lines

    def record_queue_depths(self) -> None:
        """Refresh every node's queue-depth gauge."""
        for node in self.nodes():
            node.record_queue_depth()

    def flight_recorders(self) -> dict[str, object]:
        """Every node's enabled flight recorder, keyed by node id.

        ``RuntimeConfig(recorder="ring")`` propagates to every node
        controller through the base runtime; nodes running the noop
        recorder are omitted, so incident capture iterates only over
        rings that actually hold data.
        """
        recorders: dict[str, object] = {}
        for node in self.nodes():
            recorder = getattr(node.controller, "recorder", None)
            if recorder is not None and getattr(recorder, "enabled", False):
                recorders[node.node_id] = recorder
        return recorders

    def record_fairness(self) -> None:
        """Refresh every node's per-tenant fairness gauges.

        An explicit harness/operator action (like queue-depth recording):
        drains each node scheduler's virtual server to the shared clock
        and emits share/starvation/throttle/shed gauges with guard-hashed
        tenant labels.
        """
        for node in self.nodes():
            node.record_fairness()

    # -- distributed tracing ---------------------------------------------------

    def trace_exports(self) -> dict[str, list[str]]:
        """Per-node span exports, keyed by node id (sorted iteration order).

        With per-node telemetry each node contributes its own JSONL lines;
        with one shared enabled backend everything appears under
        ``"shared"``; with telemetry disabled the dict is empty.
        """
        if self.per_node_telemetry:
            return {
                node_id: self.node_telemetry[node_id].trace_export()
                for node_id in sorted(self.node_telemetry)
            }
        if getattr(self.telemetry, "enabled", False):
            return {"shared": self.telemetry.trace_export()}
        return {}

    def stitched_trace(self) -> tuple[StitchedTrace, ...]:
        """The per-node exports merged into total-ordered federated traces."""
        return stitch(self.trace_exports())
