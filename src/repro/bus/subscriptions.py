"""Durable subscriptions.

A subscription names a subscriber, a topic pattern, and a callback.  It is
*durable*: messages published while the subscriber's callback is failing (or
while dispatch is paused) wait in the subscription's queue.  The data
controller creates subscriptions only after verifying the privacy policy
authorizes the consumer for the event class — that gating lives in
:mod:`repro.core.controller`; the bus only transports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.bus.envelope import Envelope
from repro.bus.queue import MessageQueue
from repro.bus.topics import validate_pattern
from repro.exceptions import SubscriptionError

if TYPE_CHECKING:
    from repro.bus.delivery import DeliveryPolicy

#: Signature of subscriber callbacks. Raising marks the delivery failed.
Handler = Callable[[Envelope], None]


@dataclass
class Subscription:
    """A durable subscription and its queue.

    ``policy`` is an optional per-subscription retry budget: when set it
    overrides the delivery engine's default
    :class:`~repro.bus.delivery.DeliveryPolicy` for this subscription only
    (a flaky analytics sink can fail fast while clinical consumers keep
    the full budget).
    """

    subscription_id: str
    subscriber: str
    pattern: str
    handler: Handler
    active: bool = True
    policy: DeliveryPolicy | None = None
    queue: MessageQueue = field(init=False)

    def __post_init__(self) -> None:
        if not self.subscription_id:
            raise SubscriptionError("subscription needs an id")
        if not self.subscriber:
            raise SubscriptionError("subscription needs a subscriber")
        validate_pattern(self.pattern)
        self.queue = MessageQueue(f"sub:{self.subscription_id}")

    def pause(self) -> None:
        """Stop dispatching; messages keep queueing."""
        self.active = False

    def resume(self) -> None:
        """Resume dispatching."""
        self.active = True


class SubscriptionRegistry:
    """All subscriptions known to the broker, indexed for fan-out."""

    def __init__(self) -> None:
        self._subscriptions: dict[str, Subscription] = {}

    def __len__(self) -> int:
        return len(self._subscriptions)

    def add(self, subscription: Subscription) -> None:
        """Register a subscription; duplicate ids are rejected."""
        if subscription.subscription_id in self._subscriptions:
            raise SubscriptionError(
                f"duplicate subscription id {subscription.subscription_id!r}"
            )
        self._subscriptions[subscription.subscription_id] = subscription

    def remove(self, subscription_id: str) -> Subscription:
        """Unregister and return a subscription."""
        try:
            return self._subscriptions.pop(subscription_id)
        except KeyError as exc:
            raise SubscriptionError(f"no subscription {subscription_id!r}") from exc

    def get(self, subscription_id: str) -> Subscription:
        """Fetch a subscription by id."""
        try:
            return self._subscriptions[subscription_id]
        except KeyError as exc:
            raise SubscriptionError(f"no subscription {subscription_id!r}") from exc

    def for_subscriber(self, subscriber: str) -> list[Subscription]:
        """Every subscription held by ``subscriber``."""
        return [sub for sub in self._subscriptions.values() if sub.subscriber == subscriber]

    def matching_topic(self, topic: str) -> list[Subscription]:
        """Every subscription whose pattern matches ``topic``."""
        from repro.bus.topics import topic_matches

        return [
            sub
            for sub in self._subscriptions.values()
            if topic_matches(sub.pattern, topic)
        ]

    def all_subscriptions(self) -> list[Subscription]:
        """Every registered subscription."""
        return list(self._subscriptions.values())
