"""The events index — the central notification store (§4).

"The central rooting node of the CSS platform is represented by the data
controller that maintains an index of the events (events index, implemented
according to the ebXML standard) as it stores all the notification messages
published by the producers ... The identifying information of the person
specified in the notification is stored in encrypted form to comply with
the privacy regulations."

Each notification becomes a registry object classified by event class and
producer, with the *identifying* slots (subject reference and display name)
sealed with the controller's index key.  Inquiry decrypts only for callers
the controller has already authorized — the index itself never hands out
plaintext identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.messages import NotificationMessage
from repro.exceptions import UnknownEventError
from repro.registry.objects import RegistryObject
from repro.registry.query import FilterQuery
from repro.registry.registry import Registry

if TYPE_CHECKING:
    from repro.runtime.interfaces import CipherProvider

#: Registry object type of index entries.
OBJECT_TYPE = "Notification"
#: Classification schemes used by the index.
SCHEME_EVENT_CLASS = "EventClass"
SCHEME_PRODUCER = "Producer"
#: Name of the keystore key sealing identifying slots.
INDEX_KEY = "index-identity"


@dataclass
class IndexStats:
    """Instrumentation for the encryption ablation (A2)."""

    stored: int = 0
    inquiries: int = 0
    seal_operations: int = 0
    open_operations: int = 0


@dataclass(frozen=True)
class SealedIdentity:
    """The identifying slots of a notification, sealed for index storage.

    Produced by :meth:`EventsIndex.seal_identity` (the publish pipeline's
    crypto stage) and consumed by :meth:`EventsIndex.store`.
    """

    subject_ref: str
    subject_display: str | None = None


class EventsIndex:
    """ebXML-backed notification index with sealed identifying fields.

    ``encrypt_identity=False`` exists only for ablation A2 (measuring the
    cost of the paper's encrypted-index requirement); production use keeps
    it on.  ``keystore`` may be any
    :class:`~repro.runtime.interfaces.CipherProvider`.
    """

    def __init__(self, keystore: "CipherProvider", encrypt_identity: bool = True) -> None:
        self._registry = Registry()
        self._keystore = keystore
        self._keystore.create(INDEX_KEY)
        self.encrypt_identity = encrypt_identity
        self.stats = IndexStats()
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, event_id: str) -> bool:
        return event_id in self._registry

    @property
    def registry(self) -> Registry:
        """The underlying ebXML-style registry (read-mostly)."""
        return self._registry

    @property
    def sequence(self) -> int:
        """The nonce sequence counter (archived to avoid nonce reuse)."""
        return self._sequence

    def restore_sequence(self, value: int) -> None:
        """Fast-forward the nonce counter after an archive restore."""
        if value < self._sequence:
            raise UnknownEventError("cannot rewind the index nonce sequence")
        self._sequence = value

    def restore_raw(self, obj: RegistryObject) -> None:
        """Re-insert an archived registry object, slots kept as stored.

        Identity slots arrive still sealed (the archive never holds
        plaintext identities), so this bypasses :meth:`store`'s sealing.
        """
        self._registry.submit(obj)
        self._registry.approve(obj.object_id)
        self.stats.stored += 1

    # -- storage ------------------------------------------------------------

    def seal_identity(self, notification: NotificationMessage) -> SealedIdentity:
        """Seal the identifying slots (the publish pipeline's crypto stage)."""
        return SealedIdentity(
            subject_ref=self._seal(notification.subject_ref),
            subject_display=(
                self._seal(notification.subject_display)
                if notification.subject_display else None
            ),
        )

    def store(self, notification: NotificationMessage,
              sealed: SealedIdentity | None = None) -> RegistryObject:
        """Index a published notification and return its registry object.

        ``sealed`` carries identity slots already sealed by
        :meth:`seal_identity`; without it the index seals inline (direct
        callers outside the pipeline).
        """
        if sealed is None:
            sealed = self.seal_identity(notification)
        obj = RegistryObject(
            object_id=notification.event_id,
            object_type=OBJECT_TYPE,
            name=notification.summary,
            description=notification.summary,
        )
        obj.classify(SCHEME_EVENT_CLASS, notification.event_type)
        obj.classify(SCHEME_PRODUCER, notification.producer_id)
        obj.set_slot("occurredAt", f"{notification.occurred_at:020.6f}")
        obj.set_slot("producerId", notification.producer_id)
        obj.set_slot("subjectRef", sealed.subject_ref)
        if sealed.subject_display is not None:
            obj.set_slot("subjectDisplay", sealed.subject_display)
        self._registry.submit(obj)
        self._registry.approve(notification.event_id)
        self.stats.stored += 1
        return obj

    def _seal(self, value: str) -> str:
        if not self.encrypt_identity:
            return value
        self._sequence += 1
        self.stats.seal_operations += 1
        return self._keystore.seal(INDEX_KEY, value, self._sequence)

    def _open(self, token: str) -> str:
        if not self.encrypt_identity:
            return token
        self.stats.open_operations += 1
        return self._keystore.open_(INDEX_KEY, token)

    def open_identity(self, token: str) -> str:
        """Open one sealed identity slot with this node's keystore.

        The federated index uses this to decrypt entries fetched from
        peer shards: every node derives the same ``index-identity`` key
        from the shared master secret, so tokens sealed anywhere in the
        cluster open locally — plaintext identity never crosses a link.
        """
        return self._open(token)

    # -- retrieval ------------------------------------------------------------

    def get(self, event_id: str) -> NotificationMessage:
        """Rebuild the notification stored under ``event_id``."""
        if event_id not in self._registry:
            raise UnknownEventError(f"no notification indexed under {event_id!r}")
        return self._to_notification(self._registry.get(event_id))

    def _to_notification(self, obj: RegistryObject) -> NotificationMessage:
        display_token = obj.slot_value("subjectDisplay")
        return NotificationMessage(
            event_id=obj.object_id,
            event_type=obj.classification_node(SCHEME_EVENT_CLASS) or "",
            producer_id=obj.slot_value("producerId") or "",
            occurred_at=float(obj.slot_value("occurredAt") or 0.0),
            summary=obj.name,
            subject_ref=self._open(obj.slot_value("subjectRef") or ""),
            subject_display=self._open(display_token) if display_token else "",
        )

    # -- inquiry -------------------------------------------------------------------

    def inquire(
        self,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
        producer_id: str | None = None,
    ) -> list[NotificationMessage]:
        """Query notifications of the authorized ``event_types``.

        Authorization (which classes the caller may see) is the data
        controller's job; the index evaluates the filter over each
        authorized class and decrypts the identity slots of the results.
        """
        self.stats.inquiries += 1
        results: list[NotificationMessage] = []
        for event_type in dict.fromkeys(event_types):  # dedupe, keep order
            query = FilterQuery(object_type=OBJECT_TYPE).where(
                f"class:{SCHEME_EVENT_CLASS}", "eq", event_type
            )
            if since is not None:
                query.where("slot:occurredAt", "ge", f"{since:020.6f}")
            if until is not None:
                query.where("slot:occurredAt", "le", f"{until:020.6f}")
            if producer_id is not None:
                query.where(f"class:{SCHEME_PRODUCER}", "eq", producer_id)
            for obj in self._registry.query(query):
                results.append(self._to_notification(obj))
        results.sort(key=lambda n: (n.occurred_at, n.event_id))
        return results

    def count_for_type(self, event_type: str) -> int:
        """Number of indexed notifications of one class."""
        return len(self._registry.by_classification(SCHEME_EVENT_CLASS, event_type))
