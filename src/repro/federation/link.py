"""Simulated inter-node links.

A :class:`Link` is one directed channel from a federation node to a peer.
Its transport discipline is the subsystem's privacy boundary:

* payloads are JSON-serializable dicts, serialized to canonical JSON for
  the wire — every byte that crosses is kept in :attr:`Link.transcript`,
  which the privacy tests grep for plaintext identities;
* identifying content is sealed *before* it reaches the link (index
  entries carry the index-key tokens; detail responses and audit exports
  travel under the sender's federation channel key);
* each attempt advances the shared simulated clock by a deterministic
  latency, failures are scripted (:meth:`fail_next` or a failure hook),
  and retries run through the bus's existing
  :class:`~repro.bus.delivery.DeliveryPolicy` budget.

Server-side errors (access denied, source unavailable) are *responses*,
encoded by :meth:`FederationNode.handle` — the link retries only
transmission drops, never decisions.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.bus.delivery import DeliveryPolicy
from repro.clock import Clock
from repro.crypto.hashing import canonical_json
from repro.exceptions import LinkFailureError
from repro.obs.context import WIRE_KEY, TraceContext
from repro.obs.profiling import SECTION_LINK_HOP

if TYPE_CHECKING:
    from repro.federation.node import FederationNode

#: Counter of cross-node calls, labelled with guard-hashed node ids.
HOP_COUNTER = "federation.hops_total"
#: Counter of transmission attempts (including retried ones).
LINK_ATTEMPTS = "federation.link.attempts_total"
#: Counter of dropped transmission attempts (scripted or hooked failures).
LINK_DROPS = "federation.link.drops_total"

#: Per-entry serialization/deserialization cost of a coalesced frame: a
#: batch of *n* entries advances the clock by ``latency + n * cost``
#: instead of ``n * latency`` — the amortization batching buys.
BATCH_ENTRY_COST = 0.0002


def wire_message(operation: str, payload: dict) -> str:
    """The canonical wire encoding of an untraced request message.

    Fan-outs that send one identical request to *k* peers can encode it
    once and pass the result to each :meth:`Link.call` as the ``wire``
    hint instead of re-serializing per peer.  The hint only applies when
    no trace context rides the message — with tracing active each hop
    carries its own span ids, so the link re-encodes.
    """
    return canonical_json({"op": operation, "payload": payload})


@dataclass
class LinkStats:
    """Per-link counters (benchmarks and failure-injection tests)."""

    calls: int = 0
    delivered: int = 0
    retries: int = 0
    failed_attempts: int = 0
    bytes_carried: int = 0


class Link:
    """One directed, latency- and failure-simulating channel to a peer node."""

    def __init__(
        self,
        source: str,
        target: "FederationNode",
        clock: Clock | None = None,
        latency: float = 0.005,
        policy: DeliveryPolicy | None = None,
        telemetry=None,
        source_label: str = "",
        target_label: str = "",
    ) -> None:
        self.source = source
        self.target = target
        self.latency = latency
        self.policy = policy or DeliveryPolicy()
        self.stats = LinkStats()
        self.transcript: list[str] = []
        self._clock = clock or Clock()
        self._fail_budget = 0
        self._failure_hook: Callable[[str, dict], bool] | None = None
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._source_label = source_label or source
        self._target_label = target_label or target.node_id

    # -- failure injection -------------------------------------------------

    def fail_next(self, count: int = 1) -> None:
        """Drop the next ``count`` transmission attempts (deterministic)."""
        if count < 0:
            raise LinkFailureError("failure budget must be non-negative")
        self._fail_budget += count

    def set_failure_hook(self, hook: Callable[[str, dict], bool] | None) -> None:
        """Install a predicate ``hook(operation, payload) -> drop?``."""
        self._failure_hook = hook

    def _should_fail(self, operation: str, payload: dict) -> bool:
        if self._fail_budget > 0:
            self._fail_budget -= 1
            return True
        return bool(self._failure_hook and self._failure_hook(operation, payload))

    # -- transmission ------------------------------------------------------

    def call(self, operation: str, payload: dict, wire: str | None = None) -> dict:
        """Send one request to the peer and return its response dict.

        ``wire`` is an optional pre-encoded request (see
        :func:`wire_message`); it is honoured only when the message
        carries no trace context, otherwise the link re-encodes so the
        span ids on the wire stay truthful.

        Retries dropped attempts up to the link policy's ``max_attempts``;
        raises :class:`~repro.exceptions.LinkFailureError` once the budget
        is exhausted.  Every wire message (request and response) is
        appended to :attr:`transcript` as canonical JSON.

        With telemetry enabled on the source side the hop runs inside a
        ``link.call`` span and the wire message carries that span's
        :class:`~repro.obs.context.TraceContext` — only the two counter-
        minted ids, never content — so the server side can parent its
        spans into the caller's trace.
        """
        self.stats.calls += 1
        telemetry = self._telemetry
        span_scope = (
            telemetry.span("link.call", op=operation,
                           source=self._source_label, target=self._target_label)
            if telemetry is not None else nullcontext()
        )
        with span_scope:
            context = telemetry.current_context() if telemetry is not None else None
            if wire is None or context is not None:
                message: dict[str, object] = {"op": operation, "payload": payload}
                if context is not None:
                    message[WIRE_KEY] = context.to_wire()
                wire = canonical_json(message)
            self.transcript.append(wire)
            self.stats.bytes_carried += len(wire)
            started = self._clock.now()
            last_error: LinkFailureError | None = None
            for attempt in range(1, self.policy.max_attempts + 1):
                if attempt > 1:
                    self.stats.retries += 1
                self._clock.advance(self.latency)
                if telemetry is not None:
                    telemetry.count(LINK_ATTEMPTS, source=self._source_label,
                                    target=self._target_label)
                if self._should_fail(operation, payload):
                    self.stats.failed_attempts += 1
                    if telemetry is not None:
                        telemetry.count(LINK_DROPS, source=self._source_label,
                                        target=self._target_label)
                    last_error = LinkFailureError(
                        f"link {self.source}->{self.target.node_id} dropped "
                        f"{operation!r} (attempt {attempt}/{self.policy.max_attempts})"
                    )
                    continue
                response = self.target.handle(operation, payload, trace=context)
                response_wire = canonical_json(response)
                self.transcript.append(response_wire)
                self.stats.bytes_carried += len(response_wire)
                self.stats.delivered += 1
                if telemetry is not None:
                    telemetry.count(
                        HOP_COUNTER, source=self._source_label,
                        target=self._target_label, op=operation,
                    )
                    telemetry.profile(
                        SECTION_LINK_HOP, self._clock.now() - started,
                        source=self._source_label, target=self._target_label,
                    )
                return response
            assert last_error is not None
            raise last_error

    def call_batch(
        self,
        operation: str,
        payload: dict,
        count: int,
        advance: float | None = None,
    ) -> dict:
        """Send one coalesced frame carrying ``count`` logical entries.

        The frame is one wire message and one transmission attempt (one
        ``calls`` tick, one transcript entry), but delivery accounting
        stays per entry: on success ``delivered`` (and the hop counter)
        grow by ``count``; a drop fails all ``count`` entries together.

        The clock advances by ``latency + count * BATCH_ENTRY_COST`` per
        attempt — the coalesced cost model — unless the caller passes an
        explicit ``advance`` (shippers that pre-charged the latency at
        enqueue time flush with ``advance=0.0`` so record timestamps are
        identical to the unbatched run).
        """
        if count < 1:
            raise LinkFailureError("a coalesced frame needs at least one entry")
        self.stats.calls += 1
        hop_cost = advance if advance is not None else (
            self.latency + count * BATCH_ENTRY_COST
        )
        telemetry = self._telemetry
        span_scope = (
            telemetry.span("link.call_batch", op=operation, entries=str(count),
                           source=self._source_label, target=self._target_label)
            if telemetry is not None else nullcontext()
        )
        with span_scope:
            context = telemetry.current_context() if telemetry is not None else None
            message: dict[str, object] = {"op": operation, "payload": payload}
            if context is not None:
                message[WIRE_KEY] = context.to_wire()
            wire = canonical_json(message)
            self.transcript.append(wire)
            self.stats.bytes_carried += len(wire)
            started = self._clock.now()
            last_error: LinkFailureError | None = None
            for attempt in range(1, self.policy.max_attempts + 1):
                if attempt > 1:
                    self.stats.retries += 1
                self._clock.advance(hop_cost)
                if telemetry is not None:
                    telemetry.count(LINK_ATTEMPTS, source=self._source_label,
                                    target=self._target_label)
                if self._should_fail(operation, payload):
                    self.stats.failed_attempts += count
                    if telemetry is not None:
                        telemetry.count(LINK_DROPS, source=self._source_label,
                                        target=self._target_label)
                    last_error = LinkFailureError(
                        f"link {self.source}->{self.target.node_id} dropped "
                        f"batched {operation!r} of {count} entries "
                        f"(attempt {attempt}/{self.policy.max_attempts})"
                    )
                    continue
                response = self.target.handle_batch(
                    operation, payload, count, trace=context,
                )
                response_wire = canonical_json(response)
                self.transcript.append(response_wire)
                self.stats.bytes_carried += len(response_wire)
                self.stats.delivered += count
                if telemetry is not None:
                    for _ in range(count):
                        telemetry.count(
                            HOP_COUNTER, source=self._source_label,
                            target=self._target_label, op=operation,
                        )
                    telemetry.profile(
                        SECTION_LINK_HOP, self._clock.now() - started,
                        source=self._source_label, target=self._target_label,
                    )
                return response
            assert last_error is not None
            raise last_error
