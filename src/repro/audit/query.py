"""Filtered queries over the audit log.

:class:`AuditQuery` is a fluent conjunction of filters answering the
questions the paper lists: *who did the request and why / for which
purpose?* (§1), scoped by actor, action, outcome, subject, event, purpose
and time window.
"""

from __future__ import annotations

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord


class AuditQuery:
    """A reusable filter over audit records."""

    def __init__(self) -> None:
        self._actor: str | None = None
        self._action: AuditAction | None = None
        self._outcome: AuditOutcome | None = None
        self._event_id: str | None = None
        self._event_type: str | None = None
        self._subject_ref: str | None = None
        self._purpose: str | None = None
        self._since: float | None = None
        self._until: float | None = None

    # -- fluent filters ------------------------------------------------------

    def by_actor(self, actor: str) -> "AuditQuery":
        """Only records produced by ``actor``."""
        self._actor = actor
        return self

    def by_action(self, action: AuditAction) -> "AuditQuery":
        """Only records of ``action``."""
        self._action = action
        return self

    def by_outcome(self, outcome: AuditOutcome) -> "AuditQuery":
        """Only records with ``outcome``."""
        self._outcome = outcome
        return self

    def about_event(self, event_id: str) -> "AuditQuery":
        """Only records concerning event ``event_id``."""
        self._event_id = event_id
        return self

    def about_event_type(self, event_type: str) -> "AuditQuery":
        """Only records concerning event class ``event_type``."""
        self._event_type = event_type
        return self

    def about_subject(self, subject_ref: str) -> "AuditQuery":
        """Only records concerning data subject ``subject_ref``."""
        self._subject_ref = subject_ref
        return self

    def for_purpose(self, purpose: str) -> "AuditQuery":
        """Only records declaring ``purpose``."""
        self._purpose = purpose
        return self

    def between(self, since: float | None = None, until: float | None = None) -> "AuditQuery":
        """Only records with ``since <= timestamp <= until``."""
        self._since = since
        self._until = until
        return self

    # -- evaluation ---------------------------------------------------------------

    def matches(self, record: AuditRecord) -> bool:
        """Whether one record satisfies every filter."""
        checks = (
            self._actor is None or record.actor == self._actor,
            self._action is None or record.action is self._action,
            self._outcome is None or record.outcome is self._outcome,
            self._event_id is None or record.event_id == self._event_id,
            self._event_type is None or record.event_type == self._event_type,
            self._subject_ref is None or record.subject_ref == self._subject_ref,
            self._purpose is None or record.purpose == self._purpose,
            self._since is None or record.timestamp >= self._since,
            self._until is None or record.timestamp <= self._until,
        )
        return all(checks)

    def run(self, log: AuditLog) -> list[AuditRecord]:
        """Evaluate the query against ``log`` (oldest first)."""
        return [record for record in log.records() if self.matches(record)]

    def count(self, log: AuditLog) -> int:
        """Number of matching records."""
        return sum(1 for record in log.records() if self.matches(record))
