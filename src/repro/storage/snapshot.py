"""Snapshots: sha256-manifested tar archives with point-in-time restore.

A snapshot of a storage data directory is two files under
``<root>/<snapshot-id>/``:

* ``manifest.json`` — schema ``css-storage-snapshot/1``: every archived
  file with its sha256 and size, plus the high-water **sequence number of
  each log** at snapshot time (the coordinates point-in-time recovery
  aims for);
* ``payload.tar.gz`` — the data directory's files, stored relative to
  the data directory root.

``verify`` re-hashes the archived payload against the manifest (and,
given a live data directory, diffs the directory against the manifest —
which is how segment corruption is caught before anyone trusts a
restore).  ``restore`` extracts into an **empty** target directory,
re-verifies every hash, and can then truncate each restored log to a
requested committed sequence number — recovery to any point the log ever
committed, not just to snapshot boundaries.

Snapshot ids are deterministic (``snap-0001``, ``snap-0002``, ... or a
caller-supplied label), so same-seed runs produce identical layouts.
"""

from __future__ import annotations

import hashlib
import json
import tarfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import RecoveryError, SnapshotError
from repro.storage.segment import SEGMENT_SUFFIX, SegmentedLog

#: Manifest schema identifier.
SNAPSHOT_SCHEMA = "css-storage-snapshot/1"
MANIFEST_FILE = "manifest.json"
PAYLOAD_FILE = "payload.tar.gz"

_CHUNK = 1024 * 1024


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _hash_stream(stream) -> str:
    digest = hashlib.sha256()
    for chunk in iter(lambda: stream.read(_CHUNK), b""):
        digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class SnapshotInfo:
    """One snapshot's identity and manifest summary."""

    snapshot_id: str
    directory: Path
    files: int
    size_bytes: int
    sequences: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of one restore."""

    snapshot_id: str
    target: Path
    files: int
    truncated_records: int
    sequences: dict[str, int] = field(default_factory=dict)


class SnapshotManager:
    """Create, list, verify and restore data-directory snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- create ------------------------------------------------------------

    def _next_id(self) -> str:
        taken = {path.name for path in self.root.glob("snap-*")}
        number = 1
        while f"snap-{number:04d}" in taken:
            number += 1
        return f"snap-{number:04d}"

    def create(
        self,
        data_dir: str | Path,
        label: str | None = None,
        sequences: dict[str, int] | None = None,
    ) -> SnapshotInfo:
        """Archive ``data_dir`` under a new snapshot id.

        ``sequences`` records each log's committed high-water mark; when
        omitted it is derived by replaying every segmented log found in
        the data directory.
        """
        data_dir = Path(data_dir)
        if not data_dir.is_dir():
            raise SnapshotError(f"no data directory at {data_dir}")
        self.root.mkdir(parents=True, exist_ok=True)
        snapshot_id = label or self._next_id()
        target = self.root / snapshot_id
        if target.exists():
            raise SnapshotError(f"snapshot {snapshot_id!r} already exists")

        if sequences is None:
            sequences = {
                child.name: SegmentedLog(child).sequence
                for child in sorted(data_dir.iterdir())
                if child.is_dir() and any(child.glob(f"*{SEGMENT_SUFFIX}"))
            }

        files: dict[str, dict[str, object]] = {}
        total = 0
        members = sorted(
            path for path in data_dir.rglob("*") if path.is_file()
        )
        target.mkdir(parents=True)
        with tarfile.open(target / PAYLOAD_FILE, "w:gz") as archive:
            for path in members:
                relative = path.relative_to(data_dir).as_posix()
                size = path.stat().st_size
                files[relative] = {"sha256": _hash_file(path), "size": size}
                total += size
                archive.add(path, arcname=relative)

        manifest = {
            "schema": SNAPSHOT_SCHEMA,
            "snapshot_id": snapshot_id,
            "sequences": {name: int(value)
                          for name, value in sorted(sequences.items())},
            "files": files,
            "count": len(files),
            "size_bytes": total,
        }
        (target / MANIFEST_FILE).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return SnapshotInfo(
            snapshot_id=snapshot_id, directory=target,
            files=len(files), size_bytes=total,
            sequences=dict(manifest["sequences"]),
        )

    # -- inspection ----------------------------------------------------------

    def list(self) -> list[SnapshotInfo]:
        """Every snapshot under the root, id order."""
        infos = []
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if (child / MANIFEST_FILE).exists():
                    infos.append(self.info(child.name))
        return infos

    def _manifest(self, snapshot_id: str) -> dict:
        path = self.root / snapshot_id / MANIFEST_FILE
        if not path.exists():
            raise SnapshotError(f"no snapshot {snapshot_id!r} in {self.root}")
        manifest = json.loads(path.read_text())
        if manifest.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"{path}: unsupported snapshot schema "
                f"{manifest.get('schema')!r}"
            )
        return manifest

    def info(self, snapshot_id: str) -> SnapshotInfo:
        """Manifest summary of one snapshot."""
        manifest = self._manifest(snapshot_id)
        return SnapshotInfo(
            snapshot_id=snapshot_id,
            directory=self.root / snapshot_id,
            files=manifest["count"],
            size_bytes=manifest["size_bytes"],
            sequences=dict(manifest.get("sequences", {})),
        )

    # -- verify --------------------------------------------------------------

    def verify(self, snapshot_id: str) -> list[str]:
        """Re-hash the archived payload against the manifest.

        Returns the list of problems (empty = the snapshot is intact).
        """
        manifest = self._manifest(snapshot_id)
        expected = dict(manifest["files"])
        problems: list[str] = []
        payload = self.root / snapshot_id / PAYLOAD_FILE
        if not payload.exists():
            return [f"{snapshot_id}: missing {PAYLOAD_FILE}"]
        with tarfile.open(payload, "r:gz") as archive:
            for member in archive:
                if not member.isfile():
                    continue
                entry = expected.pop(member.name, None)
                if entry is None:
                    problems.append(f"{member.name}: not in manifest")
                    continue
                stream = archive.extractfile(member)
                digest = _hash_stream(stream)
                if digest != entry["sha256"]:
                    problems.append(f"{member.name}: sha256 mismatch")
                elif member.size != entry["size"]:
                    problems.append(f"{member.name}: size mismatch")
        for missing in sorted(expected):
            problems.append(f"{missing}: missing from payload")
        return problems

    def verify_against(self, snapshot_id: str, data_dir: str | Path) -> list[str]:
        """Diff a live data directory against the snapshot manifest.

        This is the corruption check: a flipped byte in any archived
        segment shows up as a sha256 mismatch.  Files appended after the
        snapshot are reported as drift, not corruption.
        """
        manifest = self._manifest(snapshot_id)
        data_dir = Path(data_dir)
        problems: list[str] = []
        for relative, entry in sorted(manifest["files"].items()):
            path = data_dir / relative
            if not path.exists():
                problems.append(f"{relative}: missing from {data_dir}")
                continue
            size = path.stat().st_size
            if size < entry["size"]:
                problems.append(f"{relative}: truncated below snapshot size")
                continue
            digest = hashlib.sha256()
            remaining = int(entry["size"])
            with path.open("rb") as handle:
                while remaining > 0:
                    chunk = handle.read(min(_CHUNK, remaining))
                    if not chunk:
                        break
                    digest.update(chunk)
                    remaining -= len(chunk)
            if digest.hexdigest() != entry["sha256"]:
                problems.append(f"{relative}: sha256 mismatch (corrupted)")
        return problems

    # -- restore -------------------------------------------------------------

    def restore(
        self,
        snapshot_id: str,
        target_dir: str | Path,
        to_sequence: int | dict[str, int] | None = None,
    ) -> RestoreReport:
        """Extract a snapshot into an empty ``target_dir`` and verify it.

        ``to_sequence`` truncates the restored logs for point-in-time
        recovery: an int applies to every log, a mapping names each log's
        target.  Raises :class:`~repro.exceptions.SnapshotError` on any
        hash mismatch and :class:`~repro.exceptions.RecoveryError` for a
        target above what the snapshot ever committed.
        """
        manifest = self._manifest(snapshot_id)
        target = Path(target_dir)
        if target.exists() and any(target.iterdir()):
            raise SnapshotError(
                f"restore target {target} is not empty — refusing to mix "
                f"restored and live state"
            )
        target.mkdir(parents=True, exist_ok=True)
        payload = self.root / snapshot_id / PAYLOAD_FILE
        with tarfile.open(payload, "r:gz") as archive:
            for member in archive:
                name = Path(member.name)
                if name.is_absolute() or ".." in name.parts:
                    raise SnapshotError(
                        f"{snapshot_id}: unsafe member path {member.name!r}"
                    )
                if member.isfile():
                    try:
                        archive.extract(member, path=target, filter="data")
                    except TypeError:  # Python < 3.12 lacks extract filters
                        archive.extract(member, path=target)

        problems = []
        for relative, entry in sorted(manifest["files"].items()):
            path = target / relative
            if not path.exists():
                problems.append(f"{relative}: missing after extraction")
            elif _hash_file(path) != entry["sha256"]:
                problems.append(f"{relative}: sha256 mismatch after restore")
        if problems:
            raise SnapshotError(
                f"snapshot {snapshot_id!r} failed post-restore verification: "
                + "; ".join(problems)
            )

        truncated = 0
        sequences: dict[str, int] = {}
        log_names = sorted(manifest.get("sequences", {}))
        for name in log_names:
            log_dir = target / name
            if not log_dir.is_dir():
                continue
            log = SegmentedLog(log_dir)
            if to_sequence is None:
                goal = None
            elif isinstance(to_sequence, dict):
                goal = to_sequence.get(name)
            else:
                goal = int(to_sequence)
            if goal is not None:
                if goal > log.sequence:
                    raise RecoveryError(
                        f"log {name!r} never committed sequence {goal} "
                        f"(snapshot stops at {log.sequence})"
                    )
                truncated += log.truncate_to(goal)
            sequences[name] = log.sequence
        return RestoreReport(
            snapshot_id=snapshot_id, target=target,
            files=manifest["count"], truncated_records=truncated,
            sequences=sequences,
        )
