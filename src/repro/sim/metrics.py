"""Disclosure accounting for scenario comparisons.

The paper's privacy argument is quantitative at heart: the manual/legacy
flows disclose *more data than required* (violating minimal usage, §2) and
leave accesses *untraced*.  The :class:`DisclosureLedger` records every
field value disclosed to every receiver, against the per-role *needed
fields* declared by the event templates, and summarises:

* how many sensitive values were disclosed;
* how many disclosed values exceeded what the receiver needed
  (**overexposure**);
* how many disclosures were traced (appear in an audit trail).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Disclosure:
    """One field value reaching one receiver."""

    receiver: str
    receiver_role: str
    event_type: str
    field_name: str
    sensitive: bool
    needed: bool
    traced: bool


@dataclass
class ExposureSummary:
    """Aggregated disclosure counters for one system under test."""

    system: str
    events: int = 0
    disclosures: int = 0
    sensitive_disclosures: int = 0
    overexposed: int = 0
    sensitive_overexposed: int = 0
    traced: int = 0
    bytes_on_wire: int = 0

    @property
    def traced_fraction(self) -> float:
        """Share of disclosures that appear in an audit trail."""
        return self.traced / self.disclosures if self.disclosures else 1.0

    @property
    def overexposure_fraction(self) -> float:
        """Share of disclosures the receiver did not need."""
        return self.overexposed / self.disclosures if self.disclosures else 0.0

    def to_row(self) -> str:
        """One formatted benchmark-table row."""
        return (
            f"{self.system:<22} events={self.events:>6} disclosures={self.disclosures:>8} "
            f"sensitive={self.sensitive_disclosures:>7} overexposed={self.overexposed:>7} "
            f"(sens. {self.sensitive_overexposed:>6}) traced={self.traced_fraction:>6.1%} "
            f"bytes={self.bytes_on_wire:>10}"
        )


class DisclosureLedger:
    """Records disclosures for one system run and summarises them."""

    def __init__(self, system: str) -> None:
        self.system = system
        self._disclosures: list[Disclosure] = []
        self._events = 0
        self._bytes = 0

    def record_event(self) -> None:
        """Count one event processed by the system."""
        self._events += 1

    def add_bytes(self, count: int) -> None:
        """Accumulate wire bytes."""
        self._bytes += count

    def record_disclosure(
        self,
        receiver: str,
        receiver_role: str,
        event_type: str,
        field_name: str,
        sensitive: bool,
        needed: bool,
        traced: bool,
    ) -> None:
        """Record one field value reaching one receiver."""
        self._disclosures.append(
            Disclosure(
                receiver=receiver,
                receiver_role=receiver_role,
                event_type=event_type,
                field_name=field_name,
                sensitive=sensitive,
                needed=needed,
                traced=traced,
            )
        )

    def record_document(
        self,
        receiver: str,
        receiver_role: str,
        event_type: str,
        disclosed_fields: dict[str, object],
        sensitive_fields: set[str],
        needed_fields: set[str],
        traced: bool,
    ) -> None:
        """Record every non-empty field of one delivered document."""
        for name, value in disclosed_fields.items():
            if value is None:
                continue
            self.record_disclosure(
                receiver=receiver,
                receiver_role=receiver_role,
                event_type=event_type,
                field_name=name,
                sensitive=name in sensitive_fields,
                needed=name in needed_fields,
                traced=traced,
            )

    def disclosures(self) -> tuple[Disclosure, ...]:
        """All recorded disclosures."""
        return tuple(self._disclosures)

    def summary(self) -> ExposureSummary:
        """Aggregate the ledger."""
        result = ExposureSummary(system=self.system, events=self._events,
                                 bytes_on_wire=self._bytes)
        for disclosure in self._disclosures:
            result.disclosures += 1
            if disclosure.sensitive:
                result.sensitive_disclosures += 1
            if not disclosure.needed:
                result.overexposed += 1
                if disclosure.sensitive:
                    result.sensitive_overexposed += 1
            if disclosure.traced:
                result.traced += 1
        return result
