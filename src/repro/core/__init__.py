"""The paper's primary contribution: the CSS privacy-preserving event platform.

Subpackage map (one module per architectural concept of the paper):

* :mod:`~repro.core.actors` / :mod:`~repro.core.purposes` — the vocabulary
  policies are written in;
* :mod:`~repro.core.events` / :mod:`~repro.core.messages` — event classes
  and the notification/detail message dichotomy (§4);
* :mod:`~repro.core.catalog` / :mod:`~repro.core.index` — events catalog
  and the ebXML events index;
* :mod:`~repro.core.policy` — Definitions 1–4 of §5.1/§5.2;
* :mod:`~repro.core.enforcement` — the Policy Enforcer and Algorithm 1;
* :mod:`~repro.core.gateway` — the Local Cooperation Gateway and Algorithm 2;
* :mod:`~repro.core.controller` — the Data Controller facade;
* :mod:`~repro.core.producer` / :mod:`~repro.core.consumer` — party clients;
* :mod:`~repro.core.elicitation` — the Privacy Requirements Elicitation
  Tool (Figs. 6–7);
* :mod:`~repro.core.consent` — citizen opt-in/opt-out;
* :mod:`~repro.core.contracts` — contractual agreements (§5);
* :mod:`~repro.core.idmap` — the global/local event id mapping.
"""

from repro.core.actors import Actor, ActorDirectory, ActorKind
from repro.core.catalog import EventCatalog
from repro.core.consent import ConsentRegistry, ConsentScope
from repro.core.consumer import DataConsumer
from repro.core.controller import DataController
from repro.core.elicitation import ElicitationWizard, PolicyDashboard
from repro.core.enforcement import DetailRequest, PolicyEnforcer
from repro.core.events import EventClass, EventOccurrence
from repro.core.gateway import LocalCooperationGateway
from repro.core.index import EventsIndex
from repro.core.messages import DetailMessage, NotificationMessage
from repro.core.policy import PolicyRepository, PrivacyPolicy
from repro.core.producer import DataProducer
from repro.core.purposes import Purpose, PurposeRegistry

__all__ = [
    "Actor",
    "ActorDirectory",
    "ActorKind",
    "ConsentRegistry",
    "ConsentScope",
    "DataConsumer",
    "DataController",
    "DataProducer",
    "DetailMessage",
    "DetailRequest",
    "ElicitationWizard",
    "EventCatalog",
    "EventClass",
    "EventOccurrence",
    "EventsIndex",
    "LocalCooperationGateway",
    "NotificationMessage",
    "PolicyDashboard",
    "PolicyEnforcer",
    "PolicyRepository",
    "PrivacyPolicy",
    "Purpose",
    "PurposeRegistry",
]
