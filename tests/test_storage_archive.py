"""Tests for the persistence substrate: JSONL files and platform archiving."""

import json

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.clock import DAY
from repro.exceptions import (
    AccessDeniedError,
    ConfigurationError,
    CorruptRecordError,
    StorageError,
    TamperedLogError,
)
from repro.storage import JsonlFile, PlatformArchive
from repro.storage.schemas import schema_from_dict, schema_to_dict
from repro.sim.generators import standard_event_templates
from tests.conftest import blood_test_schema


class TestJsonlFile:
    def test_append_and_read(self, tmp_path):
        file = JsonlFile(tmp_path / "x.jsonl")
        file.append({"a": 1})
        file.append_many([{"b": 2}, {"c": 3}])
        assert file.read_all() == [{"a": 1}, {"b": 2}, {"c": 3}]
        assert len(file) == 3

    def test_missing_file_reads_empty(self, tmp_path):
        assert JsonlFile(tmp_path / "missing.jsonl").read_all() == []

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(CorruptRecordError, match="corrupt"):
            JsonlFile(path).read_all()

    def test_corrupt_record_is_a_storage_error_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{"ok": 2}\nnot json\n')
        with pytest.raises(StorageError, match=":3"):
            list(JsonlFile(path).iter_records())

    def test_iter_records_streams_good_prefix(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        records = JsonlFile(path).iter_records()
        assert next(records) == {"ok": 1}
        with pytest.raises(CorruptRecordError):
            next(records)

    def test_creates_parent_directories(self, tmp_path):
        file = JsonlFile(tmp_path / "deep" / "nested" / "x.jsonl")
        file.append({"a": 1})
        assert file.exists()


class TestSchemaCodec:
    def test_every_standard_template_round_trips(self):
        for template in standard_event_templates().values():
            schema = template.build_schema()
            rebuilt = schema_from_dict(schema_to_dict(schema))
            assert rebuilt.field_names == schema.field_names
            assert rebuilt.sensitive_fields == schema.sensitive_fields
            assert rebuilt.identifying_fields == schema.identifying_fields
            for decl in schema.elements:
                twin = rebuilt.element(decl.name)
                assert type(twin.type_) is type(decl.type_)
                assert twin.occurs is decl.occurs

    def test_unknown_kind_rejected(self):
        from repro.storage.schemas import type_from_dict

        with pytest.raises(ConfigurationError):
            type_from_dict({"kind": "quaternion"})


def build_busy_platform():
    """A platform with events, policies, consent, denials and an upgrade."""
    controller = DataController(seed="archive", master_secret="archive-secret")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")
    notifications = []
    for index in range(5):
        notifications.append(hospital.publish(
            blood, subject_id=f"p{index}", subject_name=f"Patient {index}",
            summary=f"blood test #{index}",
            details={"PatientId": f"p{index}", "Name": f"Patient {index}",
                     "Hemoglobin": 12.0 + index, "Glucose": 90.0,
                     "HivResult": "negative"}))
        controller.clock.advance(DAY)
    doctor.request_details(notifications[0], "healthcare-treatment")
    with pytest.raises(AccessDeniedError):
        doctor.request_details(notifications[1], "administration")
    from repro.core.consent import ConsentScope

    hospital.record_opt_out("p3", ConsentScope.DETAILS, "BloodTest")
    return controller, hospital, doctor, notifications


class TestArchiveRoundTrip:
    def test_save_then_restore_preserves_everything(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")

        assert restored.clock.now() == controller.clock.now()
        assert len(restored.audit_log) == len(controller.audit_log)
        assert restored.audit_log.head_digest == controller.audit_log.head_digest
        assert len(restored.index) == len(controller.index)
        assert len(restored.id_map) == len(controller.id_map)
        assert len(restored.policies) == len(controller.policies)
        assert "BloodTest" in restored.catalog

    def test_restored_index_identity_still_decrypts(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        fetched = restored.index.get(notifications[0].event_id)
        assert fetched.subject_ref == "p0"
        assert fetched.subject_display == "Patient 0"

    def test_archive_never_contains_plaintext_identity(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        index_text = (tmp_path / "snap" / "index.jsonl").read_text()
        assert "Patient 0" not in index_text  # identity slots stay sealed

    def test_detail_requests_work_after_restore(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        # The consumer reconnects its client (no re-join: the actor and
        # contract were restored) and requests months-old details.
        from repro.core.enforcement import DetailRequest

        request = DetailRequest(
            actor=restored.actors.get("Dr-Rossi"),
            event_type="BloodTest",
            event_id=notifications[2].event_id,
            purpose="healthcare-treatment",
        )
        detail = restored.request_details("Dr-Rossi", request)
        assert detail.exposed_values() == {"PatientId": "p2", "Hemoglobin": 14.0}

    def test_consent_survives_restore(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        from repro.core.enforcement import DetailRequest

        request = DetailRequest(
            actor=restored.actors.get("Dr-Rossi"),
            event_type="BloodTest",
            event_id=notifications[3].event_id,  # p3 opted out of details
            purpose="healthcare-treatment",
        )
        with pytest.raises(AccessDeniedError, match="opted out"):
            restored.request_details("Dr-Rossi", request)

    def test_new_events_after_restore_do_not_collide(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        # A producer client reconnects on the restored platform and publishes.
        gateway = restored.gateway_of("Hospital")
        from repro.core.events import EventOccurrence
        from repro.xmlmsg.document import XmlDocument

        occurrence = EventOccurrence(
            event_class=restored.catalog.get("BloodTest"),
            src_event_id="Hospital:src-post-restore",
            subject_id="p9", subject_name="Patient 9",
            occurred_at=restored.clock.now(), summary="post-restore event",
            details=XmlDocument("BloodTest", {
                "PatientId": "p9", "Name": "Patient 9", "Hemoglobin": 13.0,
                "Glucose": 91.0, "HivResult": "negative"}),
        )
        notification = restored.publish("Hospital", occurrence)
        assert notification is not None
        archived_ids = {n.event_id for n in notifications}
        assert notification.event_id not in archived_ids

    def test_wrong_master_secret_fails_identity_decryption(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("a-different-secret")
        from repro.exceptions import TokenError

        with pytest.raises(TokenError):
            restored.index.get(notifications[0].event_id)

    def test_restriction_policies_survive_restore(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        hospital.define_restriction(
            "BloodTest", consumer=("Hospital/Psychiatry", "unit"),
            purposes=["healthcare-treatment"],
        )
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        restrictions = [p for p in restored.policies.policies_of_producer("Hospital")
                        if p.deny]
        assert len(restrictions) == 1
        assert not restored.policies.has_policy_for(
            "Hospital", "BloodTest", "Hospital/Psychiatry")

    def test_schema_upgrade_history_survives(self, tmp_path):
        controller, hospital, doctor, notifications = build_busy_platform()
        from repro.xmlmsg.schema import ElementDecl, Occurs
        from repro.xmlmsg.types import DecimalType

        upgraded_schema = blood_test_schema()
        upgraded_schema.add(ElementDecl("Ferritin", DecimalType(0, 1000),
                                        occurs=Occurs.OPTIONAL, sensitive=True))
        hospital.upgrade_event_class(upgraded_schema)
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        restored = archive.restore("archive-secret")
        assert restored.catalog.get("BloodTest").version == 2
        assert len(restored.catalog.history("BloodTest")) == 2


class TestArchiveIntegrity:
    def test_double_save_rejected(self, tmp_path):
        controller, *_ = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        with pytest.raises(ConfigurationError, match="already holds"):
            archive.save(controller)

    def test_restore_without_snapshot_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no snapshot"):
            PlatformArchive(tmp_path / "empty").restore("secret")

    def test_tampered_audit_file_detected(self, tmp_path):
        controller, *_ = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        audit_path = tmp_path / "snap" / "audit.jsonl"
        lines = audit_path.read_text().splitlines()
        record = json.loads(lines[2])
        record["outcome"] = "permit"  # rewrite a denial into a permit
        record["actor"] = "evil"
        lines[2] = json.dumps(record, sort_keys=True)
        audit_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TamperedLogError):
            archive.restore("archive-secret")

    def test_truncated_audit_file_detected(self, tmp_path):
        controller, *_ = build_busy_platform()
        archive = PlatformArchive(tmp_path / "snap")
        archive.save(controller)
        audit_path = tmp_path / "snap" / "audit.jsonl"
        lines = audit_path.read_text().splitlines()
        audit_path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(TamperedLogError):
            archive.restore("archive-secret")
