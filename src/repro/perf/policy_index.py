"""Actor/role-bucketed policy index with a compiled-XACML cache.

``PolicyRepository.to_policy_set`` compiles *every* candidate policy of a
``(producer, event type)`` class into XACML on *every* request, and the
PDP then walks all of them even though most cannot match the requesting
actor.  This index fixes both costs while returning decisions the PDP
cannot distinguish from the full scan:

* per class, policies are bucketed by their actor selector — exact
  ``actor_id`` buckets plus a role bucket (the *wildcard* bucket: a role
  grant applies to any actor asserting that role, and a unit grant
  applies to the whole subtree under it);
* a request's candidates are the union of the buckets of every ancestor
  of the requesting ``actor_id`` (hierarchical grants, §5.1) and of its
  role — policies left out are exactly those whose target evaluates
  ``NotApplicable``, which contribute nothing under deny-overrides, so
  the combined decision and obligations are unchanged;
* each policy is compiled to XACML once and memoized (policies are
  frozen dataclasses; revocation removes them from the buckets instead
  of mutating them);
* the whole bucket structure is rebuilt lazily whenever the repository's
  monotonic ``epoch`` moved (policy added or revoked).

Candidates keep registration order, so deny-overrides short-circuiting
walks them in the same order as the linear path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xacml.model import CombiningAlgorithm, Policy, PolicySet


@dataclass
class _ClassBucket:
    """The index of one ``(producer, event type)`` class."""

    epoch: int
    #: Active policies in registration order.
    positions: list = field(default_factory=list)
    #: actor_id → positions of policies granting that exact unit.
    by_actor: dict[str, list[int]] = field(default_factory=dict)
    #: actor_role → positions (the wildcard bucket: role grants).
    by_role: dict[str, list[int]] = field(default_factory=dict)
    #: Lazily compiled XACML policies, aligned with ``positions``.
    compiled: list[Policy | None] = field(default_factory=list)
    #: Whether any active policy carries a validity window.
    time_bounded: bool = False


@dataclass
class PolicyIndexStats:
    """Index effectiveness counters."""

    rebuilds: int = 0
    selections: int = 0
    candidates_scanned: int = 0
    candidates_skipped: int = 0


def actor_ancestors(actor_id: str) -> tuple[str, ...]:
    """The actor id and every organizational ancestor (``a/b/c → a/b → a``).

    A policy granting ``actor_id`` X covers X and its whole subtree
    (:meth:`repro.core.policy.PrivacyPolicy._actor_matches`), so the
    candidate lookup probes each ancestor's bucket.
    """
    parts = actor_id.split("/")
    return tuple("/".join(parts[: i + 1]) for i in range(len(parts)))


class PolicyIndex:
    """Bucketed candidate selection over a :class:`PolicyRepository`."""

    def __init__(self, repository) -> None:
        self._repository = repository
        self._buckets: dict[tuple[str, str], _ClassBucket] = {}
        self.stats = PolicyIndexStats()

    # -- bucket maintenance -------------------------------------------------

    def _bucket(self, producer_id: str, event_type: str) -> _ClassBucket:
        key = (producer_id, event_type)
        epoch = self._repository.epoch
        bucket = self._buckets.get(key)
        if bucket is not None and bucket.epoch == epoch:
            return bucket
        bucket = _ClassBucket(epoch=epoch)
        for position, policy in enumerate(
            self._repository.candidates(producer_id, event_type)
        ):
            bucket.positions.append(policy)
            bucket.compiled.append(None)
            if policy.actor_id:
                bucket.by_actor.setdefault(policy.actor_id, []).append(position)
            else:
                bucket.by_role.setdefault(policy.actor_role, []).append(position)
            if policy.valid_from is not None or policy.valid_until is not None:
                bucket.time_bounded = True
        self._buckets[key] = bucket
        self.stats.rebuilds += 1
        return bucket

    def is_time_bounded(self, producer_id: str, event_type: str) -> bool:
        """Whether any active policy of the class has a validity window."""
        return self._bucket(producer_id, event_type).time_bounded

    def _compiled(self, bucket: _ClassBucket, position: int) -> Policy:
        policy = bucket.compiled[position]
        if policy is None:
            policy = bucket.positions[position].to_xacml()
            bucket.compiled[position] = policy
        return policy

    # -- candidate selection ------------------------------------------------

    def candidate_positions(
        self, producer_id: str, event_type: str, actor_id: str, actor_role: str
    ) -> list[int]:
        """Bucket positions whose actor selector can match the request."""
        bucket = self._bucket(producer_id, event_type)
        positions: set[int] = set()
        for ancestor in actor_ancestors(actor_id):
            positions.update(bucket.by_actor.get(ancestor, ()))
        if actor_role:
            positions.update(bucket.by_role.get(actor_role, ()))
        return sorted(positions)

    def candidate_set(
        self, producer_id: str, event_type: str, actor_id: str, actor_role: str
    ) -> tuple[PolicySet, int]:
        """The indexed candidate policy set plus how many policies it holds.

        The set id mirrors the repository's (``pset:<producer>:<type>``)
        so responses, obligations and audit detail are indistinguishable
        from the full compilation.
        """
        bucket = self._bucket(producer_id, event_type)
        positions = self.candidate_positions(
            producer_id, event_type, actor_id, actor_role
        )
        self.stats.selections += 1
        self.stats.candidates_scanned += len(positions)
        self.stats.candidates_skipped += len(bucket.positions) - len(positions)
        policies = tuple(self._compiled(bucket, position) for position in positions)
        policy_set = PolicySet(
            policy_set_id=f"pset:{producer_id}:{event_type}",
            policies=policies,
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        return policy_set, len(positions)
