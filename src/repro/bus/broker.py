"""The service bus broker.

:class:`ServiceBus` ties together the topic tree, the subscription registry
and the delivery engine, and exposes the operations the data controller
uses: declare topics, subscribe/unsubscribe, publish (fan-out), and run
dispatch rounds.  ``auto_dispatch`` (the default) runs a dispatch round
after every publish so simple callers see synchronous-looking delivery;
benchmarks switch it off to measure batched dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.delivery import DeliveryEngine, DeliveryPolicy, DeliveryReport
from repro.bus.envelope import Envelope
from repro.bus.subscriptions import Handler, Subscription, SubscriptionRegistry
from repro.bus.topics import TopicTree
from repro.clock import Clock
from repro.exceptions import BusError, UnknownTopicError
from repro.ids import IdFactory


@dataclass
class BusStats:
    """Broker-wide counters (benchmark instrumentation)."""

    published: int = 0
    fanned_out: int = 0
    dispatch_rounds: int = 0
    bytes_published: int = 0
    bytes_fanned_out: int = 0

    def reset(self) -> None:
        """Zero every counter (benchmark warm-up / measurement windows).

        Resets *counters only*.  The broker's saturation high-water marks
        are deliberately out of scope — they live on the bus and are
        cleared by :meth:`ServiceBus.reset_high_water`, so a measurement
        window can zero its throughput counters without losing the worst
        backlog observed during warm-up.
        """
        self.published = 0
        self.fanned_out = 0
        self.dispatch_rounds = 0
        self.bytes_published = 0
        self.bytes_fanned_out = 0


class ServiceBus:
    """In-process ESB with durable pub/sub and explicit dispatch."""

    def __init__(
        self,
        clock: Clock | None = None,
        ids: IdFactory | None = None,
        delivery_policy: DeliveryPolicy | None = None,
        auto_dispatch: bool = True,
        strict_topics: bool = True,
        telemetry=None,
        perf=None,
        sched=None,
        recorder=None,
    ) -> None:
        self._clock = clock or Clock()
        self._ids = ids or IdFactory()
        self._topics = TopicTree()
        perf = perf if perf is not None and perf.enabled else None
        self._subscriptions = SubscriptionRegistry(
            indexed=perf is not None, perf=perf
        )
        self._engine = DeliveryEngine(delivery_policy)
        self.auto_dispatch = auto_dispatch
        self.strict_topics = strict_topics
        self.stats = BusStats()
        # Saturation high-water marks: the instantaneous depth gauges
        # reset as queues drain, so a capacity run that ends drained
        # would report an idle broker no matter how deep the backlog got
        # mid-run.  The high-water marks keep the worst observed depth.
        self._queue_high_water: dict[str, int] = {}
        self._queue_high_water_global = 0
        self._dead_letter_high_water = 0
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        # The tenant scheduler (kernel kind "sched").  The bus only calls
        # methods on it — metering publishes/fan-out, asking whether a
        # subscriber's backlog must shed, draining the virtual server —
        # so the bus layer stays import-free of repro.sched.
        self._sched = sched if sched is not None and sched.enabled else None
        # The flight recorder (kernel kind "recorder"), duck-typed like
        # telemetry so the bus stays import-free of repro.obs: saturation
        # transitions (shedding, high-water advances) leave a trail in
        # its ring for incident bundles to export.
        self._recorder = (
            recorder if recorder is not None and recorder.enabled else None
        )

    @property
    def sched(self):
        """The wired tenant scheduler (None when unscheduled)."""
        return self._sched

    # -- topics ------------------------------------------------------------

    @property
    def topics(self) -> TopicTree:
        """The broker's topic tree."""
        return self._topics

    def declare_topic(self, path: str) -> None:
        """Declare a topic (idempotent)."""
        self._topics.declare(path)

    # -- subscriptions ---------------------------------------------------------

    def subscribe(self, subscriber: str, pattern: str, handler: Handler,
                  delivery_policy: DeliveryPolicy | None = None) -> Subscription:
        """Create a durable subscription and return it.

        ``delivery_policy`` overrides the engine-wide retry budget for
        this subscription only (``None`` keeps the engine default).
        """
        subscription = Subscription(
            subscription_id=self._ids.next("sub"),
            subscriber=subscriber,
            pattern=pattern,
            handler=handler,
            policy=delivery_policy,
        )
        self._subscriptions.add(subscription)
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        """Remove a subscription; queued messages are dropped."""
        self._subscriptions.remove(subscription_id)

    def subscriptions_of(self, subscriber: str) -> list[Subscription]:
        """Every subscription held by ``subscriber``."""
        return self._subscriptions.for_subscriber(subscriber)

    @property
    def subscription_count(self) -> int:
        """Number of registered subscriptions."""
        return len(self._subscriptions)

    # -- publish -------------------------------------------------------------------

    def publish(
        self,
        topic: str,
        sender: str,
        body: object,
        correlation_id: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> Envelope:
        """Publish ``body`` on ``topic``; returns the envelope.

        With ``strict_topics`` (default) the topic must have been declared —
        undeclared topics mean the producer skipped catalog installation.
        Fan-out enqueues into every matching subscription; with
        ``auto_dispatch`` a dispatch round runs immediately.
        """
        if self.strict_topics and not self._topics.exists(topic):
            raise UnknownTopicError(f"publish to undeclared topic {topic!r}")
        now = self._clock.now()
        if self._sched is not None:
            self._sched.note_publish(sender, now)
        envelope = self._make_envelope(topic, sender, body, correlation_id,
                                       headers)
        matching = self._subscriptions.matching_topic(topic)
        self._fan_out(envelope, matching, now)
        if self.auto_dispatch and matching:
            self.dispatch()
        return envelope

    def publish_many(
        self,
        items: list[tuple[str, str, object]],
    ) -> list[Envelope]:
        """Vectorized publish: fan a batch out with amortized bookkeeping.

        ``items`` is a list of ``(topic, sender, body)`` triples.  Every
        topic is validated up front (all-or-nothing under
        ``strict_topics``), the subscription trie is resolved once per
        distinct topic, the scheduler meters each run of consecutive
        same-sender items as one tenant-batch, and — with
        ``auto_dispatch`` — a single dispatch round runs at the end
        instead of one per publish.  Per-envelope fan-out, shedding and
        high-water accounting are identical to sequential
        :meth:`publish` calls.
        """
        if self.strict_topics:
            for topic, _sender, _body in items:
                if not self._topics.exists(topic):
                    raise UnknownTopicError(
                        f"publish to undeclared topic {topic!r}"
                    )
        now = self._clock.now()
        envelopes: list[Envelope] = []
        matching_memo: dict[str, list[Subscription]] = {}
        any_matching = False
        position = 0
        while position < len(items):
            sender = items[position][1]
            run_end = position
            while run_end < len(items) and items[run_end][1] == sender:
                run_end += 1
            if self._sched is not None:
                self._sched.note_publish_many(sender, run_end - position, now)
            for topic, item_sender, body in items[position:run_end]:
                envelope = self._make_envelope(topic, item_sender, body,
                                               None, None)
                matching = matching_memo.get(topic)
                if matching is None:
                    matching = self._subscriptions.matching_topic(topic)
                    matching_memo[topic] = matching
                self._fan_out(envelope, matching, now)
                any_matching = any_matching or bool(matching)
                envelopes.append(envelope)
            position = run_end
        if self.auto_dispatch and any_matching:
            self.dispatch()
        return envelopes

    def _make_envelope(
        self,
        topic: str,
        sender: str,
        body: object,
        correlation_id: str | None,
        headers: dict[str, str] | None,
    ) -> Envelope:
        envelope = Envelope(
            message_id=self._ids.next("msg"),
            topic=topic,
            sender=sender,
            body=body,
            created_at=self._clock.now(),
            correlation_id=correlation_id,
            headers=headers or {},
        )
        self.stats.published += 1
        self.stats.bytes_published += envelope.size_estimate()
        return envelope

    def _fan_out(self, envelope: Envelope,
                 matching: list[Subscription], now: float) -> None:
        """Enqueue one envelope into every matching subscription.

        The shared fan-out engine of :meth:`publish` and
        :meth:`publish_many`: sched metering and shedding per
        subscriber, queue/dead-letter high-water marks, telemetry.
        """
        topic = envelope.topic
        size = envelope.size_estimate()
        shed_any = False
        for subscription in matching:
            if self._sched is not None:
                self._sched.note_fanout(subscription.subscriber, now)
                if self._sched.should_shed(subscription.subscriber,
                                           subscription.queue.depth):
                    # Backpressure: the subscriber's backlog is over the
                    # bound — overflow to the dead-letter queue, tagged
                    # with the subscription id so replay_all_dead_letters
                    # can re-drive it after the abuse episode.
                    self._engine.dead_letter.enqueue_from(
                        subscription.subscription_id, envelope, now=now
                    )
                    self._sched.note_shed(subscription.subscriber)
                    shed_any = True
                    continue
            subscription.queue.enqueue(envelope, now=now)
            self.stats.fanned_out += 1
            self.stats.bytes_fanned_out += size
        if shed_any:
            if self._recorder is not None:
                self._recorder.record("bus.deadletter", topic=topic,
                                      depth=self.dead_letter_depth)
            if self.dead_letter_depth > self._dead_letter_high_water:
                self._dead_letter_high_water = self.dead_letter_depth
                if self._telemetry is not None:
                    self._telemetry.gauge("bus.deadletter.high_water",
                                          self._dead_letter_high_water)
                if self._recorder is not None:
                    self._recorder.record("bus.deadletter_high_water",
                                          depth=self._dead_letter_high_water)
        if matching:
            topic_depth = sum(sub.queue.depth for sub in matching)
            if topic_depth > self._queue_high_water.get(topic, 0):
                self._queue_high_water[topic] = topic_depth
                if self._telemetry is not None:
                    self._telemetry.gauge("bus.queue.high_water",
                                          topic_depth, topic=topic)
                if self._recorder is not None:
                    self._recorder.record("bus.queue_high_water",
                                          topic=topic, depth=topic_depth)
            self._queue_high_water_global = max(
                self._queue_high_water_global, self.queue_depth
            )
        if self._telemetry is not None:
            self._telemetry.count("bus.published_total", topic=topic)
            self._telemetry.count("bus.fanout_total", len(matching), topic=topic)
            self._telemetry.gauge("bus.queue.depth", self.queue_depth)

    # -- dispatch -------------------------------------------------------------------

    def dispatch(self) -> DeliveryReport:
        """Run one dispatch round over all subscriptions.

        With a scheduler wired, the round first advances the scheduler's
        virtual server to now — fifo or deficit-round-robin over the
        tenant queues — so fairness accounting tracks dispatch activity.
        """
        self.stats.dispatch_rounds += 1
        if self._sched is not None:
            self._sched.drain(self._clock.now())
        report = self._engine.dispatch_all(self._subscriptions.all_subscriptions())
        if report.dead_lettered and self._recorder is not None:
            self._recorder.record("bus.deadletter",
                                  count=report.dead_lettered,
                                  depth=self.dead_letter_depth)
        if self.dead_letter_depth > self._dead_letter_high_water:
            self._dead_letter_high_water = self.dead_letter_depth
            if self._telemetry is not None:
                self._telemetry.gauge("bus.deadletter.high_water",
                                      self._dead_letter_high_water)
            if self._recorder is not None:
                self._recorder.record("bus.deadletter_high_water",
                                      depth=self._dead_letter_high_water)
        if self._telemetry is not None:
            self._telemetry.count("bus.dispatch_rounds_total")
            if report.dead_lettered:
                self._telemetry.count("bus.deadletter_total",
                                      report.dead_lettered)
            self._telemetry.gauge("bus.queue.depth", self.queue_depth)
        return report

    def pending_messages(self) -> int:
        """Total messages waiting across all subscription queues."""
        return sum(sub.queue.depth for sub in self._subscriptions.all_subscriptions())

    @property
    def queue_depth(self) -> int:
        """Broker-wide queue depth — the single source the telemetry
        gauge (``bus.queue.depth``) and the benchmarks both read."""
        return self.pending_messages()

    @property
    def dead_letter_depth(self) -> int:
        """Messages parked in the dead-letter queue."""
        return self._engine.dead_letter.depth

    # -- saturation high-water marks ----------------------------------------

    def queue_high_water(self, topic: str | None = None) -> int:
        """Deepest backlog ever observed — per topic, or broker-wide.

        Per-topic marks sum the queues of the subscriptions matching that
        topic at publish time; the broker-wide mark tracks
        :attr:`queue_depth` across publishes.  Both survive draining, so
        a capacity harness can report saturation after the fact.
        """
        if topic is not None:
            return self._queue_high_water.get(topic, 0)
        return self._queue_high_water_global

    def queue_high_water_marks(self) -> dict[str, int]:
        """Every per-topic queue-depth high-water mark (topic → depth)."""
        return dict(self._queue_high_water)

    @property
    def dead_letter_high_water(self) -> int:
        """Deepest the dead-letter queue has ever been."""
        return self._dead_letter_high_water

    def reset_high_water(self) -> None:
        """Zero every high-water mark (benchmark measurement windows)."""
        self._queue_high_water.clear()
        self._queue_high_water_global = 0
        self._dead_letter_high_water = 0

    def drain_dead_letters(self) -> list[Envelope]:
        """Remove and return every dead-lettered envelope (operator action)."""
        return self._engine.dead_letter.drain()

    def replay_dead_letters(self, subscription_id: str) -> int:
        """Re-drive one subscription's dead letters after its consumer is fixed.

        Counts the messages as redeliveries and, with ``auto_dispatch``,
        immediately runs a dispatch round so they flow through the repaired
        handler.  Returns how many messages were re-driven.
        """
        subscription = self._subscriptions.get(subscription_id)
        count = self._engine.replay_dead_letters(subscription,
                                                 now=self._clock.now())
        if count and self.auto_dispatch:
            self.dispatch()
        return count

    def replay_all_dead_letters(self) -> int:
        """Re-drive every dead letter with a known, live origin.

        The bulk counterpart of :meth:`replay_dead_letters` — after an
        abuse episode sheds overflow for many subscriptions, one call
        drains the whole backlog back through the repaired consumers.
        Messages parked with no recorded origin, or whose subscription
        has since been removed, stay parked.  Returns the total re-driven.
        """
        total = 0
        now = self._clock.now()
        for origin in self._engine.dead_letter.origin_ids():
            try:
                subscription = self._subscriptions.get(origin)
            except BusError:
                continue
            total += self._engine.replay_dead_letters(subscription, now=now)
        if total and self.auto_dispatch:
            self.dispatch()
        return total

    def dead_letter_counts(self) -> dict[str, int]:
        """Cumulative dead-letter arrivals per topic (survive replay)."""
        return self._engine.dead_letter.counts_by_topic()
