"""Unit and property tests for repro.crypto.cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import SealedBox, StreamCipher, derive_key
from repro.exceptions import CryptoError, TokenError


class TestDeriveKey:
    def test_is_deterministic(self):
        assert derive_key("secret", "ctx") == derive_key("secret", "ctx")

    def test_contexts_are_independent(self):
        assert derive_key("secret", "a") != derive_key("secret", "b")

    def test_secrets_are_independent(self):
        assert derive_key("one", "ctx") != derive_key("two", "ctx")

    def test_accepts_bytes_secret(self):
        assert derive_key(b"secret", "ctx") == derive_key("secret", "ctx")

    def test_empty_secret_rejected(self):
        with pytest.raises(CryptoError):
            derive_key("", "ctx")

    def test_output_is_32_bytes(self):
        assert len(derive_key("s", "c")) == 32


class TestStreamCipher:
    def test_apply_twice_round_trips(self):
        cipher = StreamCipher(b"k" * 16)
        nonce = b"n" * 8
        data = b"sensitive payload"
        assert cipher.apply(cipher.apply(data, nonce), nonce) == data

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            StreamCipher(b"short")

    def test_short_nonce_rejected(self):
        cipher = StreamCipher(b"k" * 16)
        with pytest.raises(CryptoError):
            cipher.apply(b"data", b"abc")

    def test_different_nonces_give_different_ciphertexts(self):
        cipher = StreamCipher(b"k" * 16)
        data = b"same plaintext"
        assert cipher.apply(data, b"nonce--1") != cipher.apply(data, b"nonce--2")

    def test_handles_data_longer_than_one_block(self):
        cipher = StreamCipher(b"k" * 16)
        data = b"x" * 1000
        nonce = b"n" * 16
        assert cipher.apply(cipher.apply(data, nonce), nonce) == data

    def test_empty_data(self):
        cipher = StreamCipher(b"k" * 16)
        assert cipher.apply(b"", b"n" * 8) == b""


class TestSealedBox:
    def test_round_trip(self):
        box = SealedBox("secret")
        token = box.seal("Mario Bianchi", sequence=1)
        assert box.open(token) == "Mario Bianchi"

    def test_token_is_opaque(self):
        box = SealedBox("secret")
        assert "Mario" not in box.seal("Mario Bianchi", sequence=1)

    def test_sequences_give_distinct_tokens(self):
        box = SealedBox("secret")
        assert box.seal("same", 1) != box.seal("same", 2)

    def test_same_sequence_is_deterministic(self):
        box = SealedBox("secret")
        assert box.seal("same", 7) == box.seal("same", 7)

    def test_negative_sequence_rejected(self):
        with pytest.raises(CryptoError):
            SealedBox("secret").seal("x", -1)

    def test_tampered_token_detected(self):
        box = SealedBox("secret")
        token = box.seal("Mario Bianchi", 1)
        flipped = ("0" if token[10] != "0" else "1")
        tampered = token[:10] + flipped + token[11:]
        with pytest.raises(TokenError):
            box.open(tampered)

    def test_wrong_key_detected(self):
        token = SealedBox("secret-one").seal("data", 1)
        with pytest.raises(TokenError):
            SealedBox("secret-two").open(token)

    def test_non_hex_token_rejected(self):
        with pytest.raises(TokenError):
            SealedBox("secret").open("zz-not-hex")

    def test_truncated_token_rejected(self):
        with pytest.raises(TokenError):
            SealedBox("secret").open("ab" * 10)

    def test_is_valid_true_and_false(self):
        box = SealedBox("secret")
        token = box.seal("x", 1)
        assert box.is_valid(token)
        assert not box.is_valid(token[:-2] + "00")
        assert not box.is_valid("nothex!")

    def test_unicode_round_trip(self):
        box = SealedBox("secret")
        text = "àèìòù — Trentino ♥"
        assert box.open(box.seal(text, 3)) == text


class TestSealedBoxProperties:
    @given(text=st.text(max_size=200), sequence=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_seal_open_round_trip(self, text, sequence):
        box = SealedBox("property-secret")
        assert box.open(box.seal(text, sequence)) == text

    @given(
        first=st.text(max_size=60),
        second=st.text(max_size=60),
        sequence=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_plaintexts_distinct_tokens(self, first, second, sequence):
        box = SealedBox("property-secret")
        if first != second:
            assert box.seal(first, sequence) != box.seal(second, sequence)
