#!/usr/bin/env python
"""Schema check for ``BENCH_capacity.json`` (schema ``css-bench-capacity/1``).

CI runs ``repro workload --scenario steady ... --out BENCH_capacity.json``
and then this script.  Beyond shape validation it enforces the two
semantic gates of the workload engine:

* every capacity point must carry a verified ``audit_digest`` — the
  capacity figures are only trustworthy if the hash-chained audit trail
  behind them verified end to end;
* **privacy**: the serialized payload must not contain a plaintext
  assisted-person identifier (the population's ``ap-NNNNNNNN`` shape) or
  a bare subject name — the benchmark artifact is shareable and must
  stay free of direct identifiers, like every other export of the
  platform.

Usage::

    python benchmarks/check_capacity_schema.py BENCH_capacity.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-capacity/1"
LATENCY_KEYS = ("p50", "p95", "p99", "mean", "min", "max")
PIPELINES = ("publish", "details")
ARRIVALS = ("poisson", "onoff")

#: The plaintext shape of an assisted-person identifier
#: (:data:`repro.workload.population.SUBJECT_PREFIX` + zero-padded index).
SUBJECT_ID_PATTERN = re.compile(r"\bap-\d{8}\b")

POINT_COUNTERS = (
    "ops", "published", "publish_blocked", "detail_permits",
    "detail_denies", "subscribe_ops", "cross_node_hops",
    "queue_depth_high_water", "dead_letter_high_water", "audit_records",
)
POINT_RATES = (
    "events_per_second", "details_per_second",
    "makespan_seconds", "simulated_seconds",
)


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _integer(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_latency(section: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(section, dict):
        return [f"{where} must be an object"]
    for pipeline in PIPELINES:
        summary = section.get(pipeline)
        if not isinstance(summary, dict):
            problems.append(f"{where}.{pipeline} must be an object")
            continue
        for key in LATENCY_KEYS:
            value = summary.get(key)
            if not _number(value) or value < 0:
                problems.append(
                    f"{where}.{pipeline}.{key} must be a non-negative number"
                )
        if all(_number(summary.get(key)) for key in ("p50", "p95", "p99")):
            if not summary["p50"] <= summary["p95"] <= summary["p99"]:
                problems.append(
                    f"{where}.{pipeline}: percentiles must satisfy "
                    "p50 <= p95 <= p99"
                )
    return problems


def _validate_point(point: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(point, dict):
        return [f"{where} must be an object"]
    nodes = point.get("nodes")
    if not _integer(nodes) or nodes < 1:
        problems.append(f"{where}.nodes must be a positive integer")
    for key in POINT_COUNTERS:
        value = point.get(key)
        if not _integer(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative integer")
    for key in POINT_RATES:
        value = point.get(key)
        if not _number(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative number")
    digest = point.get("audit_digest")
    if not isinstance(digest, str) or not digest.startswith("sha256:"):
        problems.append(
            f"{where}.audit_digest must be a 'sha256:'-prefixed digest of "
            "the verified audit chain heads"
        )
    problems.extend(_validate_latency(point.get("latency_seconds"),
                                      f"{where}.latency_seconds"))
    if _integer(point.get("ops")) and _integer(point.get("published")):
        if point["published"] > point["ops"]:
            problems.append(f"{where}: published exceeds total ops")
    return problems


def _validate_privacy(payload: dict) -> list[str]:
    """The artifact must carry no direct assisted-person identifier."""
    serialized = json.dumps(payload, sort_keys=True)
    match = SUBJECT_ID_PATTERN.search(serialized)
    if match:
        return [
            f"privacy: plaintext assisted-person id {match.group(0)!r} "
            "leaked into the capacity payload"
        ]
    return []


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    if not isinstance(payload.get("scenario"), str) or not payload.get("scenario"):
        problems.append("scenario must be a non-empty string")
    if not _integer(payload.get("seed")):
        problems.append("seed must be an integer")
    population = payload.get("population")
    if not _integer(population) or population < 1:
        problems.append("population must be a positive integer")
    ops = payload.get("ops")
    if not _integer(ops) or ops < 0:
        problems.append("ops must be a non-negative integer")
    if payload.get("arrival") not in ARRIVALS:
        problems.append(f"arrival must be one of {', '.join(ARRIVALS)}")

    points = payload.get("nodes")
    if not isinstance(points, list) or not points:
        problems.append("nodes must be a non-empty list of capacity points")
        points = []
    node_counts = []
    for index, point in enumerate(points):
        problems.extend(_validate_point(point, f"nodes[{index}]"))
        if isinstance(point, dict) and _integer(point.get("nodes")):
            node_counts.append(point["nodes"])
    if node_counts != sorted(node_counts):
        problems.append("capacity points must be ordered by ascending node count")

    problems.extend(_validate_privacy(payload))
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_capacity_schema.py BENCH_capacity.json",
              file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_capacity_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_capacity_schema: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_capacity_schema: {problem}", file=sys.stderr)
        return 1
    points = payload["nodes"]
    best = max(points, key=lambda point: point["events_per_second"])
    print(f"check_capacity_schema: {path} ok ({len(points)} capacity "
          f"points, peak {best['events_per_second']:.0f} events/s "
          f"at {best['nodes']} nodes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
