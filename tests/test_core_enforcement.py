"""Unit tests for the Policy Enforcer (Algorithm 1)."""

import pytest

from repro.audit.log import AuditAction, AuditLog, AuditOutcome
from repro.clock import Clock
from repro.core.actors import Actor, ActorKind
from repro.core.consent import ConsentRegistry, ConsentScope
from repro.core.enforcement import DetailRequest, PolicyEnforcer
from repro.core.events import EventClass, EventOccurrence
from repro.core.gateway import LocalCooperationGateway
from repro.core.idmap import EventIdEntry, EventIdMap
from repro.core.policy import PolicyRepository, PrivacyPolicy
from repro.core.purposes import PurposeRegistry
from repro.exceptions import AccessDeniedError, SourceUnavailableError
from repro.ids import IdFactory
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType


def blood_class() -> EventClass:
    schema = MessageSchema("BloodTest", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Hemoglobin", IntegerType(0, 30), sensitive=True),
        ElementDecl("HivResult", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
    ])
    return EventClass(name="BloodTest", producer_id="Hospital", schema=schema)


class EnforcerHarness:
    """A minimal hand-wired enforcement stack (no DataController)."""

    def __init__(self, consent: ConsentRegistry | None = None) -> None:
        self.clock = Clock()
        self.repository = PolicyRepository()
        self.id_map = EventIdMap()
        self.gateway = LocalCooperationGateway("Hospital")
        self.audit = AuditLog()
        self.consent = consent
        self.enforcer = PolicyEnforcer(
            repository=self.repository,
            id_map=self.id_map,
            purposes=PurposeRegistry(),
            gateway_resolver=lambda producer_id: self.gateway,
            audit_log=self.audit,
            clock=self.clock,
            ids=IdFactory(seed="harness"),
            consent_resolver=lambda producer_id: self.consent,
        )
        self._publish()

    def _publish(self) -> None:
        occurrence = EventOccurrence(
            event_class=blood_class(), src_event_id="src-1", subject_id="p1",
            subject_name="Mario", occurred_at=0.0, summary="done",
            details=XmlDocument("BloodTest", {
                "PatientId": "p1", "Hemoglobin": 14, "HivResult": "negative",
            }),
        )
        self.gateway.persist(occurrence)
        self.id_map.record(EventIdEntry(
            event_id="evt-1", producer_id="Hospital", src_event_id="src-1",
            event_type="BloodTest", subject_ref="p1", published_at=0.0,
        ))

    def grant(self, fields: frozenset[str],
              purposes: frozenset[str] = frozenset({"healthcare-treatment"}),
              actor_id: str = "Doctor", **kwargs) -> None:
        self.repository.add(PrivacyPolicy(
            policy_id=f"pol-{len(self.repository) + 1}",
            producer_id="Hospital", event_type="BloodTest",
            fields=fields, purposes=purposes, actor_id=actor_id, **kwargs,
        ))

    def request(self, actor_id: str = "Doctor", purpose: str = "healthcare-treatment",
                event_id: str = "evt-1", event_type: str = "BloodTest",
                role: str = "") -> DetailRequest:
        return DetailRequest(
            actor=Actor(actor_id=actor_id, name=actor_id, kind=ActorKind.CONSUMER, role=role),
            event_type=event_type, event_id=event_id, purpose=purpose,
        )


class TestAlgorithm1:
    def test_permit_returns_filtered_detail(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId", "Hemoglobin"}))
        detail = harness.enforcer.get_event_details(harness.request())
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14}
        assert "HivResult" not in detail.exposed_values()
        assert harness.enforcer.stats.permits == 1

    def test_deny_by_default_without_policy(self):
        harness = EnforcerHarness()
        with pytest.raises(AccessDeniedError, match="deny-by-default"):
            harness.enforcer.get_event_details(harness.request())
        assert harness.enforcer.stats.denies == 1

    def test_wrong_purpose_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(
                harness.request(purpose="statistical-analysis")
            )

    def test_unknown_purpose_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError, match="unknown purpose"):
            harness.enforcer.get_event_details(harness.request(purpose="marketing"))

    def test_unknown_event_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request(event_id="evt-404"))

    def test_mismatched_event_type_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError, match="claims type"):
            harness.enforcer.get_event_details(harness.request(event_type="Other"))

    def test_wrong_actor_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request(actor_id="Stranger"))

    def test_hierarchical_actor_grant(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}), actor_id="Clinic")
        detail = harness.enforcer.get_event_details(harness.request(actor_id="Clinic/Unit"))
        assert detail.exposed_values() == {"PatientId": "p1"}

    def test_role_based_grant(self):
        harness = EnforcerHarness()
        harness.repository.add(PrivacyPolicy(
            policy_id="role-pol", producer_id="Hospital", event_type="BloodTest",
            fields=frozenset({"Hemoglobin"}),
            purposes=frozenset({"statistical-analysis"}),
            actor_role="statistician",
        ))
        detail = harness.enforcer.get_event_details(
            harness.request(actor_id="Province/Stats", purpose="statistical-analysis",
                            role="statistician")
        )
        assert detail.exposed_values() == {"Hemoglobin": 14}

    def test_union_of_matching_policies(self):
        """Two grants to the same actor release the union of their fields."""
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        harness.grant(frozenset({"Hemoglobin"}))
        detail = harness.enforcer.get_event_details(harness.request())
        assert set(detail.exposed_values()) == {"PatientId", "Hemoglobin"}

    def test_expired_policy_denied(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}), valid_until=100.0)
        harness.clock.advance(200.0)
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request())

    def test_policy_becomes_valid_later(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}), valid_from=100.0)
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request())
        harness.clock.advance(150.0)
        assert harness.enforcer.get_event_details(harness.request())

    def test_gateway_failure_surfaces(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        harness.gateway.persistence_enabled = False
        harness.gateway.take_source_offline()
        with pytest.raises(SourceUnavailableError):
            harness.enforcer.get_event_details(harness.request())
        assert harness.enforcer.stats.gateway_failures == 1


class TestConsentVeto:
    def test_detail_opt_out_denies_before_policy(self):
        consent = ConsentRegistry("Hospital")
        consent.opt_out("p1", ConsentScope.DETAILS, "BloodTest")
        harness = EnforcerHarness(consent=consent)
        harness.grant(frozenset({"PatientId"}))
        with pytest.raises(AccessDeniedError, match="opted out"):
            harness.enforcer.get_event_details(harness.request())
        assert harness.enforcer.stats.consent_vetoes == 1

    def test_other_subject_unaffected(self):
        consent = ConsentRegistry("Hospital")
        consent.opt_out("p-other", ConsentScope.DETAILS, "BloodTest")
        harness = EnforcerHarness(consent=consent)
        harness.grant(frozenset({"PatientId"}))
        assert harness.enforcer.get_event_details(harness.request())


class TestAuditing:
    def test_permit_is_audited_with_released_fields(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        harness.enforcer.get_event_details(harness.request())
        records = harness.audit.records()
        assert len(records) == 1
        assert records[0].action is AuditAction.DETAIL_REQUEST
        assert records[0].outcome is AuditOutcome.PERMIT
        assert "PatientId" in records[0].detail
        assert records[0].subject_ref == "p1"
        assert records[0].purpose == "healthcare-treatment"

    def test_deny_is_audited(self):
        harness = EnforcerHarness()
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request())
        records = harness.audit.records()
        assert records[0].outcome is AuditOutcome.DENY

    def test_every_outcome_keeps_chain_valid(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        harness.enforcer.get_event_details(harness.request())
        with pytest.raises(AccessDeniedError):
            harness.enforcer.get_event_details(harness.request(purpose="administration"))
        harness.audit.verify_integrity()


class TestDecide:
    def test_decide_true_without_side_effects_on_gateway(self):
        harness = EnforcerHarness()
        harness.grant(frozenset({"PatientId"}))
        assert harness.enforcer.decide(harness.request()) is True
        assert harness.gateway.stats.served_from_source == 0

    def test_decide_false_cases(self):
        harness = EnforcerHarness()
        assert harness.enforcer.decide(harness.request()) is False
        harness.grant(frozenset({"PatientId"}))
        assert harness.enforcer.decide(harness.request(event_id="missing")) is False
