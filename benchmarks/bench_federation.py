#!/usr/bin/env python
"""Federation scaling benchmark: routing throughput at 1/2/4/8 nodes.

Runs the same seeded workload through :class:`FederatedScenario` at each
federation size and derives notification-routing throughput from the
simulated cost model: every node charges its :class:`WorkMeter` fixed
per-operation service times (publish, index store, relay, detail
resolution), the cluster makespan is the busiest node's total, and
throughput is ``events / makespan``.  Sharding the index and the
producer/consumer homes over more nodes shrinks the busiest node's
share, so throughput must rise monotonically with the node count — CI
checks exactly that through ``check_federation_schema.py``.  Usage::

    PYTHONPATH=src python benchmarks/bench_federation.py \
        --nodes 1,2,4,8 --events 200 --out BENCH_federation.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.federation import FederatedScenario, FederatedScenarioConfig  # noqa: E402

SCHEMA_ID = "css-bench-federation/1"


def run_point(nodes: int, events: int, patients: int, seed: int) -> dict:
    """One scaling point: build, run, and summarize an N-node federation."""
    started = time.perf_counter()
    scenario = FederatedScenario(FederatedScenarioConfig(
        nodes=nodes, n_events=events, n_patients=patients, seed=seed,
    ))
    report = scenario.run()
    wall = time.perf_counter() - started
    return {
        "nodes": nodes,
        "events_published": report.events_published,
        "notifications_delivered": report.notifications_delivered,
        "detail_permits": report.detail_permits,
        "detail_denies": report.detail_denies,
        "cross_node_hops": report.cross_node_hops,
        "makespan_seconds": report.makespan_seconds,
        "events_per_simulated_second": report.routing_throughput,
        "wall_seconds": wall,
    }


def build_summary(points: list[dict], events: int, patients: int,
                  seed: int) -> dict:
    """The ``BENCH_federation.json`` payload."""
    return {
        "schema": SCHEMA_ID,
        "source": f"benchmarks/bench_federation.py --events {events} "
                  f"--patients {patients} --seed {seed}",
        "workload": {"events": events, "patients": patients, "seed": seed},
        "scaling": points,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", default="1,2,4,8",
                        help="comma-separated node counts (default 1,2,4,8)")
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--patients", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--out", metavar="FILE",
                        help="write the summary JSON to FILE")
    args = parser.parse_args(argv)

    node_counts = [int(part) for part in args.nodes.split(",") if part.strip()]
    if not node_counts or any(count < 1 for count in node_counts):
        print("bench_federation: --nodes must be positive integers",
              file=sys.stderr)
        return 2

    points = [
        run_point(count, args.events, args.patients, args.seed)
        for count in node_counts
    ]

    print(f"federation scaling ({args.events} events, {args.patients} "
          f"patients, seed {args.seed})")
    print(f"{'nodes':>5}  {'makespan':>9}  {'events/s':>9}  "
          f"{'hops':>6}  {'wall':>7}")
    for point in points:
        print(f"{point['nodes']:>5}  {point['makespan_seconds']:>8.3f}s  "
              f"{point['events_per_simulated_second']:>9.1f}  "
              f"{point['cross_node_hops']:>6}  "
              f"{point['wall_seconds']:>6.2f}s")

    throughputs = [point["events_per_simulated_second"] for point in points]
    if throughputs != sorted(throughputs) or len(set(throughputs)) != len(throughputs):
        print("bench_federation: throughput is not strictly increasing "
              "with the node count", file=sys.stderr)
        return 1
    print("throughput increases monotonically with the node count")

    if args.out:
        summary = build_summary(points, args.events, args.patients, args.seed)
        Path(args.out).write_text(json.dumps(summary, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
