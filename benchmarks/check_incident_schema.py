#!/usr/bin/env python
"""Schema check for ``css-incident/1`` incident bundles.

CI runs ``repro incident --scenario federated --out incidents/`` and
then this script over the bundle directory.  Beyond shape validation it
enforces the PR's semantic gates:

* the bundle's ``manifest.json`` must list every payload file with a
  sha256 that matches the bytes on disk — a tampered or truncated
  bundle fails the same way a tampered storage snapshot does;
* the merged event timeline must be sorted by the stitching key
  ``(at, node, seq)`` and spans by ``(at, seq)`` — the discipline that
  makes same-seed bundles byte-identical;
* the trigger must explain itself: an ``slo-breach`` bundle must carry
  a windowed burn-rate series for every breached objective, and every
  other trigger for its associated objective;
* **privacy**: the serialized bundle must carry no plaintext
  assisted-person id (``ap-NNNNNNNN``) and no plaintext tenant /
  organization id (scheduler tenant keys must be privacy-guard hashes,
  ``h:…``).

Usage::

    python benchmarks/check_incident_schema.py incidents/incident-0001
    python benchmarks/check_incident_schema.py incidents
    python benchmarks/check_incident_schema.py incident.json

A directory without ``incident.json`` is treated as a container of
bundle directories (``incident-*``) and every one is checked.

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the mutation tests exercise directly.
"""

from __future__ import annotations

import hashlib
import json
import re
import sys
from pathlib import Path

SCHEMA_ID = "css-incident/1"

#: Watchdog trigger kinds and the objective each non-SLO one must
#: carry a burn-rate trajectory for (mirrors repro.obs.incident).
TRIGGER_OBJECTIVES = {
    "deadletter-spike": "bus-deadletter-ratio",
    "queue-depth-ceiling": "node-queues-drained",
    "penalty-demotion": "tenant-starvation",
}
TRIGGERS = ("slo-breach", *TRIGGER_OBJECTIVES)

#: The plaintext shape of an assisted-person identifier.
SUBJECT_ID_PATTERN = re.compile(r"\bap-\d{8}\b")

#: Plaintext fragments of deployment / roster organization ids that must
#: never appear in the shareable artifact (tenants are guard-hashed).
TENANT_ID_FRAGMENTS = (
    "Province-Trentino", "Municipality-Trento", "FamilyDoctors",
    "Hospital-S-Maria", "HomeAssist-Coop", "Org-0", "Org-1",
)

INCIDENT_ID_PATTERN = re.compile(r"^incident-\d{4}$")

BUNDLE_FILES = ("incident.json", "events.jsonl", "series.jsonl")

BURN_POINT_KEYS = ("at", "attainment", "observed", "burn_rate")

QUEUE_KEYS = (
    "queue_depth", "dead_letter_depth",
    "queue_high_water", "dead_letter_high_water",
)


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _integer(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_trigger(payload: dict) -> list[str]:
    problems: list[str] = []
    trigger = payload.get("trigger")
    if not isinstance(trigger, dict):
        return ["trigger must be an object"]
    if trigger.get("kind") not in TRIGGERS:
        problems.append(
            f"trigger.kind must be one of {sorted(TRIGGERS)}, "
            f"got {trigger.get('kind')!r}"
        )
    if not _number(trigger.get("at")) or trigger.get("at", -1) < 0:
        problems.append("trigger.at must be a non-negative number")
    if not isinstance(trigger.get("detail"), dict):
        problems.append("trigger.detail must be an object")
    return problems


def _validate_burn_rates(payload: dict) -> list[str]:
    problems: list[str] = []
    burn_rates = payload.get("burn_rates")
    if not isinstance(burn_rates, dict) or not burn_rates:
        return ["burn_rates must be a non-empty object "
                "(every bundle explains at least one objective)"]
    for objective, windows in burn_rates.items():
        where = f"burn_rates[{objective!r}]"
        if not isinstance(windows, dict) or set(windows) != {"short", "long"}:
            problems.append(f"{where} must carry exactly 'short' and 'long'")
            continue
        for window, series in windows.items():
            if not isinstance(series, list):
                problems.append(f"{where}.{window} must be a list")
                continue
            for index, point in enumerate(series):
                spot = f"{where}.{window}[{index}]"
                if not isinstance(point, dict):
                    problems.append(f"{spot} must be an object")
                    continue
                for key in BURN_POINT_KEYS:
                    if not _number(point.get(key)):
                        problems.append(f"{spot}.{key} must be a number")
                attainment = point.get("attainment")
                if _number(attainment) and not 0.0 <= attainment <= 1.0:
                    problems.append(f"{spot}.attainment must be in [0, 1]")

    # The trigger must explain itself with a burn trajectory.
    trigger = payload.get("trigger")
    if isinstance(trigger, dict):
        kind = trigger.get("kind")
        wanted: list[str] = []
        if kind == "slo-breach":
            detail = trigger.get("detail")
            if isinstance(detail, dict):
                objectives = detail.get("objectives")
                if isinstance(objectives, list):
                    wanted = [o for o in objectives if isinstance(o, str)]
        elif kind in TRIGGER_OBJECTIVES:
            wanted = [TRIGGER_OBJECTIVES[kind]]
        for objective in wanted:
            if objective not in burn_rates:
                problems.append(
                    f"burn_rates must carry the trigger's objective "
                    f"{objective!r}"
                )
    return problems


def _validate_events(payload: dict) -> list[str]:
    problems: list[str] = []
    events = payload.get("events")
    if not isinstance(events, list):
        return ["events must be a list"]
    previous = None
    for index, row in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(row.get("kind"), str) or not row.get("kind"):
            problems.append(f"{where}.kind must be a non-empty string")
        if not isinstance(row.get("node"), str) or not row.get("node"):
            problems.append(f"{where}.node must be a non-empty string")
        if not _integer(row.get("seq")) or row.get("seq", 0) < 1:
            problems.append(f"{where}.seq must be a positive integer")
        if not _number(row.get("at")) or row.get("at", -1) < 0:
            problems.append(f"{where}.at must be a non-negative number")
        key = (row.get("at"), row.get("node"), row.get("seq"))
        if previous is not None and all(
            _number(k) or isinstance(k, str) for k in (*previous, *key)
        ) and key < previous:
            problems.append(
                f"{where} breaks the (at, node, seq) merge order"
            )
        previous = key
    return problems


def _validate_spans(payload: dict) -> list[str]:
    problems: list[str] = []
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return ["spans must be a list"]
    for index, row in enumerate(spans):
        where = f"spans[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("name", "trace_id", "span_id", "status", "node"):
            if not isinstance(row.get(key), str) or not row.get(key):
                problems.append(f"{where}.{key} must be a non-empty string")
        if not _number(row.get("at")) or row.get("at", -1) < 0:
            problems.append(f"{where}.at must be a non-negative number")
        if not _number(row.get("duration")):
            problems.append(f"{where}.duration must be a number")
    return problems


def _validate_series(payload: dict) -> list[str]:
    problems: list[str] = []
    series = payload.get("series")
    if not isinstance(series, list):
        return ["series must be a list"]
    for index, row in enumerate(series):
        where = f"series[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        if row.get("type") not in ("counter", "gauge", "histogram"):
            problems.append(f"{where}.type must be a metric type")
        if not isinstance(row.get("labels"), dict):
            problems.append(f"{where}.labels must be an object")
        points = row.get("points")
        if not isinstance(points, list) or not points:
            problems.append(f"{where}.points must be a non-empty list")
            continue
        for pindex, point in enumerate(points):
            # counters/gauges export [at, value]; histograms [at, count, sum]
            if (not isinstance(point, list) or len(point) not in (2, 3)
                    or not all(_number(part) for part in point)):
                problems.append(
                    f"{where}.points[{pindex}] must be an [at, value] or "
                    "[at, count, sum] row"
                )
                break
    return problems


def _validate_state(payload: dict) -> list[str]:
    problems: list[str] = []
    queues = payload.get("queues")
    if not isinstance(queues, dict) or "totals" not in queues:
        problems.append("queues must be an object with per-node rows "
                        "and 'totals'")
        queues = {}
    for node, row in queues.items():
        keys = ("queue_depth", "dead_letter_depth") if node == "totals" \
            else QUEUE_KEYS
        if not isinstance(row, dict):
            problems.append(f"queues[{node!r}] must be an object")
            continue
        for key in keys:
            if not _integer(row.get(key)) or row.get(key, 0) < 0:
                problems.append(
                    f"queues[{node!r}].{key} must be a non-negative integer"
                )
    scheduler = payload.get("scheduler")
    if not isinstance(scheduler, dict):
        problems.append("scheduler must be an object (possibly empty)")
        scheduler = {}
    for node, row in scheduler.items():
        where = f"scheduler[{node!r}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(row.get("policy"), str) or not row.get("policy"):
            problems.append(f"{where}.policy must be a non-empty string")
        tenants = row.get("tenants")
        if not isinstance(tenants, dict):
            problems.append(f"{where}.tenants must be an object")
            continue
        for key in tenants:
            if not isinstance(key, str) or not key.startswith("h:"):
                problems.append(
                    f"{where}.tenants keys must be privacy-guard hashes "
                    f"('h:…'), got {key!r}"
                )
    recorder = payload.get("recorder")
    if not isinstance(recorder, dict) or not recorder:
        problems.append("recorder must be a non-empty object")
        recorder = {}
    for node, row in recorder.items():
        where = f"recorder[{node!r}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("dropped_events", "dropped_spans"):
            if not _integer(row.get(key)) or row.get(key, 0) < 0:
                problems.append(
                    f"{where}.{key} must be a non-negative integer"
                )
    return problems


def _validate_privacy(payload: dict) -> list[str]:
    """No direct subject or tenant identifier may reach the bundle."""
    problems: list[str] = []
    serialized = json.dumps(payload, sort_keys=True)
    match = SUBJECT_ID_PATTERN.search(serialized)
    if match:
        problems.append(
            f"privacy: plaintext assisted-person id {match.group(0)!r} "
            "leaked into the incident bundle"
        )
    for fragment in TENANT_ID_FRAGMENTS:
        if fragment in serialized:
            problems.append(
                f"privacy: plaintext tenant/organization id fragment "
                f"{fragment!r} leaked into the incident bundle"
            )
    return problems


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    problems: list[str] = []
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    incident_id = payload.get("incident_id")
    if not isinstance(incident_id, str) \
            or not INCIDENT_ID_PATTERN.match(incident_id):
        problems.append("incident_id must match 'incident-NNNN'")
    if not isinstance(payload.get("source"), str):
        problems.append("source must be a string")
    if not _number(payload.get("captured_at")) \
            or payload.get("captured_at", -1) < 0:
        problems.append("captured_at must be a non-negative number")
    slo = payload.get("slo")
    if slo is not None and not isinstance(slo, dict):
        problems.append("slo must be null or the SLO report object")
    problems.extend(_validate_trigger(payload))
    problems.extend(_validate_burn_rates(payload))
    problems.extend(_validate_events(payload))
    problems.extend(_validate_spans(payload))
    problems.extend(_validate_series(payload))
    problems.extend(_validate_state(payload))
    problems.extend(_validate_privacy(payload))
    return problems


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def validate_bundle_dir(root: Path) -> list[str]:
    """Check one on-disk bundle: manifest integrity, then the payload."""
    problems: list[str] = []
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        return [f"{root}: manifest.json is missing"]
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{root}: manifest.json is not valid JSON: {exc}"]
    if manifest.get("schema") != SCHEMA_ID:
        problems.append(f"{root}: manifest schema must be {SCHEMA_ID!r}")
    files = manifest.get("files")
    if not isinstance(files, dict):
        return problems + [f"{root}: manifest.files must be an object"]
    for name in BUNDLE_FILES:
        if name not in files:
            problems.append(f"{root}: manifest does not cover {name}")
    for name, entry in files.items():
        target = root / name
        if not target.exists():
            problems.append(f"{root}: manifest lists missing file {name}")
            continue
        digest = _hash_file(target)
        if entry.get("sha256") != digest:
            problems.append(
                f"{root}/{name}: sha256 mismatch — bundle tampered or "
                "truncated"
            )
        if entry.get("size") != target.stat().st_size:
            problems.append(f"{root}/{name}: size mismatch")
    bundle_path = root / "incident.json"
    if not bundle_path.exists():
        return problems + [f"{root}: incident.json is missing"]
    try:
        payload = json.loads(bundle_path.read_text())
    except json.JSONDecodeError as exc:
        return problems + [f"{root}: incident.json is not valid JSON: {exc}"]
    problems.extend(validate(payload))
    if isinstance(payload.get("incident_id"), str) \
            and manifest.get("incident_id") != payload["incident_id"]:
        problems.append(f"{root}: manifest incident_id disagrees with bundle")
    return problems


def _collect_targets(path: Path) -> list[Path] | None:
    """Bundle directories under ``path`` (None = nothing checkable)."""
    if path.is_file():
        return None  # bare payload, handled by the caller
    if (path / "incident.json").exists() or (path / "manifest.json").exists():
        return [path]
    bundles = sorted(p for p in path.glob("incident-*") if p.is_dir())
    return bundles or []


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_incident_schema.py BUNDLE_DIR|incident.json",
              file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_incident_schema: {path} is missing", file=sys.stderr)
        return 1
    if path.is_file():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"check_incident_schema: {path} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate(payload)
        checked = 1
    else:
        targets = _collect_targets(path)
        if not targets:
            print(f"check_incident_schema: no incident bundle under {path}",
                  file=sys.stderr)
            return 1
        problems = []
        for target in targets:
            problems.extend(validate_bundle_dir(target))
        checked = len(targets)
    if problems:
        for problem in problems:
            print(f"check_incident_schema: {problem}", file=sys.stderr)
        return 1
    noun = "bundle" if checked == 1 else "bundles"
    print(f"check_incident_schema: {path} ok ({checked} {noun}, "
          "manifests verified, no identifier leaks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
