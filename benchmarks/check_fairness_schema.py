#!/usr/bin/env python
"""Schema check for ``BENCH_fairness.json`` (schema ``css-bench-fairness/1``).

CI runs ``repro sched --scenario anomaly ... --out BENCH_fairness.json``
and then this script.  Beyond shape validation it enforces the PR's
semantic gates:

* the ``fair`` arm must score strictly higher than ``none`` on Jain's
  fairness index *and* on the victim tenant's demand-satisfaction share;
* both arms must report the identical ``sha256:`` audit digest — the
  scheduler shapes shares, never decisions or the audit trail;
* **privacy**: the serialized payload must carry no plaintext
  assisted-person id (``ap-NNNNNNNN``), no plaintext tenant /
  organization id (tenant keys must be privacy-guard hashes, ``h:…``),
  and the victim/abuser references must be hashed too.

Usage::

    python benchmarks/check_fairness_schema.py BENCH_fairness.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-fairness/1"
ARMS = ("none", "fair")

#: The plaintext shape of an assisted-person identifier.
SUBJECT_ID_PATTERN = re.compile(r"\bap-\d{8}\b")

#: Plaintext fragments of deployment / roster organization ids that must
#: never appear in the shareable artifact (tenants are guard-hashed).
TENANT_ID_FRAGMENTS = (
    "Province-Trentino", "Municipality-Trento", "FamilyDoctors",
    "Hospital-S-Maria", "HomeAssist-Coop", "Org-0", "Org-1",
)

ARM_COUNTERS = (
    "published", "publish_blocked", "detail_permits", "detail_denies",
    "subscribe_ops", "throttled_total", "shed_total", "penalized_tenants",
    "audit_records",
)
ARM_RATES = (
    "jain_index", "victim_share", "victim_total_share",
    "victim_p99_wait_seconds", "victim_starvation_seconds",
    "max_starvation_seconds",
)
TENANT_RATES = (
    "weight", "share", "satisfaction", "served_work", "arrived_work",
    "max_wait_seconds", "starvation_seconds", "p99_wait_seconds",
)
TENANT_COUNTERS = ("throttled", "shed", "demotions", "recoveries")


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _integer(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_tenant(row: object, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(row, dict):
        return [f"{where} must be an object"]
    for key in TENANT_RATES:
        value = row.get(key)
        if not _number(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative number")
    for key in TENANT_COUNTERS:
        value = row.get(key)
        if not _integer(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative integer")
    if not isinstance(row.get("penalized"), bool):
        problems.append(f"{where}.penalized must be a boolean")
    return problems


def _validate_arm(arm: object, name: str) -> list[str]:
    where = f"arms.{name}"
    problems: list[str] = []
    if not isinstance(arm, dict):
        return [f"{where} must be an object"]
    if arm.get("sched") != name:
        problems.append(f"{where}.sched must be {name!r}")
    for key in ARM_COUNTERS:
        value = arm.get(key)
        if not _integer(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative integer")
    for key in ARM_RATES:
        value = arm.get(key)
        if not _number(value) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative number")
    jain = arm.get("jain_index")
    if _number(jain) and jain > 1.0 + 1e-9:
        problems.append(f"{where}.jain_index must not exceed 1.0")
    digest = arm.get("audit_digest")
    if not isinstance(digest, str) or not digest.startswith("sha256:"):
        problems.append(
            f"{where}.audit_digest must be a 'sha256:'-prefixed digest of "
            "the verified audit chain heads"
        )
    tenants = arm.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        problems.append(f"{where}.tenants must be a non-empty object")
        tenants = {}
    for key, row in tenants.items():
        if not isinstance(key, str) or not key.startswith("h:"):
            problems.append(
                f"{where}.tenants keys must be privacy-guard hashes "
                f"('h:…'), got {key!r}"
            )
        problems.extend(_validate_tenant(row, f"{where}.tenants[{key!r}]"))
    return problems


def _validate_gate(payload: dict) -> list[str]:
    """The acceptance gate: fair strictly better, decisions unchanged."""
    arms = payload.get("arms")
    if not isinstance(arms, dict):
        return []
    none_arm, fair_arm = arms.get("none"), arms.get("fair")
    if not isinstance(none_arm, dict) or not isinstance(fair_arm, dict):
        return []
    problems: list[str] = []
    if _number(none_arm.get("jain_index")) and _number(fair_arm.get("jain_index")):
        if not fair_arm["jain_index"] > none_arm["jain_index"]:
            problems.append(
                "gate: fair must score strictly higher than none on "
                "jain_index"
            )
    if _number(none_arm.get("victim_share")) and _number(fair_arm.get("victim_share")):
        if not fair_arm["victim_share"] > none_arm["victim_share"]:
            problems.append(
                "gate: fair must score strictly higher than none on "
                "victim_share"
            )
    digests = (none_arm.get("audit_digest"), fair_arm.get("audit_digest"))
    if all(isinstance(d, str) for d in digests) and digests[0] != digests[1]:
        problems.append(
            "gate: the two arms' audit digests differ — the scheduler "
            "changed decisions or the audit trail"
        )
    if payload.get("audit_digest_match") is not True:
        problems.append("audit_digest_match must be true")
    return problems


def _validate_privacy(payload: dict) -> list[str]:
    """No direct subject or tenant identifier may reach the artifact."""
    problems: list[str] = []
    serialized = json.dumps(payload, sort_keys=True)
    match = SUBJECT_ID_PATTERN.search(serialized)
    if match:
        problems.append(
            f"privacy: plaintext assisted-person id {match.group(0)!r} "
            "leaked into the fairness payload"
        )
    for fragment in TENANT_ID_FRAGMENTS:
        if fragment in serialized:
            problems.append(
                f"privacy: plaintext tenant/organization id fragment "
                f"{fragment!r} leaked into the fairness payload"
            )
    for key in ("victim_tenant", "abusive_tenant"):
        value = payload.get(key)
        if value is not None and (
            not isinstance(value, str) or not value.startswith("h:")
        ):
            problems.append(
                f"privacy: {key} must be a privacy-guard hash ('h:…')"
            )
    return problems


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    if not isinstance(payload.get("scenario"), str) or not payload.get("scenario"):
        problems.append("scenario must be a non-empty string")
    if not _integer(payload.get("seed")):
        problems.append("seed must be an integer")
    population = payload.get("population")
    if not _integer(population) or population < 1:
        problems.append("population must be a positive integer")
    ops = payload.get("ops")
    if not _integer(ops) or ops < 0:
        problems.append("ops must be a non-negative integer")
    nodes = payload.get("nodes")
    if not _integer(nodes) or nodes < 1:
        problems.append("nodes must be a positive integer")
    for key in ("drain_seconds", "service_rate"):
        value = payload.get(key)
        if not _number(value) or value <= 0:
            problems.append(f"{key} must be a positive number")

    arms = payload.get("arms")
    if not isinstance(arms, dict) or set(arms) != set(ARMS):
        problems.append("arms must be an object with exactly "
                        "'none' and 'fair'")
    else:
        for name in ARMS:
            problems.extend(_validate_arm(arms[name], name))

    improvement = payload.get("improvement")
    if not isinstance(improvement, dict) or not all(
        _number(improvement.get(key))
        for key in ("jain_index", "victim_share")
    ):
        problems.append(
            "improvement must carry numeric jain_index and victim_share"
        )

    problems.extend(_validate_gate(payload))
    problems.extend(_validate_privacy(payload))
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_fairness_schema.py BENCH_fairness.json",
              file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_fairness_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_fairness_schema: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_fairness_schema: {problem}", file=sys.stderr)
        return 1
    improvement = payload["improvement"]
    print(f"check_fairness_schema: {path} ok (jain "
          f"+{improvement['jain_index']:.4f}, victim share "
          f"+{improvement['victim_share']:.4f}, digests match)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
