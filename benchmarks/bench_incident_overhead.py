#!/usr/bin/env python
"""Flight-recorder overhead benchmark: recorder off vs recorder on.

Runs the abusive-tenant ``anomaly`` workload twice through the same
seeded federation — once with ``recorder="noop"`` (no rings, no
time-series store, no watchdogs) and once fully watched
(``recorder="ring"``: rings recording every span and bus/scheduler
event, the time-series store ticking, the SLO engine evaluating burn
windows, the incident monitor polling) — and emits the
``css-bench-incident/1`` payload.

Two gates, both enforced by exit code:

* **overhead**: the watched arm's best-of-N wall time must stay within
  ``--max-overhead-pct`` (default 5 %) of the baseline's.  Reps are
  interleaved (noop, ring, noop, ring, …) and each arm keeps its
  minimum, so machine noise hits both arms alike;
* **observer effect**: both arms must report bit-for-bit identical
  simulated outcomes (published / blocked / permits / denies /
  subscribes and the simulated clock) — observability must never change
  a decision;

and the watched arm must actually capture an incident, otherwise the
overhead figure measured nothing interesting.  Usage::

    PYTHONPATH=src python benchmarks/bench_incident_overhead.py \
        --scenario anomaly --reps 3 --out BENCH_incident.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.workload.config import workload_config  # noqa: E402
from repro.workload.incidents import run_incident_capture  # noqa: E402

#: Schema identifier the overhead payload stamps and CI gates on.
SCHEMA_ID = "css-bench-incident/1"

#: The simulated outcomes both arms must reproduce identically.
OUTCOME_KEYS = (
    "published", "publish_blocked", "detail_permits", "detail_denies",
    "subscribe_ops", "simulated_seconds",
)


def run_overhead(
    workload,
    nodes: int | None = None,
    reps: int = 3,
    source: str = "benchmarks/bench_incident_overhead.py",
) -> dict:
    """Interleaved best-of-``reps`` wall-time comparison of the two arms."""
    kwargs: dict[str, object] = {}
    if nodes is not None:
        kwargs["nodes"] = nodes
    best: dict[str, float] = {}
    payloads: dict[str, dict] = {}
    # One discarded warmup run so import costs, allocator growth and
    # branch-predictor warmup land on neither measured arm.
    run_incident_capture(workload, recorder="noop", source=source, **kwargs)
    for _ in range(reps):
        for arm in ("noop", "ring"):
            started = time.perf_counter()
            payload = run_incident_capture(
                workload, recorder=arm, source=source, **kwargs
            )
            elapsed = time.perf_counter() - started
            if arm not in best or elapsed < best[arm]:
                best[arm] = elapsed
            previous = payloads.setdefault(arm, payload)
            for key in OUTCOME_KEYS:
                if previous[key] != payload[key]:
                    raise AssertionError(
                        f"{arm} arm not deterministic: {key} changed "
                        f"between reps ({previous[key]!r} vs {payload[key]!r})"
                    )
    noop, ring = payloads["noop"], payloads["ring"]
    overhead_pct = (best["ring"] - best["noop"]) / best["noop"] * 100.0
    arms = {}
    for arm, payload in (("noop", noop), ("ring", ring)):
        sim = payload["simulated_seconds"] or 1e-9
        arms[arm] = {
            "recorder": arm,
            **{key: payload[key] for key in OUTCOME_KEYS},
            "wall_seconds": best[arm],
            "wall_ops_per_second": payload["ops"] / best[arm],
            "sim_events_per_second": payload["published"] / sim,
            "ticks": payload["ticks"],
            "timeline_rows": len(payload["timeline"]),
            "incidents": len(payload["incidents"]),
        }
    incident = ring["incidents"][0] if ring["incidents"] else None
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "scenario": workload.scenario,
        "seed": workload.seed,
        "population": workload.population,
        "ops": workload.ops,
        "nodes": nodes if nodes is not None else noop["nodes"],
        "reps": reps,
        "arms": arms,
        "overhead_pct": overhead_pct,
        "trigger": incident["trigger"] if incident else None,
    }


def overhead_gate(payload: dict, max_overhead_pct: float) -> list[str]:
    """The acceptance gate; every problem as a human-readable string."""
    problems: list[str] = []
    noop, ring = payload["arms"]["noop"], payload["arms"]["ring"]
    if payload["overhead_pct"] > max_overhead_pct:
        problems.append(
            f"recorder overhead {payload['overhead_pct']:.2f}% exceeds "
            f"the {max_overhead_pct:.1f}% budget "
            f"(noop {noop['wall_seconds']:.3f}s vs "
            f"ring {ring['wall_seconds']:.3f}s)"
        )
    for key in OUTCOME_KEYS:
        if noop[key] != ring[key]:
            problems.append(
                f"observer effect: {key} differs between arms "
                f"({noop[key]!r} vs {ring[key]!r})"
            )
    if ring["incidents"] < 1:
        problems.append(
            "the watched arm captured no incident — the overhead figure "
            "measured an idle recorder"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="anomaly",
                        help="workload scenario preset (default: anomaly)")
    parser.add_argument("--population", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=5000)
    parser.add_argument("--nodes", type=int, default=None,
                        help="federation size (default 2)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved repetitions per arm (default 3; "
                             "each arm keeps its best wall time)")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="wall-time overhead budget of the watched arm "
                             "(default 5.0)")
    parser.add_argument("--out", default=None,
                        help="write the css-bench-incident/1 payload here")
    args = parser.parse_args(argv)

    overrides: dict[str, object] = {
        "population": args.population, "ops": args.ops,
    }
    if args.seed is not None:
        overrides["seed"] = args.seed
    workload = workload_config(args.scenario, **overrides)

    payload = run_overhead(workload, nodes=args.nodes, reps=args.reps)

    noop, ring = payload["arms"]["noop"], payload["arms"]["ring"]
    print(f"recorder overhead ({args.scenario}, {args.ops} ops, "
          f"{payload['nodes']} nodes, seed {workload.seed}, "
          f"best of {args.reps}):")
    for arm, point in (("noop", noop), ("ring", ring)):
        print(f"  {arm:>5}  wall={point['wall_seconds']:>7.3f}s  "
              f"ops/s={point['wall_ops_per_second']:>8.1f}  "
              f"ticks={point['ticks']:>4}  incidents={point['incidents']}")
    print(f"  overhead {payload['overhead_pct']:+.2f}% "
          f"(budget {args.max_overhead_pct:.1f}%)")
    if payload["trigger"] is not None:
        print(f"  trigger {payload['trigger']['kind']} "
              f"at t={payload['trigger']['at']:.3f}s")

    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")

    problems = overhead_gate(payload, args.max_overhead_pct)
    if problems:
        for problem in problems:
            print(f"bench_incident_overhead: {problem}", file=sys.stderr)
        return 1
    print("recorder stays inside the overhead budget; decisions unchanged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
