#!/usr/bin/env python
"""Storage-engine benchmark: jsonl baseline vs the segmented engine.

Extends ``bench_storage_archive.py`` (platform snapshot figures) down to
the raw durable-log layer: for each point size this script measures, per
store kind,

* **ingest rate** — batched appends into a fresh log (events/second);
* **recovery time** — closing and reopening the log (torn-tail scan,
  sparse-index rebuild) plus one full streaming iteration;
* **recovery peak memory** — ``tracemalloc`` peak during that replay,
  which must stay bounded (streaming readers, never ``read_all()``);
* **on-disk size** — before and, for the segmented kind, after
  compaction of a workload where most records supersede earlier ones.

A final equivalence section reruns one small scenario on both store
kinds and asserts byte-identical audit trails — the same invariant the
unit suite pins, kept visible in the benchmark payload.

Output (``--out BENCH_storage.json``) follows schema
``css-bench-storage/1`` and is validated by ``check_storage_schema.py``
in CI.  ``--quick`` benches the 10k point only; the full run adds 100k.

Usage::

    python benchmarks/bench_storage_engine.py --quick --out BENCH_storage.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
import tracemalloc
from pathlib import Path

SCHEMA_ID = "css-bench-storage/1"
QUICK_POINTS = (10_000,)
FULL_POINTS = (10_000, 100_000)
BATCH = 500
#: Distinct object ids in the ingest workload — every later record for an
#: object supersedes the earlier ones, so compaction has space to reclaim.
DISTINCT_OBJECTS = 200


def _record(i: int) -> dict:
    return {
        "object_id": f"ev-{i % DISTINCT_OBJECTS:06d}",
        "object_type": "ExtrinsicObject",
        "status": "submitted",
        "name": f"notification {i}",
        "slots": {"eventType": [f"type-{i % 7}"], "sealed": ["0" * 64]},
        "sequence": i + 1,
    }


def _ingest(log, n_events: int) -> float:
    started = time.perf_counter()
    batch: list[dict] = []
    for i in range(n_events):
        batch.append(_record(i))
        if len(batch) >= BATCH:
            log.append_many(batch)
            batch = []
    if batch:
        log.append_many(batch)
    return time.perf_counter() - started


def _replay(open_log) -> tuple[float, int, int]:
    """(seconds, peak KiB, records) for reopening and streaming a log."""
    tracemalloc.start()
    started = time.perf_counter()
    log = open_log()
    records = sum(1 for _ in log.iter_records())
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak // 1024, records


def _dir_size(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def _bench_point(base: Path, n_events: int) -> dict:
    from repro.storage import JsonlRecordLog, SegmentedLog, StorageEngine

    point: dict = {"events": n_events, "kinds": {}}

    jsonl_dir = base / f"jsonl-{n_events}"
    jsonl_dir.mkdir(parents=True)
    jsonl_path = jsonl_dir / "index.jsonl"
    ingest_s = _ingest(JsonlRecordLog(jsonl_path), n_events)
    recovery_s, peak_kb, records = _replay(lambda: JsonlRecordLog(jsonl_path))
    assert records == n_events
    point["kinds"]["jsonl"] = {
        "ingest_events_per_second": n_events / ingest_s,
        "recovery_seconds": recovery_s,
        "recovery_peak_kb": peak_kb,
        "size_bytes": _dir_size(jsonl_dir),
    }

    seg_dir = base / f"segmented-{n_events}"
    engine = StorageEngine(seg_dir)
    ingest_s = _ingest(engine.log("index"), n_events)
    recovery_s, peak_kb, records = _replay(
        lambda: SegmentedLog(seg_dir / "index"))
    assert records == n_events
    size_before = _dir_size(seg_dir)
    report = StorageEngine(seg_dir).compact("index")
    point["kinds"]["segmented"] = {
        "ingest_events_per_second": n_events / ingest_s,
        "recovery_seconds": recovery_s,
        "recovery_peak_kb": peak_kb,
        "size_bytes": size_before,
        "post_compaction_bytes": _dir_size(seg_dir),
        "segments": report.segments_before,
    }
    point["compaction"] = {
        "records_before": report.records_before,
        "records_after": report.records_after,
        "bytes_reclaimed": report.bytes_reclaimed,
    }
    return point


def _equivalence(base: Path) -> dict:
    from repro.runtime.kernel import RuntimeConfig
    from repro.sim.scenario import CssScenario, ScenarioConfig

    heads = {}
    records = 0
    for store in ("jsonl", "segmented"):
        runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                store=store, data_dir=base / f"equiv-{store}")
        scenario = CssScenario(ScenarioConfig(
            n_patients=10, n_events=60, seed=5, runtime=runtime))
        scenario.run(scenario.generate_workload())
        heads[store] = scenario.controller.audit_log.head_digest
        records = len(scenario.controller.audit_log)
    return {
        "identical": heads["jsonl"] == heads["segmented"],
        "audit_records": records,
    }


def run_suite(workdir: Path, quick: bool, source: str) -> dict:
    points = [
        _bench_point(workdir, n)
        for n in (QUICK_POINTS if quick else FULL_POINTS)
    ]
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "quick": quick,
        "points": points,
        "equivalence": _equivalence(workdir),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="bench the 10k point only (CI-sized)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the css-bench-storage/1 payload to FILE")
    parser.add_argument("--workdir", metavar="DIR",
                        help="scratch directory (default: a temp dir, removed "
                             "afterwards)")
    args = parser.parse_args(argv)

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        import tempfile

        workdir = Path(tempfile.mkdtemp(prefix="bench-storage-"))
        cleanup = True
    try:
        payload = run_suite(
            workdir, quick=args.quick,
            source="bench_storage_engine.py "
                   + ("--quick" if args.quick else "--full"),
        )
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)

    for point in payload["points"]:
        for kind, entry in point["kinds"].items():
            line = (f"{point['events']:>7} events  {kind:<9} "
                    f"ingest {entry['ingest_events_per_second']:>9.0f} ev/s  "
                    f"recovery {entry['recovery_seconds'] * 1000:>7.1f} ms "
                    f"(peak {entry['recovery_peak_kb']} KiB)  "
                    f"size {entry['size_bytes']}")
            if "post_compaction_bytes" in entry:
                line += f" -> {entry['post_compaction_bytes']} compacted"
            print(line)
    equivalence = payload["equivalence"]
    print(f"equivalence: identical={equivalence['identical']} "
          f"({equivalence['audit_records']} audit records)")
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0 if equivalence["identical"] else 1


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
