"""Unit tests for the Policy Decision Point (combining algorithms, obligations)."""

import pytest

from repro.xacml.context import Decision, RequestContext
from repro.xacml.model import (
    OBLIGATION_RELEASE_FIELDS,
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    PolicySet,
    Rule,
    Target,
)
from repro.xacml.pdp import PolicyDecisionPoint


def role_match(role: str) -> Match:
    return Match("subject:role", "string-equal", role)


def permit_rule(rule_id: str = "permit", role: str | None = None) -> Rule:
    target = Target(all_of=(role_match(role),)) if role else Target()
    return Rule(rule_id=rule_id, effect=Effect.PERMIT, target=target)


def deny_rule(rule_id: str = "deny", role: str | None = None) -> Rule:
    target = Target(all_of=(role_match(role),)) if role else Target()
    return Rule(rule_id=rule_id, effect=Effect.DENY, target=target)


def ctx(role: str = "doctor") -> RequestContext:
    return RequestContext.build(subject__role=role)


@pytest.fixture()
def pdp() -> PolicyDecisionPoint:
    return PolicyDecisionPoint()


class TestPolicyEvaluation:
    def test_not_applicable_when_target_misses(self, pdp):
        policy = Policy("p", Target(all_of=(role_match("nurse"),)), (permit_rule(),))
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.NOT_APPLICABLE

    def test_not_applicable_when_no_rule_applies(self, pdp):
        policy = Policy("p", Target(), (permit_rule(role="nurse"),))
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.NOT_APPLICABLE

    def test_permit_when_rule_applies(self, pdp):
        policy = Policy("p", Target(), (permit_rule(role="doctor"),))
        response = pdp.evaluate_policy(policy, ctx("doctor"))
        assert response.decision is Decision.PERMIT
        assert response.permitted

    def test_deny_overrides_beats_permit(self, pdp):
        policy = Policy(
            "p", Target(),
            (permit_rule("r1", "doctor"), deny_rule("r2", "doctor")),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.DENY

    def test_permit_overrides_beats_deny(self, pdp):
        policy = Policy(
            "p", Target(),
            (deny_rule("r1", "doctor"), permit_rule("r2", "doctor")),
            combining=CombiningAlgorithm.PERMIT_OVERRIDES,
        )
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.PERMIT

    def test_first_applicable_takes_first(self, pdp):
        policy = Policy(
            "p", Target(),
            (deny_rule("r1", "doctor"), permit_rule("r2", "doctor")),
            combining=CombiningAlgorithm.FIRST_APPLICABLE,
        )
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.DENY

    def test_first_applicable_skips_inapplicable(self, pdp):
        policy = Policy(
            "p", Target(),
            (deny_rule("r1", "nurse"), permit_rule("r2", "doctor")),
            combining=CombiningAlgorithm.FIRST_APPLICABLE,
        )
        assert pdp.evaluate_policy(policy, ctx("doctor")).decision is Decision.PERMIT

    def test_permit_obligations_attached_on_permit(self, pdp):
        obligation = Obligation(
            OBLIGATION_RELEASE_FIELDS, Effect.PERMIT,
            assignments=(("field", "a"), ("field", "b")),
        )
        policy = Policy("p", Target(), (permit_rule(role="doctor"),),
                        obligations=(obligation,))
        response = pdp.evaluate_policy(policy, ctx("doctor"))
        assert len(response.obligations) == 1
        outcome = response.obligations[0]
        assert outcome.obligation_id == OBLIGATION_RELEASE_FIELDS
        assert outcome.assignment("field") == ("a", "b")

    def test_permit_obligations_not_attached_on_deny(self, pdp):
        obligation = Obligation(OBLIGATION_RELEASE_FIELDS, Effect.PERMIT)
        policy = Policy("p", Target(), (deny_rule(role="doctor"),),
                        obligations=(obligation,))
        response = pdp.evaluate_policy(policy, ctx("doctor"))
        assert response.decision is Decision.DENY
        assert response.obligations == []

    def test_stats_count_evaluations(self, pdp):
        policy = Policy("p", Target(), (permit_rule(role="doctor"),))
        pdp.evaluate_policy(policy, ctx())
        assert pdp.stats.requests == 1
        assert pdp.stats.policies_evaluated == 1
        assert pdp.stats.rules_evaluated == 1


class TestPolicySetEvaluation:
    def test_empty_set_not_applicable(self, pdp):
        policy_set = PolicySet("ps", ())
        assert pdp.evaluate_policy_set(policy_set, ctx()).decision is Decision.NOT_APPLICABLE

    def test_set_target_gates_everything(self, pdp):
        policy = Policy("p", Target(), (permit_rule(),))
        policy_set = PolicySet("ps", (policy,), target=Target(all_of=(role_match("nurse"),)))
        assert pdp.evaluate_policy_set(policy_set, ctx("doctor")).decision is Decision.NOT_APPLICABLE

    def test_permit_overrides_across_policies(self, pdp):
        denying = Policy("p1", Target(), (deny_rule(role="doctor"),))
        permitting = Policy("p2", Target(), (permit_rule(role="doctor"),))
        policy_set = PolicySet("ps", (denying, permitting),
                               combining=CombiningAlgorithm.PERMIT_OVERRIDES)
        assert pdp.evaluate_policy_set(policy_set, ctx()).decision is Decision.PERMIT

    def test_deny_overrides_across_policies(self, pdp):
        denying = Policy("p1", Target(), (deny_rule(role="doctor"),))
        permitting = Policy("p2", Target(), (permit_rule(role="doctor"),))
        policy_set = PolicySet("ps", (permitting, denying),
                               combining=CombiningAlgorithm.DENY_OVERRIDES)
        assert pdp.evaluate_policy_set(policy_set, ctx()).decision is Decision.DENY

    def test_obligations_come_from_deciding_policies_only(self, pdp):
        ob_a = Obligation("ob-a", Effect.PERMIT)
        ob_b = Obligation("ob-b", Effect.PERMIT)
        permitting_a = Policy("p1", Target(), (permit_rule(role="doctor"),),
                              obligations=(ob_a,))
        inapplicable = Policy("p2", Target(all_of=(role_match("nurse"),)),
                              (permit_rule("r2"),), obligations=(ob_b,))
        policy_set = PolicySet("ps", (permitting_a, inapplicable),
                               combining=CombiningAlgorithm.PERMIT_OVERRIDES)
        response = pdp.evaluate_policy_set(policy_set, ctx())
        assert [o.obligation_id for o in response.obligations] == ["ob-a"]

    def test_multiple_permitting_policies_merge_obligations(self, pdp):
        ob_a = Obligation("ob-a", Effect.PERMIT)
        ob_b = Obligation("ob-b", Effect.PERMIT)
        pol_a = Policy("p1", Target(), (permit_rule("ra", "doctor"),), obligations=(ob_a,))
        pol_b = Policy("p2", Target(), (permit_rule("rb", "doctor"),), obligations=(ob_b,))
        # deny-overrides does not short-circuit on permit, so both policies run.
        policy_set = PolicySet("ps", (pol_a, pol_b),
                               combining=CombiningAlgorithm.DENY_OVERRIDES)
        response = pdp.evaluate_policy_set(policy_set, ctx())
        assert response.decision is Decision.PERMIT
        assert {o.obligation_id for o in response.obligations} == {"ob-a", "ob-b"}

    def test_first_applicable_set(self, pdp):
        denying = Policy("p1", Target(), (deny_rule(role="doctor"),))
        permitting = Policy("p2", Target(), (permit_rule(role="doctor"),))
        policy_set = PolicySet("ps", (denying, permitting),
                               combining=CombiningAlgorithm.FIRST_APPLICABLE)
        assert pdp.evaluate_policy_set(policy_set, ctx()).decision is Decision.DENY
