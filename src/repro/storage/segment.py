"""Size-segmented append logs with checksummed commit framing.

One :class:`SegmentedLog` is a directory of segment files.  Every record
is one framed line::

    <crc32:08x> <sequence> <canonical-json>\n

The CRC covers ``"<sequence> <json>"``, so the trailing newline acts as
the commit point of a write-ahead discipline: a record is committed iff
its full frame (checksum verified) reached the file.  On replay the log
distinguishes the two failure modes a real engine must separate:

* a **torn tail** — the *final* frame of the *final* segment is partial
  or fails its checksum (the process died mid-write).  The tail is
  truncated away and replay continues; the log reports how many bytes it
  repaired;
* **corruption** — any earlier frame is damaged.  That is not a crash
  artifact but tampering or media failure, and replay raises
  :class:`~repro.exceptions.CorruptRecordError`.

Segments roll over once the active file exceeds ``segment_bytes``; each
file is named after the first sequence number it holds.  Replay builds a
**sparse offset index** (every ``sparse_every``-th record plus each
segment head), so :meth:`iter_entries` can seek near any sequence number
without scanning from the start, and memory stays proportional to
``records / sparse_every`` — never to the log itself.

Sequence numbers are assigned at append time, survive compaction (which
may leave gaps) and are the coordinates of point-in-time recovery
(:meth:`truncate_to`).  A tiny ``meta.json`` sidecar pins the high-water
sequence so compacting away the newest record can never rewind the
counter and reuse a sequence number.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.exceptions import CorruptRecordError, RecoveryError, StorageError

#: Default rollover threshold for one segment file.
DEFAULT_SEGMENT_BYTES = 256 * 1024
#: Default sparse-index stride (one offset kept every N records).
DEFAULT_SPARSE_EVERY = 64

#: Segment file suffix.
SEGMENT_SUFFIX = ".seg"
#: Sidecar pinning the high-water sequence across compactions.
META_FILE = "meta.json"


def encode_frame(sequence: int, record: dict) -> bytes:
    """The on-disk frame of one committed record."""
    payload = json.dumps(record, sort_keys=True, default=str)
    body = f"{sequence} {payload}"
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def decode_frame(line: bytes) -> tuple[int, dict]:
    """Parse one frame (without trailing newline); raises ``ValueError``."""
    text = line.decode("utf-8")
    crc_hex, _, body = text.partition(" ")
    if len(crc_hex) != 8 or not body:
        raise ValueError("malformed frame header")
    if int(crc_hex, 16) != zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF:
        raise ValueError("checksum mismatch")
    seq_text, _, payload = body.partition(" ")
    return int(seq_text), json.loads(payload)


def segment_name(first_sequence: int) -> str:
    """Segment filename for the segment opening at ``first_sequence``."""
    return f"{first_sequence:012d}{SEGMENT_SUFFIX}"


@dataclass(frozen=True)
class SegmentInfo:
    """One segment file's vital statistics."""

    path: Path
    first_sequence: int
    records: int
    size_bytes: int


@dataclass(frozen=True)
class ReplayReport:
    """What one replay (log open) found on disk."""

    records: int
    segments: int
    truncated_bytes: int  # torn tail repaired, 0 on a clean shutdown
    sequence: int


class SegmentedLog:
    """A size-segmented, checksum-framed, crash-recoverable append log."""

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sparse_every: int = DEFAULT_SPARSE_EVERY,
    ) -> None:
        if segment_bytes < 1 or sparse_every < 1:
            raise StorageError("segment_bytes and sparse_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.sparse_every = sparse_every
        self._sequence = 0
        self._records = 0
        #: Sparse index: (sequence, segment path, byte offset), ascending.
        self._sparse: list[tuple[int, Path, int]] = []
        self._active: Path | None = None
        self._active_size = 0
        self.last_replay = self._replay()

    # -- replay / recovery -------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob(f"*{SEGMENT_SUFFIX}"))

    def _replay(self) -> ReplayReport:
        """Stream every segment, repair a torn tail, build the sparse index."""
        self._sequence = self._read_meta()
        self._records = 0
        self._sparse = []
        truncated = 0
        paths = self._segment_paths()
        for position, path in enumerate(paths):
            last_segment = position == len(paths) - 1
            truncated += self._replay_segment(path, repair_tail=last_segment)
        if paths:
            self._active = paths[-1]
            self._active_size = self._active.stat().st_size
        else:
            self._active = None
            self._active_size = 0
        return ReplayReport(
            records=self._records, segments=len(paths),
            truncated_bytes=truncated, sequence=self._sequence,
        )

    def _replay_segment(self, path: Path, repair_tail: bool) -> int:
        """Validate one segment; returns torn-tail bytes truncated away."""
        file_size = path.stat().st_size
        with path.open("rb") as handle:
            offset = 0
            first_in_segment = True
            for raw in handle:
                line_start = offset
                offset += len(raw)
                torn = not raw.endswith(b"\n")
                if not torn:
                    try:
                        sequence, _ = decode_frame(raw[:-1])
                    except (ValueError, json.JSONDecodeError):
                        torn = True
                        sequence = -1
                if torn:
                    if repair_tail and offset >= file_size:
                        # The interrupted final write: cut it off and go on.
                        with path.open("rb+") as repair:
                            repair.truncate(line_start)
                        return file_size - line_start
                    raise CorruptRecordError(
                        f"{path}: damaged frame at byte {line_start} is not "
                        f"a torn tail — refusing to replay a corrupt segment"
                    )
                self._note_record(sequence, path, line_start,
                                  force=first_in_segment)
                first_in_segment = False
        return 0

    def _note_record(self, sequence: int, path: Path, offset: int,
                     force: bool = False) -> None:
        self._records += 1
        self._sequence = max(self._sequence, sequence)
        if force or self._records % self.sparse_every == 1 \
                or self.sparse_every == 1:
            self._sparse.append((sequence, path, offset))

    def _read_meta(self) -> int:
        meta_path = self.directory / META_FILE
        if not meta_path.exists():
            return 0
        try:
            return int(json.loads(meta_path.read_text())["sequence"])
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            raise StorageError(f"{meta_path}: unreadable log metadata") from exc

    def _write_meta(self, sequence: int) -> None:
        (self.directory / META_FILE).write_text(
            json.dumps({"sequence": sequence}))

    def reload(self) -> ReplayReport:
        """Re-open the log from disk (after compaction or external edits)."""
        self.last_replay = self._replay()
        return self.last_replay

    # -- append ------------------------------------------------------------

    @property
    def sequence(self) -> int:
        """The high-water committed sequence number."""
        return self._sequence

    def __len__(self) -> int:
        return self._records

    def append(self, record: dict) -> int:
        """Commit one record; returns its sequence number."""
        sequence = self._sequence + 1
        self._write_frames([(sequence, encode_frame(sequence, record))])
        return sequence

    def append_many(self, records: list[dict]) -> tuple[int, int] | None:
        """Commit several records in one write; returns the sequence range.

        The group-commit primitive: every frame is encoded up front and
        written through one file handle (rolling to fresh segments
        mid-batch exactly as per-record appends would), so the on-disk
        layout is identical to ``len(records)`` single appends.  Returns
        ``(first, last)`` — the sequence numbers assigned to the first and
        last record, mirroring :meth:`append` — or ``None`` for an empty
        batch.
        """
        frames = []
        sequence = self._sequence
        for record in records:
            sequence += 1
            frames.append((sequence, encode_frame(sequence, record)))
        if not frames:
            return None
        self._write_frames(frames)
        return frames[0][0], frames[-1][0]

    def _write_frames(self, frames: list[tuple[int, bytes]]) -> None:
        """Append frames to the active segment, rolling over as it fills."""
        handle = None
        try:
            for sequence, frame in frames:
                if self._active is None \
                        or self._active_size >= self.segment_bytes:
                    if handle is not None:
                        handle.close()
                        handle = None
                    self._active = self.directory / segment_name(sequence)
                    self._active_size = 0
                if handle is None:
                    handle = self._active.open("ab")
                offset = self._active_size
                handle.write(frame)
                self._active_size = offset + len(frame)
                self._note_record(sequence, self._active, offset,
                                  force=offset == 0)
        finally:
            if handle is not None:
                handle.close()

    # -- reading -----------------------------------------------------------

    def iter_entries(self, start: int = 1) -> Iterator[tuple[int, dict]]:
        """Stream ``(sequence, record)`` pairs with ``sequence >= start``.

        Seeks via the sparse index: at most ``sparse_every`` records are
        scanned before the first hit, regardless of log size.
        """
        paths = self._segment_paths()
        if not paths:
            return
        seek_path, seek_offset = paths[0], 0
        for sequence, path, offset in self._sparse:
            if sequence <= start:
                seek_path, seek_offset = path, offset
            else:
                break
        try:
            begin = paths.index(seek_path)
        except ValueError:  # sparse entry for a compacted-away file
            begin, seek_offset = 0, 0
        for position in range(begin, len(paths)):
            path = paths[position]
            offset = seek_offset if position == begin else 0
            with path.open("rb") as handle:
                handle.seek(offset)
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        return  # a torn tail appeared after open; stop cleanly
                    try:
                        sequence, record = decode_frame(raw[:-1])
                    except (ValueError, json.JSONDecodeError) as exc:
                        raise CorruptRecordError(
                            f"{path}: damaged frame while streaming"
                        ) from exc
                    if sequence >= start:
                        yield sequence, record

    def iter_records(self, start: int = 1) -> Iterator[dict]:
        """Stream records only (the :class:`RecordLog` read surface)."""
        for _, record in self.iter_entries(start):
            yield record

    def read_all(self) -> list[dict]:
        """Every record, oldest first (tests and small tools only)."""
        return list(self.iter_records())

    def segments(self) -> list[SegmentInfo]:
        """Per-segment statistics, oldest first."""
        infos: list[SegmentInfo] = []
        for path in self._segment_paths():
            records = 0
            first_sequence = 0
            with path.open("rb") as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break
                    sequence, _ = decode_frame(raw[:-1])
                    if records == 0:
                        first_sequence = sequence
                    records += 1
            infos.append(SegmentInfo(
                path=path, first_sequence=first_sequence,
                records=records, size_bytes=path.stat().st_size,
            ))
        return infos

    def size_bytes(self) -> int:
        """Total bytes across all segment files."""
        return sum(path.stat().st_size for path in self._segment_paths())

    # -- point-in-time recovery --------------------------------------------

    def truncate_to(self, sequence: int) -> int:
        """Drop every record with a sequence number above ``sequence``.

        The point-in-time recovery primitive: after ``truncate_to(n)`` the
        log replays exactly the records committed up to sequence ``n``,
        and the next append is assigned ``n + 1``.  Returns the number of
        records dropped.  Raises :class:`~repro.exceptions.RecoveryError`
        for a negative target (0 empties the log).
        """
        if sequence < 0:
            raise RecoveryError(f"cannot recover to sequence {sequence}")
        if sequence >= self._sequence:
            return 0  # nothing above the target is committed
        dropped = 0
        for path in reversed(self._segment_paths()):
            keep_until = None  # byte offset after the last kept frame
            seen_any = False
            with path.open("rb") as handle:
                offset = 0
                for raw in handle:
                    line_start = offset
                    offset += len(raw)
                    if not raw.endswith(b"\n"):
                        break
                    frame_sequence, _ = decode_frame(raw[:-1])
                    seen_any = True
                    if frame_sequence <= sequence:
                        keep_until = offset
                    else:
                        dropped += 1
            if keep_until is None:
                if seen_any or path.stat().st_size == 0:
                    path.unlink()
                continue
            if keep_until < path.stat().st_size:
                with path.open("rb+") as handle:
                    handle.truncate(keep_until)
        self._write_meta(sequence)
        self.reload()
        return dropped

    # -- compaction support -------------------------------------------------

    def swap_segments(self, staged: list[Path], sequence: int) -> None:
        """Atomically replace all segments with ``staged`` files.

        The compactor stages fully-written replacement segments, then this
        swap unlinks the old generation and moves the new one in.  The
        high-water ``sequence`` is pinned in the meta sidecar so the
        counter survives even if the newest records were compacted away.
        """
        for path in self._segment_paths():
            path.unlink()
        for path in staged:
            path.rename(self.directory / path.name)
        self._write_meta(sequence)
        self.reload()
