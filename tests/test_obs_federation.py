"""Acceptance tests for federation-wide observability.

The tentpole invariants:

1. a 2-node federated scenario stitches ONE distributed trace per
   cross-node request-for-details, with the remote spans — link hop,
   home-node server span, the home PDP pipeline — parented under the
   consumer-side root span;
2. stitched traces and metric exports are byte-identical across two
   same-seed runs (telemetry is a pure function of seed + workload);
3. under a scripted-drop link the SLO engine deterministically reports
   the ``link-delivery`` objective in breach and publishes alerts that
   carry only metric vocabulary.
"""

from __future__ import annotations

import json

from repro.federation.scenario import FederatedScenario, FederatedScenarioConfig
from repro.obs.slo import SLO_ALERT_TOPIC
from repro.obs.stitch import stitch_summary, stitched_lines
from tests.conftest import build_federation


def run_traced(seed: int = 7, nodes: int = 2, events: int = 40):
    scenario = FederatedScenario(FederatedScenarioConfig(
        nodes=nodes, n_events=events, n_patients=8, seed=seed,
        per_node_telemetry=True, telemetry_guard="hash",
    ))
    scenario.run()
    return scenario


class TestStitchedRequestTraces:
    def test_remote_details_stitch_under_the_consumer_side_root(self):
        deployment = build_federation(per_node_telemetry=True)
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notification = deployment.publish_blood_test()
        platform.dispatch_all()
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest", notification.event_id,
            "healthcare-treatment",
        )

        traces = platform.stitched_trace()
        details = [t for t in traces
                   if t.root and t.root["name"] == "federation.request_details"]
        assert len(details) == 1  # ONE trace for the one remote request
        trace = details[0]
        assert trace.is_cross_node and len(trace.sites) == 2
        assert trace.orphan_spans() == ()

        by_id = {span["span_id"]: span for span in trace.spans}
        root = trace.root
        link = trace.span_named("link.call")
        server = trace.span_named("federation.details.get")
        pipeline = trace.span_named("pipeline.request-details")
        decide = trace.span_named("stage.decide")
        assert link["parent_id"] == root["span_id"]
        assert server["parent_id"] == link["span_id"]
        # The server side runs on the OTHER node: different site prefix.
        assert server["span_id"].split("/")[0] != root["span_id"].split("/")[0]
        # The home node's enforcement pipeline hangs under its server span.
        assert pipeline["parent_id"] == server["span_id"]
        ancestor = decide
        seen = set()
        while ancestor["parent_id"] is not None:
            assert ancestor["span_id"] not in seen
            seen.add(ancestor["span_id"])
            ancestor = by_id[ancestor["parent_id"]]
        assert ancestor["span_id"] == root["span_id"]

    def test_every_cross_node_span_is_parented(self):
        scenario = run_traced()
        traces = scenario.platform.stitched_trace()
        summary = stitch_summary(traces)
        assert summary["cross_node_traces"] > 0
        assert summary["orphan_spans"] == 0

    def test_one_stitched_trace_per_remote_request(self):
        scenario = run_traced()
        traces = scenario.platform.stitched_trace()
        detail_roots = [
            t for t in traces
            if t.root and t.root["name"] == "federation.request_details"
        ]
        # Every remote request produced exactly one trace, and each holds
        # exactly one home-side enforcement pipeline.
        assert detail_roots
        for trace in detail_roots:
            pipelines = [s for s in trace.spans
                         if s["name"] == "pipeline.request-details"]
            assert len(pipelines) == 1
            assert trace.is_cross_node


class TestFederatedDeterminism:
    def test_same_seed_runs_stitch_byte_identically(self):
        first = stitched_lines(run_traced(seed=11).platform.stitched_trace())
        second = stitched_lines(run_traced(seed=11).platform.stitched_trace())
        assert first == second
        assert first  # non-trivial surface

    def test_same_seed_runs_export_identical_metrics(self):
        def metric_lines(seed: int):
            scenario = run_traced(seed=seed)
            return [
                line
                for node_id in sorted(scenario.platform.node_telemetry)
                for line in scenario.platform
                .node_telemetry[node_id].metrics_export()
            ]

        first = metric_lines(13)
        second = metric_lines(13)
        assert first == second
        # Exported labels are in sorted key order everywhere.
        for line in first:
            labels = json.loads(line).get("labels", {})
            assert list(labels) == sorted(labels)

    def test_different_seeds_diverge(self):
        first = stitched_lines(run_traced(seed=11).platform.stitched_trace())
        second = stitched_lines(run_traced(seed=12).platform.stitched_trace())
        assert first != second


class TestScenarioSLO:
    def make_scenario(self, drops: int = 2):
        return FederatedScenario(FederatedScenarioConfig(
            nodes=2, n_events=80, n_patients=12, seed=5,
            telemetry_guard="hash", scripted_drops=drops,
        ))

    def test_scripted_drops_breach_link_delivery_deterministically(self):
        def payload():
            scenario = self.make_scenario()
            scenario.run()
            return scenario.slo_report(alert=False).to_payload()

        first = payload()
        assert first == payload()
        by_name = {row["name"]: row for row in first["objectives"]}
        assert by_name["link-delivery"]["breached"] is True
        assert by_name["link-delivery"]["burn_rate"] > 1.0
        assert first["breaches"] >= 1

    def test_clean_run_breaches_nothing(self):
        scenario = self.make_scenario(drops=0)
        scenario.run()
        report = scenario.slo_report(alert=False)
        assert report.breaches() == ()

    def test_drops_never_fail_a_call(self):
        scenario = self.make_scenario()
        report = scenario.run()
        links = scenario.platform.membership.links()
        assert sum(link.stats.failed_attempts for link in links) == 2
        # Every dropped call was redelivered by its retry budget.
        assert report.detail_requests == (report.detail_permits
                                          + report.detail_denies)

    def test_alerts_land_on_the_bus_with_metric_vocabulary_only(self):
        scenario = self.make_scenario()
        scenario.run()
        node_0 = scenario.platform.controller_of("node-0")
        received = []
        node_0.bus.declare_topic(SLO_ALERT_TOPIC)
        node_0.bus.subscribe("operator", SLO_ALERT_TOPIC,
                             lambda envelope: received.append(envelope))
        report = scenario.slo_report()
        assert len(received) == len(report.breaches()) >= 1
        for envelope in received:
            body = json.loads(envelope.body)
            assert body["alert"] == "slo-breach"
            assert {"name", "metric", "target", "attainment"} <= set(body)
            assert "pat" not in envelope.body and "node-" not in envelope.body
