"""Synthetic population, event-class templates, and workload generation.

Everything is driven by a caller-supplied seed so simulations, tests and
benchmarks are exactly reproducible.  The event templates model the
socio-health event classes the paper's scenario names (§2, §4): clinical
exams, home-care services, autonomy assessments for the elderly, telecare
alarms, and administrative discharges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.sim.domain import (
    FAMILY_NAMES,
    GIVEN_NAMES,
    MUNICIPALITIES,
    Patient,
)
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import DecimalType, EnumerationType, IntegerType, StringType

#: The one default seed of the simulation substrate (the deployment's
#: reference year).  Every generator, scenario config and CLI ``--seed``
#: option defaults to this single constant instead of a scattered magic
#: number, so overriding the seed in one place changes every derived
#: stream coherently.
DEFAULT_SEED = 2010

#: Builds the detail payload of one occurrence: (rng, patient) -> fields.
DetailBuilder = Callable[[random.Random, Patient], dict[str, object]]


@dataclass(frozen=True)
class EventTemplate:
    """A reusable event-class blueprint.

    ``needed_fields`` maps a consumer *role* to the fields that role
    actually needs (the minimal-usage yardstick, §2): the CSS scenario
    grants exactly these, while the baselines disclose everything — the
    difference is the overexposure the benchmarks measure.
    """

    name: str
    category: str
    summary_format: str
    schema_factory: Callable[[], MessageSchema]
    detail_builder: DetailBuilder
    needed_fields: dict[str, tuple[str, ...]]

    def build_schema(self) -> MessageSchema:
        """A fresh schema instance (schemas hold mutable element lists)."""
        return self.schema_factory()

    def build_details(self, rng: random.Random, patient: Patient) -> dict[str, object]:
        """Generate one occurrence's detail payload."""
        return self.detail_builder(rng, patient)

    def summary_for(self, patient: Patient) -> str:
        """The notification's *what* line."""
        return self.summary_format.format(name=patient.name)


def _identity_fields() -> list[ElementDecl]:
    return [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("Surname", StringType(min_length=1), identifying=True),
    ]


def _split_name(patient: Patient) -> tuple[str, str]:
    given, _, family = patient.name.partition(" ")
    return given, family or "Unknown"


def _identity_values(patient: Patient) -> dict[str, object]:
    given, family = _split_name(patient)
    return {"PatientId": patient.patient_id, "Name": given, "Surname": family}


# ---------------------------------------------------------------------------
# Template definitions
# ---------------------------------------------------------------------------


def _blood_test_schema() -> MessageSchema:
    return MessageSchema(
        "BloodTest",
        _identity_fields()
        + [
            ElementDecl("Hemoglobin", DecimalType(0, 30), sensitive=True),
            ElementDecl("Glucose", DecimalType(0, 500), sensitive=True),
            ElementDecl("Cholesterol", DecimalType(0, 500), sensitive=True),
            ElementDecl(
                "HivResult",
                EnumerationType(["negative", "positive", "inconclusive"]),
                occurs=Occurs.OPTIONAL,
                sensitive=True,
                documentation="Must be obfuscated for most consumers (paper §5).",
            ),
        ],
        documentation="Completion of a blood test at a laboratory.",
    )


def _blood_test_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        Hemoglobin=round(rng.uniform(9.0, 18.0), 1),
        Glucose=round(rng.uniform(60.0, 220.0), 1),
        Cholesterol=round(rng.uniform(120.0, 320.0), 1),
        HivResult=rng.choices(
            ["negative", "positive", "inconclusive"], weights=[96, 2, 2]
        )[0],
    )
    return values


def _home_care_schema() -> MessageSchema:
    return MessageSchema(
        "HomeCareServiceEvent",
        _identity_fields()
        + [
            ElementDecl("ServiceType", EnumerationType(
                ["nursing", "cleaning", "meal-delivery", "physiotherapy"]
            )),
            ElementDecl("OperatorId", StringType(min_length=1)),
            ElementDecl("DurationMinutes", IntegerType(5, 480)),
            ElementDecl("CareNotes", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
            ElementDecl("CostEuro", DecimalType(0, 1000)),
        ],
        documentation="A home-care service delivered at the patient's home.",
    )


def _home_care_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        ServiceType=rng.choice(["nursing", "cleaning", "meal-delivery", "physiotherapy"]),
        OperatorId=f"op-{rng.randint(1, 40):03d}",
        DurationMinutes=rng.randint(15, 180),
        CareNotes=rng.choice([
            "patient stable", "reduced mobility observed",
            "medication adherence issue", "family support present",
        ]),
        CostEuro=round(rng.uniform(15.0, 120.0), 2),
    )
    return values


def _autonomy_schema() -> MessageSchema:
    return MessageSchema(
        "AutonomyAssessment",
        _identity_fields()
        + [
            ElementDecl("Age", IntegerType(0, 120)),
            ElementDecl("Sex", EnumerationType(["F", "M"])),
            ElementDecl("AutonomyScore", IntegerType(0, 100), sensitive=True),
            ElementDecl("CognitiveScore", IntegerType(0, 100), sensitive=True),
            ElementDecl("AssessorNotes", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
        ],
        documentation="Autonomy test for elderly-care planning (§5.1's example).",
    )


def _autonomy_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        Age=patient.age_at(),
        Sex=rng.choice(["F", "M"]),
        AutonomyScore=rng.randint(10, 100),
        CognitiveScore=rng.randint(20, 100),
        AssessorNotes=rng.choice([
            "needs daily assistance", "partially autonomous",
            "fully autonomous", "requires cognitive follow-up",
        ]),
    )
    return values


def _telecare_schema() -> MessageSchema:
    return MessageSchema(
        "TelecareAlarm",
        _identity_fields()
        + [
            ElementDecl("AlarmType", EnumerationType(
                ["fall", "panic-button", "inactivity", "device-failure"]
            )),
            ElementDecl("Severity", IntegerType(1, 5)),
            ElementDecl("ResponseMinutes", IntegerType(0, 240)),
            ElementDecl("HealthContext", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
        ],
        documentation="An alarm raised by the telecare monitoring service.",
    )


def _telecare_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        AlarmType=rng.choice(["fall", "panic-button", "inactivity", "device-failure"]),
        Severity=rng.randint(1, 5),
        ResponseMinutes=rng.randint(2, 90),
        HealthContext=rng.choice([
            "known cardiac condition", "diabetic", "recent surgery", "none recorded",
        ]),
    )
    return values


def _discharge_schema() -> MessageSchema:
    return MessageSchema(
        "HospitalDischarge",
        _identity_fields()
        + [
            ElementDecl("Ward", StringType(min_length=1)),
            ElementDecl("LengthOfStayDays", IntegerType(0, 365)),
            ElementDecl("DiagnosisCode", StringType(pattern=r"[A-Z][0-9]{2}\.[0-9]"),
                        sensitive=True),
            ElementDecl("FollowUpPlan", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
            ElementDecl("CostEuro", DecimalType(0, 100000)),
        ],
        documentation="Hospital discharge closing an inpatient episode.",
    )


def _discharge_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        Ward=rng.choice(["Medicine", "Surgery", "Geriatrics", "Orthopedics"]),
        LengthOfStayDays=rng.randint(1, 30),
        DiagnosisCode=f"{rng.choice('ABCDEFGHIJ')}{rng.randint(10, 99)}.{rng.randint(0, 9)}",
        FollowUpPlan=rng.choice([
            "home care activation", "ambulatory follow-up",
            "rehabilitation program", "no follow-up needed",
        ]),
        CostEuro=round(rng.uniform(500.0, 15000.0), 2),
    )
    return values


def _referral_schema() -> MessageSchema:
    return MessageSchema(
        "SpecialistReferral",
        _identity_fields()
        + [
            ElementDecl("Specialty", EnumerationType(
                ["cardiology", "neurology", "oncology", "orthopedics", "geriatrics"]
            )),
            ElementDecl("Priority", EnumerationType(["routine", "urgent", "emergency"])),
            ElementDecl("ClinicalQuestion", StringType(), occurs=Occurs.OPTIONAL,
                        sensitive=True),
            ElementDecl("ReferringDoctor", StringType(min_length=1)),
        ],
        documentation="A referral from primary care to a specialist service.",
    )


def _referral_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        Specialty=rng.choice(["cardiology", "neurology", "oncology",
                              "orthopedics", "geriatrics"]),
        Priority=rng.choices(["routine", "urgent", "emergency"],
                             weights=[70, 25, 5])[0],
        ClinicalQuestion=rng.choice([
            "suspected arrhythmia", "memory decline work-up",
            "post-surgical follow-up", "chronic pain assessment",
        ]),
        ReferringDoctor=f"dr-{rng.randint(1, 20):03d}",
    )
    return values


def _meal_schema() -> MessageSchema:
    return MessageSchema(
        "MealDelivery",
        _identity_fields()
        + [
            ElementDecl("DietType", EnumerationType(
                ["standard", "diabetic", "low-sodium", "pureed"]
            ), sensitive=True),
            ElementDecl("MealsDelivered", IntegerType(1, 10)),
            ElementDecl("DeliveryNotes", StringType(), occurs=Occurs.OPTIONAL),
            ElementDecl("CostEuro", DecimalType(0, 200)),
        ],
        documentation="A meal-delivery round of the home-assistance service (§1).",
    )


def _meal_details(rng: random.Random, patient: Patient) -> dict[str, object]:
    values = _identity_values(patient)
    values.update(
        DietType=rng.choice(["standard", "diabetic", "low-sodium", "pureed"]),
        MealsDelivered=rng.randint(1, 3),
        DeliveryNotes=rng.choice([
            "delivered in person", "left with family member",
            "nobody home, retried", "delivered in person",
        ]),
        CostEuro=round(rng.uniform(5.0, 25.0), 2),
    )
    return values


def standard_event_templates() -> dict[str, EventTemplate]:
    """The seven standard event classes of the synthetic deployment."""
    from repro.sim.domain import (
        ROLE_ADMINISTRATOR,
        ROLE_FAMILY_DOCTOR,
        ROLE_SOCIAL_WORKER,
        ROLE_STATISTICIAN,
    )

    return {
        "BloodTest": EventTemplate(
            name="BloodTest",
            category="health",
            summary_format="blood test completed for {name}",
            schema_factory=_blood_test_schema,
            detail_builder=_blood_test_details,
            needed_fields={
                ROLE_FAMILY_DOCTOR: (
                    "PatientId", "Name", "Surname",
                    "Hemoglobin", "Glucose", "Cholesterol",
                ),
                ROLE_STATISTICIAN: ("Hemoglobin", "Glucose", "Cholesterol"),
            },
        ),
        "HomeCareServiceEvent": EventTemplate(
            name="HomeCareServiceEvent",
            category="social",
            summary_format="home care service delivered to {name}",
            schema_factory=_home_care_schema,
            detail_builder=_home_care_details,
            needed_fields={
                ROLE_FAMILY_DOCTOR: ("PatientId", "Name", "Surname"),
                ROLE_SOCIAL_WORKER: (
                    "PatientId", "Name", "Surname", "ServiceType",
                    "DurationMinutes", "CareNotes",
                ),
                ROLE_ADMINISTRATOR: ("PatientId", "ServiceType", "CostEuro"),
            },
        ),
        "AutonomyAssessment": EventTemplate(
            name="AutonomyAssessment",
            category="social",
            summary_format="autonomy assessment performed for {name}",
            schema_factory=_autonomy_schema,
            detail_builder=_autonomy_details,
            needed_fields={
                ROLE_SOCIAL_WORKER: (
                    "PatientId", "Name", "Surname", "AutonomyScore",
                    "CognitiveScore", "AssessorNotes",
                ),
                # §5.1's example: statistics get age, sex, autonomy score.
                ROLE_STATISTICIAN: ("Age", "Sex", "AutonomyScore"),
            },
        ),
        "TelecareAlarm": EventTemplate(
            name="TelecareAlarm",
            category="social",
            summary_format="telecare alarm raised for {name}",
            schema_factory=_telecare_schema,
            detail_builder=_telecare_details,
            needed_fields={
                ROLE_FAMILY_DOCTOR: (
                    "PatientId", "Name", "Surname", "AlarmType",
                    "Severity", "HealthContext",
                ),
                ROLE_SOCIAL_WORKER: (
                    "PatientId", "Name", "Surname", "AlarmType", "Severity",
                ),
                ROLE_ADMINISTRATOR: ("AlarmType", "Severity", "ResponseMinutes"),
            },
        ),
        "SpecialistReferral": EventTemplate(
            name="SpecialistReferral",
            category="health",
            summary_format="specialist referral issued for {name}",
            schema_factory=_referral_schema,
            detail_builder=_referral_details,
            needed_fields={
                ROLE_FAMILY_DOCTOR: (
                    "PatientId", "Name", "Surname", "Specialty",
                    "Priority", "ClinicalQuestion",
                ),
                ROLE_ADMINISTRATOR: ("Specialty", "Priority"),
            },
        ),
        "MealDelivery": EventTemplate(
            name="MealDelivery",
            category="social",
            summary_format="meals delivered to {name}",
            schema_factory=_meal_schema,
            detail_builder=_meal_details,
            needed_fields={
                ROLE_SOCIAL_WORKER: (
                    "PatientId", "Name", "Surname", "MealsDelivered",
                    "DeliveryNotes",
                ),
                ROLE_ADMINISTRATOR: ("MealsDelivered", "CostEuro"),
            },
        ),
        "HospitalDischarge": EventTemplate(
            name="HospitalDischarge",
            category="health",
            summary_format="hospital discharge of {name}",
            schema_factory=_discharge_schema,
            detail_builder=_discharge_details,
            needed_fields={
                ROLE_FAMILY_DOCTOR: (
                    "PatientId", "Name", "Surname", "Ward",
                    "DiagnosisCode", "FollowUpPlan",
                ),
                ROLE_SOCIAL_WORKER: ("PatientId", "Name", "Surname", "FollowUpPlan"),
                ROLE_ADMINISTRATOR: ("PatientId", "Ward", "LengthOfStayDays", "CostEuro"),
            },
        ),
    }


# ---------------------------------------------------------------------------
# Population and workload
# ---------------------------------------------------------------------------


class SyntheticPopulation:
    """A seeded population of patients."""

    def __init__(self, size: int, seed: int = DEFAULT_SEED) -> None:
        if size <= 0:
            raise ConfigurationError("population size must be positive")
        rng = random.Random(seed)
        self.patients: list[Patient] = []
        for index in range(size):
            name = f"{rng.choice(GIVEN_NAMES)} {rng.choice(FAMILY_NAMES)}"
            self.patients.append(
                Patient(
                    patient_id=f"pat-{index + 1:05d}",
                    name=name,
                    birth_year=rng.randint(1915, 1995),
                    municipality=rng.choice(MUNICIPALITIES),
                )
            )

    def __len__(self) -> int:
        return len(self.patients)

    def __iter__(self):
        return iter(self.patients)

    def sample(self, rng: random.Random) -> Patient:
        """One uniformly drawn patient."""
        return rng.choice(self.patients)


@dataclass(frozen=True)
class WorkloadItem:
    """One event occurrence to feed into a scenario."""

    template_name: str
    patient: Patient
    details: dict[str, object]
    summary: str
    offset_seconds: float


class WorkloadGenerator:
    """Generates reproducible event workloads over a population."""

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self._seed = seed

    def generate(
        self,
        population: SyntheticPopulation,
        templates: dict[str, EventTemplate],
        n_events: int,
        mean_interarrival: float = 60.0,
        template_weights: dict[str, float] | None = None,
    ) -> list[WorkloadItem]:
        """Produce ``n_events`` items with exponential inter-arrival times."""
        if n_events < 0:
            raise ConfigurationError("n_events must be non-negative")
        rng = random.Random(self._seed)
        names = list(templates)
        weights = [
            (template_weights or {}).get(name, 1.0) for name in names
        ]
        items: list[WorkloadItem] = []
        offset = 0.0
        for _ in range(n_events):
            offset += rng.expovariate(1.0 / mean_interarrival)
            template = templates[rng.choices(names, weights=weights)[0]]
            patient = population.sample(rng)
            items.append(
                WorkloadItem(
                    template_name=template.name,
                    patient=patient,
                    details=template.build_details(rng, patient),
                    summary=template.summary_for(patient),
                    offset_seconds=offset,
                )
            )
        return items
