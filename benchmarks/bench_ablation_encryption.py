"""Ablation A2: encrypted identifying fields in the events index.

§4: "the identifying information of the person specified in the
notification is stored in encrypted form to comply with the privacy
regulations."  We measure what that compliance costs: index insertion and
inquiry with sealing on versus off.

Expected shape: encryption adds a modest constant per message (two sealed
slots on store, two opens per inquiry hit) and does not change the scaling
of either operation.
"""

from __future__ import annotations

import pytest

from repro.core.index import EventsIndex
from repro.core.messages import NotificationMessage
from repro.crypto.keystore import KeyStore


def notifications(count: int) -> list[NotificationMessage]:
    return [
        NotificationMessage(
            event_id=f"evt-{index:06d}",
            event_type="BloodTest",
            producer_id="Hospital",
            occurred_at=float(index),
            summary=f"blood test #{index}",
            subject_ref=f"pat-{index % 50:05d}",
            subject_display=f"Patient Number{index % 50}",
        )
        for index in range(count)
    ]


@pytest.mark.parametrize("encrypt", [True, False], ids=["encrypted", "plaintext"])
def test_index_store_cost(benchmark, encrypt):
    """Per-notification insertion cost, sealed vs plaintext."""
    batch = notifications(200)
    state = {"index": None, "cursor": 0}

    def store_one():
        if state["cursor"] % len(batch) == 0:
            state["index"] = EventsIndex(KeyStore("bench"), encrypt_identity=encrypt)
            state["cursor"] = 0
        state["index"].store(batch[state["cursor"]])
        state["cursor"] += 1

    benchmark(store_one)
    if encrypt:
        assert state["index"].stats.seal_operations > 0
    else:
        assert state["index"].stats.seal_operations == 0


@pytest.mark.parametrize("encrypt", [True, False], ids=["encrypted", "plaintext"])
@pytest.mark.parametrize("n_stored", [100, 1000])
def test_index_inquiry_cost(benchmark, encrypt, n_stored):
    """Window-inquiry cost over a populated index, sealed vs plaintext."""
    index = EventsIndex(KeyStore("bench"), encrypt_identity=encrypt)
    for notification in notifications(n_stored):
        index.store(notification)

    results = benchmark(
        index.inquire, ["BloodTest"],
        n_stored * 0.25, n_stored * 0.75,
    )
    expected = int(n_stored * 0.75) - int(n_stored * 0.25) + 1
    assert abs(len(results) - expected) <= 1
    # Decryption recovered the real identities.
    assert all(r.subject_ref.startswith("pat-") for r in results)


def test_at_rest_opacity_invariant(benchmark):
    """With encryption on, no stored slot ever contains the identity."""
    index = EventsIndex(KeyStore("bench"), encrypt_identity=True)
    batch = notifications(100)

    def store_and_scan():
        for notification in batch:
            if notification.event_id not in index:
                index.store(notification)
        leaked = 0
        for obj in index.registry.all_objects():
            for slot_name in ("subjectRef", "subjectDisplay"):
                value = obj.slot_value(slot_name) or ""
                if "pat-" in value or "Patient" in value:
                    leaked += 1
        return leaked

    assert benchmark(store_and_scan) == 0
