"""Full-push pub/sub: details embedded in notifications.

The alternative the two-phase protocol replaces: keep the bus, but put the
complete detail message inside every notification.  Every subscriber then
receives every field of every event of the classes it follows — no
request step, no purpose statement, no field-level control.

Compared with CSS in ablation A1: full-push transfers *all* sensitive
fields to *all* subscribers regardless of whether they ever need the
details; two-phase transfers notifications plus only the requested,
policy-filtered details.  The crossover sits at a 100 % request rate with
policies granting every field — anywhere below that, two-phase wins on
sensitive bytes and exposure counts.
"""

from __future__ import annotations

from repro.baselines.common import (
    BaselineReport,
    document_bytes,
    full_disclosure,
    interested_consumers,
)
from repro.bus.broker import ServiceBus
from repro.sim.generators import EventTemplate, WorkloadItem
from repro.sim.metrics import DisclosureLedger


class FullPushBaseline:
    """Event bus with full details pushed in every notification."""

    system_name = "full-push pub/sub"

    def __init__(self, templates: dict[str, EventTemplate],
                 consumers: list[tuple[str, str]],
                 producer_assignment: dict[str, str]) -> None:
        self._templates = templates
        self._consumers = list(consumers)
        self._producer_assignment = dict(producer_assignment)
        self.bus = ServiceBus(strict_topics=False)
        self._received: list[tuple[str, str, str, WorkloadItem]] = []
        self._current_item: WorkloadItem | None = None
        self._subscribe_all()

    def _subscribe_all(self) -> None:
        for template_name, template in self._templates.items():
            topic = f"events.{template.category}.{template_name}"
            self.bus.declare_topic(topic)
            for consumer_id, role in interested_consumers(template, self._consumers):
                def deliver(envelope, consumer_id=consumer_id, role=role,
                            template_name=template_name):
                    assert self._current_item is not None
                    self._received.append(
                        (consumer_id, role, template_name, self._current_item)
                    )

                self.bus.subscribe(consumer_id, topic, deliver)

    def run(self, workload: list[WorkloadItem]) -> BaselineReport:
        """Publish every event with its full details on the bus."""
        ledger = DisclosureLedger(self.system_name)
        self._received.clear()
        for item in workload:
            template = self._templates[item.template_name]
            producer_id = self._producer_assignment[item.template_name]
            topic = f"events.{template.category}.{item.template_name}"
            ledger.record_event()
            self._current_item = item
            self.bus.publish(topic, producer_id, dict(item.details))
        self._current_item = None

        for consumer_id, role, template_name, item in self._received:
            template = self._templates[template_name]
            # Central bus: deliveries are traceable, but the payload is the
            # full record.
            full_disclosure(ledger, template, item, consumer_id, role, traced=True)
            ledger.add_bytes(document_bytes(item.details))
        return BaselineReport(
            exposure=ledger.summary(),
            connections=self.bus.subscription_count,
            messages_sent=len(self._received),
        )
