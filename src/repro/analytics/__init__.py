"""Process-monitoring analytics for the governing body.

The project's goal is "monitoring healthcare and social processes across
the different government and healthcare institutions" (§1), and §2 notes
the governing body "uses the data to assess the efficiency of the services
being delivered" on "detailed vs aggregated data".

This subpackage is the aggregated side: a
:class:`~repro.analytics.monitor.ProcessMonitor` that computes service
statistics *from notification metadata only* (event class, producer,
time — never the detail payloads), with small-cell suppression so that
aggregate reports cannot single out individual citizens.
"""

from repro.analytics.monitor import ProcessMonitor, VolumeReport
from repro.analytics.pathways import PathwayMiner, Transition
from repro.analytics.suppression import SuppressedCount, suppress_small_cells

__all__ = [
    "PathwayMiner",
    "ProcessMonitor",
    "SuppressedCount",
    "Transition",
    "VolumeReport",
    "suppress_small_cells",
]
