"""Exception hierarchy for the CSS reproduction.

Every error raised by the library derives from :class:`CssError` so callers
can catch platform failures with a single ``except`` clause while still being
able to distinguish the individual failure modes the paper's protocol defines
(access denial, missing contract, unknown event class, ...).
"""

from __future__ import annotations


class CssError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(CssError):
    """A component was configured inconsistently (bad parameter, missing key)."""


# ---------------------------------------------------------------------------
# Participation / contracts
# ---------------------------------------------------------------------------


class ContractError(CssError):
    """Base class for contractual-agreement violations (paper §5)."""


class NotRegisteredError(ContractError):
    """A party attempted an operation without having joined the platform."""


class AlreadyRegisteredError(ContractError):
    """A party attempted to join the platform twice under the same identity."""


class ContractInactiveError(ContractError):
    """The party's contract with the data controller is expired or revoked."""


# ---------------------------------------------------------------------------
# Event catalog / index
# ---------------------------------------------------------------------------


class CatalogError(CssError):
    """Base class for events-catalog failures."""


class UnknownEventClassError(CatalogError):
    """Referenced an event class that is not declared in the events catalog."""


class DuplicateEventClassError(CatalogError):
    """A producer declared the same event class twice."""


class UnknownEventError(CssError):
    """Referenced an event identifier that is not present in the events index."""


class UnknownProducerError(CssError):
    """Referenced a data producer unknown to the data controller."""


class UnknownConsumerError(CssError):
    """Referenced a data consumer unknown to the data controller."""


# ---------------------------------------------------------------------------
# Messages / schemas
# ---------------------------------------------------------------------------


class MessageError(CssError):
    """Base class for malformed notification / detail messages."""


class SchemaError(CssError):
    """An event-class schema definition is invalid."""


class ValidationError(CssError):
    """A document or message does not conform to its declared schema."""


# ---------------------------------------------------------------------------
# Privacy / access control
# ---------------------------------------------------------------------------


class PrivacyError(CssError):
    """Base class for privacy-policy related failures."""


class AccessDeniedError(PrivacyError):
    """The deny-by-default semantics rejected a request (paper §5.2).

    Carries the request that was rejected and a human-readable reason so the
    audit trail can record *why* access was denied.
    """

    def __init__(self, reason: str, request: object | None = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.request = request


class PolicyError(PrivacyError):
    """A privacy policy is malformed (empty field set, unknown fields, ...)."""


class ConsentError(PrivacyError):
    """The data subject's consent forbids the attempted disclosure."""


class ObligationError(PrivacyError):
    """A policy obligation could not be discharged at enforcement time."""


# ---------------------------------------------------------------------------
# Bus / delivery
# ---------------------------------------------------------------------------


class BusError(CssError):
    """Base class for service-bus failures."""


class UnknownTopicError(BusError):
    """Published or subscribed to a topic that does not exist."""


class SubscriptionError(BusError):
    """A subscription could not be created or resolved."""


class DeliveryError(BusError):
    """A message could not be delivered within the configured retry budget."""


class EndpointError(BusError):
    """A synchronous SOA endpoint invocation failed."""


# ---------------------------------------------------------------------------
# Federation
# ---------------------------------------------------------------------------


class FederationError(CssError):
    """Base class for multi-node federation failures."""


class LinkFailureError(FederationError):
    """An inter-node link dropped a call beyond its retry budget."""


class NotHomeNodeError(FederationError):
    """A node was asked to decide for a producer it does not home."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class RegistryError(CssError):
    """Base class for ebXML-style registry failures."""


class ObjectNotFoundError(RegistryError):
    """Looked up a registry object id that is not stored."""


class DuplicateObjectError(RegistryError):
    """Submitted a registry object whose id is already stored."""


class QueryError(RegistryError):
    """An ad-hoc registry query is syntactically or semantically invalid."""


# ---------------------------------------------------------------------------
# Crypto / audit
# ---------------------------------------------------------------------------


class CryptoError(CssError):
    """Base class for cryptography failures."""


class KeyNotFoundError(CryptoError):
    """Referenced a key id not present in the keystore."""


class TokenError(CryptoError):
    """An encrypted token failed authentication or is malformed."""


class AuditError(CssError):
    """Base class for audit-log failures."""


class TamperedLogError(AuditError):
    """The audit log's hash chain failed verification."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(CssError):
    """Base class for durable-storage failures (logs, snapshots, recovery)."""


class CorruptRecordError(StorageError):
    """A persisted record failed to parse or failed its checksum.

    Raised for damage *inside* a log — a torn tail (an interrupted final
    write) is not corruption: the segmented log truncates it on replay.
    """


class SnapshotError(StorageError):
    """A snapshot could not be created, verified or restored."""


class RecoveryError(StorageError):
    """Point-in-time recovery was asked for an impossible target."""


# ---------------------------------------------------------------------------
# Gateway / sources
# ---------------------------------------------------------------------------


class GatewayError(CssError):
    """Base class for local-cooperation-gateway failures."""


class SourceUnavailableError(GatewayError):
    """The producer's source system is offline and the detail is not cached."""


class DetailNotFoundError(GatewayError):
    """No detail message is stored for the requested source event id."""
