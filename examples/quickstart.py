"""Quickstart: the CSS two-phase protocol in ~60 lines.

One hospital publishes a blood test; a family doctor receives the
notification (who/what/when/where) and pulls the details under an explicit
purpose; unauthorized fields never leave the hospital.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AccessDeniedError,
    DataConsumer,
    DataController,
    DataProducer,
    ElementDecl,
    MessageSchema,
    Occurs,
    StringType,
)
from repro.xmlmsg.types import DecimalType, EnumerationType


def main() -> None:
    # 1. The data controller is the central mediator (Fig. 2).
    controller = DataController(seed="quickstart")

    # 2. A producer joins and declares an event class (its XSD goes into
    #    the events catalog).
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    blood_test = hospital.declare_event_class(MessageSchema("BloodTest", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("Hemoglobin", DecimalType(0, 30), sensitive=True),
        ElementDecl("HivResult", EnumerationType(["negative", "positive"]),
                    occurs=Occurs.OPTIONAL, sensitive=True),
    ]))

    # 3. A consumer joins; the hospital authorizes it with a privacy policy
    #    (actor, event class, purposes, releasable fields — Def. 2).
    doctor = DataConsumer(controller, "FamilyDoctors/Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    hospital.define_policy(
        event_type="BloodTest",
        fields=["PatientId", "Name", "Hemoglobin"],   # HivResult stays hidden
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
        label="family doctors read blood counts",
    )
    doctor.subscribe("BloodTest")

    # 4. Phase one: the hospital publishes; only the summary circulates.
    notification = hospital.publish(
        blood_test,
        subject_id="pat-0001",
        subject_name="Mario Bianchi",
        summary="blood test completed for Mario Bianchi",
        details={"PatientId": "pat-0001", "Name": "Mario Bianchi",
                 "Hemoglobin": 13.8, "HivResult": "negative"},
    )
    print(f"notification delivered: {notification.event_id}")
    print(f"  what : {doctor.inbox[0].summary}")
    print(f"  when : t={doctor.inbox[0].occurred_at}")
    print(f"  where: {doctor.inbox[0].producer_id}")

    # 5. Phase two: the doctor requests the details with a purpose.
    detail = doctor.request_details(notification, "healthcare-treatment")
    print(f"released fields: {detail.exposed_values()}")
    assert "HivResult" not in detail.exposed_values()

    # 6. Deny-by-default: a wrong purpose is refused (and audited).
    try:
        doctor.request_details(notification, "statistical-analysis")
    except AccessDeniedError as exc:
        print(f"denied as expected: {exc}")

    # 7. The audit trail answers "who accessed what, and why".
    controller.audit_log.verify_integrity()
    print(f"audit records: {len(controller.audit_log)} (hash chain verified)")


if __name__ == "__main__":
    main()
